"""Chase-based dependency inference over view normal forms.

The paper's Section 4 machinery reasons over *range* premises (declared
per-relation constraints).  This module adds the second premise family
of the self-maintenance literature: **functional dependencies** seeded
from declared candidate keys (:class:`~repro.engine.keys.KeyCatalog`)
and propagated through a view condition's equality atoms by attribute
closure — a chase restricted to the FD fragment, which is sound and
complete for FD implication (Armstrong).

Three derived artifacts feed the runtime:

* **View keys** (:func:`derive_view_key`) — a minimal subset of the
  view's output columns on which no two materialized rows can agree.
  A derived view key simultaneously proves every view row has
  multiplicity ≤ 1, so the Section 5.2 counters carry no information:
  the codegen apply kernels may pin every counter to one
  (*counter-free* maintenance, ``F_COUNTER_FREE``).
* **FK-join reductions** (:func:`fk_reduction`) — a join view whose
  probe sides are reached through declared foreign keys into declared
  keys, touch nothing beyond the referenced key attributes, and can
  therefore be rewritten to a single-occurrence normal form over the
  referencing relation alone.  The reduced plan consults no probe
  state at all, making the view self-maintainable (base-free hostable)
  and the reduction itself a measured fast path on every host.
* **Row determination** (:func:`key_determines_row` /
  :func:`determined_row`) — whether a relation's declared constraint
  makes the full row a function of its key values, which is what lets
  a base-free host keep a key-columns-only occupancy set and still
  replicate exact set semantics for duplicate inserts and absent
  deletes.

Soundness notes
---------------
Key FDs hold for every product row regardless of the condition (two
combined rows agreeing on one occurrence's key attributes draw the same
base row for that occurrence, base relations being sets on which the
declared key is enforced at commit).  Equality-atom FDs are *row-local*
facts of rows satisfying the condition, so under a DNF condition only
atoms shared by **every** disjunct yield dependencies — an atom present
in one branch proves nothing about rows admitted by another.  All
iteration orders are pinned, so derivations (and their proof chains)
are byte-identical across runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional, Protocol, Sequence

from repro.algebra.conditions import Atom, Condition, Const, Var
from repro.algebra.expressions import (
    NormalForm,
    Occurrence,
    requalify_condition,
)
from repro.algebra.schema import RelationSchema
from repro.instrumentation import charge

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.keys import ForeignKey


class KeyLookup(Protocol):
    """The slice of :class:`~repro.engine.keys.KeyCatalog` the chase
    reads: declared candidate keys and declared foreign keys."""

    def keys_of(self, relation_name: str) -> tuple[tuple[str, ...], ...]: ...

    def foreign_keys_of(
        self, relation_name: str
    ) -> "tuple[ForeignKey, ...]": ...


class Dependency:
    """One functional dependency ``lhs → rhs`` with its provenance."""

    __slots__ = ("lhs", "rhs", "reason")

    def __init__(
        self, lhs: Sequence[str], rhs: Sequence[str], reason: str
    ) -> None:
        self.lhs: tuple[str, ...] = tuple(sorted(lhs))
        self.rhs: tuple[str, ...] = tuple(sorted(rhs))
        self.reason = reason

    def describe(self) -> str:
        lhs = ", ".join(self.lhs) if self.lhs else "∅"
        return f"{{{lhs}}} → {{{', '.join(self.rhs)}}} [{self.reason}]"

    def __repr__(self) -> str:
        return f"<Dependency {self.describe()}>"


def shared_equality_atoms(condition: Condition) -> tuple[Atom, ...]:
    """Equality atoms present in **every** disjunct of a DNF condition.

    Only these are sound FD sources: a row in the condition's extension
    satisfies *some* disjunct, and an atom shared by all of them is
    satisfied whichever branch admitted the row.  The empty condition
    (``false``) has no rows, so any answer is sound; we return none.
    """
    if not condition.disjuncts:
        return ()
    shared = set(condition.disjuncts[0].atoms)
    for disjunct in condition.disjuncts[1:]:
        shared &= set(disjunct.atoms)
    equalities = [atom for atom in shared if atom.op == "="]
    equalities.sort(key=str)
    return tuple(equalities)


def _equality_dependencies(condition: Condition) -> list[Dependency]:
    deps: list[Dependency] = []
    for atom in shared_equality_atoms(condition):
        if atom.is_two_variable():
            assert isinstance(atom.left, Var) and isinstance(atom.right, Var)
            deps.append(
                Dependency(
                    (atom.left.name,), (atom.right.name,), f"equality {atom}"
                )
            )
            deps.append(
                Dependency(
                    (atom.right.name,), (atom.left.name,), f"equality {atom}"
                )
            )
        elif atom.is_single_variable():
            assert isinstance(atom.left, Var)
            deps.append(Dependency((), (atom.left.name,), f"constant {atom}"))
    return deps


def dependencies_for(
    normal_form: NormalForm, keys: KeyLookup
) -> tuple[Dependency, ...]:
    """Every FD the chase may use over ``normal_form``'s qualified
    namespace: declared keys requalified through each occurrence's
    rename, plus the condition's shared equality atoms."""
    deps: list[Dependency] = []
    for occurrence in normal_form.occurrences:
        for key in keys.keys_of(occurrence.name):
            deps.append(
                Dependency(
                    tuple(occurrence.rename[a] for a in key),
                    occurrence.qualified_names(),
                    f"declared key ({', '.join(key)}) of {occurrence.name}",
                )
            )
    deps.extend(_equality_dependencies(normal_form.condition))
    deps.sort(key=lambda d: (d.lhs, d.rhs, d.reason))
    return tuple(deps)


def close(
    attributes: Iterable[str], dependencies: Sequence[Dependency]
) -> tuple[frozenset[str], tuple[str, ...]]:
    """Attribute closure with an ordered proof chain.

    Returns ``(closure, proof)`` where each proof line records one
    productive FD application.  Deterministic: dependencies fire in
    their given (sorted) order until fixpoint.
    """
    charge("dependency_closures")
    known = set(attributes)
    proof: list[str] = []
    changed = True
    while changed:
        changed = False
        for dep in dependencies:
            if known.issuperset(dep.lhs) and not known.issuperset(dep.rhs):
                gained = sorted(set(dep.rhs) - known)
                known.update(gained)
                lhs = ", ".join(dep.lhs) if dep.lhs else "∅"
                proof.append(
                    f"{{{lhs}}} → {{{', '.join(gained)}}} ({dep.reason})"
                )
                changed = True
    return frozenset(known), tuple(proof)


class ViewKey:
    """A derived candidate key of a view, with its chase proof.

    ``attributes`` are output (user-visible) column names; ``qualified``
    the corresponding attributes of the flattened product.  Existence
    of a view key proves more than uniqueness: the closure of the
    projected attributes covers the *entire* product row, so two
    product rows agreeing on the projection are identical — every view
    row has multiplicity exactly one (counter-free maintenance).
    """

    __slots__ = ("view_attributes", "qualified", "proof")

    def __init__(
        self,
        view_attributes: Sequence[str],
        qualified: Sequence[str],
        proof: Sequence[str],
    ) -> None:
        self.view_attributes: tuple[str, ...] = tuple(view_attributes)
        self.qualified: tuple[str, ...] = tuple(qualified)
        self.proof: tuple[str, ...] = tuple(proof)

    def describe(self) -> str:
        return f"({', '.join(self.view_attributes)})"

    def __repr__(self) -> str:
        return f"<ViewKey {self.describe()}>"


def derive_view_key(
    normal_form: NormalForm, keys: KeyLookup
) -> Optional[ViewKey]:
    """Derive a minimal view key, or None when the chase cannot.

    The derivation succeeds iff the closure of the projected qualified
    attributes covers every attribute of the flattened product: then
    two product rows agreeing on the projection agree everywhere, i.e.
    are the same row, so (a) the projection is duplicate-free and (b)
    any subset of it whose closure still covers the product is a view
    key.  The minimal key is canonical: attributes are dropped greedily
    in sorted qualified order, so equal inputs yield equal keys.
    """
    dependencies = dependencies_for(normal_form, keys)
    all_attributes = set(normal_form.qualified_schema.names)
    projected = sorted({q for _, q in normal_form.projection})
    closure, _ = close(projected, dependencies)
    if not closure.issuperset(all_attributes):
        return None
    minimal = list(projected)
    for attribute in list(minimal):
        candidate = [a for a in minimal if a != attribute]
        closure, _ = close(candidate, dependencies)
        if closure.issuperset(all_attributes):
            minimal = candidate
    _, proof = close(minimal, dependencies)
    chosen = set(minimal)
    seen: set[str] = set()
    view_attributes: list[str] = []
    qualified: list[str] = []
    for output, qualified_name in normal_form.projection:
        if qualified_name in chosen and qualified_name not in seen:
            seen.add(qualified_name)
            view_attributes.append(output)
            qualified.append(qualified_name)
    charge("view_keys_derived")
    return ViewKey(view_attributes, qualified, proof)


class FkReduction:
    """A provably-valid rewrite of an FK join to its referencing side.

    ``normal_form`` is the reduced single-occurrence normal form over
    the delta-side relation alone; executing it is byte-for-byte
    equivalent to the original join **in every legal database state**,
    because each referencing row has exactly one partner per probe
    (foreign key: at least one; declared key: at most one) and nothing
    outside the referenced key attributes is consulted — so the partner
    lookup is erased by substituting the referencing attributes for the
    referenced key attributes.  Probe-relation deltas can never change
    the view (it no longer depends on probe state), so the compiled
    plan screens them out entirely.
    """

    __slots__ = (
        "delta_relation",
        "delta_position",
        "normal_form",
        "probe_relations",
        "proof",
    )

    def __init__(
        self,
        delta_relation: str,
        delta_position: int,
        normal_form: NormalForm,
        probe_relations: Sequence[str],
        proof: Sequence[str],
    ) -> None:
        self.delta_relation = delta_relation
        self.delta_position = delta_position
        self.normal_form = normal_form
        self.probe_relations: tuple[str, ...] = tuple(probe_relations)
        self.proof: tuple[str, ...] = tuple(proof)

    def describe(self) -> str:
        probes = ", ".join(self.probe_relations)
        return (
            f"maintain on {self.delta_relation} alone; probes {probes} "
            "erased by foreign-key substitution"
        )

    def __repr__(self) -> str:
        return f"<FkReduction {self.describe()}>"


def _join_pairs(condition: Condition) -> dict[frozenset[str], Atom]:
    """Shared offset-0 variable equalities, keyed by their variable pair
    (orientation-insensitive: flattening may emit either side first)."""
    pairs: dict[frozenset[str], Atom] = {}
    for atom in shared_equality_atoms(condition):
        if atom.is_two_variable() and atom.offset == 0:
            assert isinstance(atom.left, Var) and isinstance(atom.right, Var)
            pairs.setdefault(
                frozenset((atom.left.name, atom.right.name)), atom
            )
    return pairs


def fk_reduction(
    normal_form: NormalForm, keys: KeyLookup
) -> Optional[FkReduction]:
    """Find an FK-join reduction of ``normal_form``, or None.

    The premises, checked per candidate delta-side occurrence ``D`` (in
    position order, first match wins — deterministic):

    1. ``D``'s relation occurs exactly once; the probe occurrences have
       pairwise-distinct relations.
    2. Every probe ``P`` is reached through a declared foreign key
       ``D(fk…) references P(key…)`` whose attribute pairs all appear
       as shared offset-0 equality atoms of the condition.
    3. Outside those join atoms, the condition and the projection
       mention only ``D``'s attributes and the referenced key
       attributes (which the substitution replaces).

    Premise 2 makes the join total (every ``D`` row has a partner) and
    unique (the partner is single); premise 3 makes the partner's
    non-key attributes unobservable.  The rewrite is then exact, and —
    because it holds in every legal state — indifferent to probe-side
    deltas, which is what base-free hosting needs.
    """
    if len(normal_form.occurrences) < 2:
        return None
    pairs = _join_pairs(normal_form.condition)
    for delta_occ in normal_form.occurrences:
        if len(normal_form.occurrences_of(delta_occ.name)) != 1:
            continue
        probes = [o for o in normal_form.occurrences if o is not delta_occ]
        probe_names = [o.name for o in probes]
        if len(set(probe_names)) != len(probe_names):
            continue
        substitution: dict[str, str] = {}
        join_atom_pairs: set[frozenset[str]] = set()
        proof: list[str] = []
        matched = True
        for probe in probes:
            fk_match: "Optional[ForeignKey]" = None
            for fk in keys.foreign_keys_of(delta_occ.name):
                if fk.ref_relation != probe.name:
                    continue
                if fk.ref_attributes not in keys.keys_of(probe.name):
                    continue
                atom_pairs = [
                    frozenset(
                        (delta_occ.rename[src], probe.rename[dst])
                    )
                    for src, dst in zip(fk.attributes, fk.ref_attributes)
                ]
                if all(pair in pairs for pair in atom_pairs):
                    fk_match = fk
                    join_atom_pairs.update(atom_pairs)
                    break
            if fk_match is None:
                matched = False
                break
            for src, dst in zip(fk_match.attributes, fk_match.ref_attributes):
                substitution[probe.rename[dst]] = delta_occ.rename[src]
            proof.append(
                f"probe {probe.name}: foreign key {fk_match.describe()} "
                "joined on its full referenced key — the partner exists "
                "(referential integrity) and is unique (declared key)"
            )
        if not matched:
            continue
        allowed = set(delta_occ.qualified_names()) | set(substitution)

        def is_join_atom(atom: Atom) -> bool:
            return (
                atom.op == "="
                and atom.offset == 0
                and atom.is_two_variable()
                and frozenset(
                    (atom.left.name, atom.right.name)  # type: ignore[union-attr]
                )
                in join_atom_pairs
            )

        residual_ok = all(
            is_join_atom(atom) or atom.variables() <= allowed
            for disjunct in normal_form.condition.disjuncts
            for atom in disjunct.atoms
        )
        projection_ok = all(
            qualified in allowed for _, qualified in normal_form.projection
        )
        if not (residual_ok and projection_ok):
            continue

        from repro.algebra.conditions import Conjunction

        stripped = Condition(
            Conjunction(a for a in disjunct.atoms if not is_join_atom(a))
            for disjunct in normal_form.condition.disjuncts
        )
        mapping = {
            name: substitution.get(name, name)
            for name in normal_form.qualified_schema.names
        }
        reduced_condition = requalify_condition(stripped, mapping)
        reduced_projection = tuple(
            (output, substitution.get(qualified, qualified))
            for output, qualified in normal_form.projection
        )
        schema = normal_form.qualified_schema
        reduced_schema = RelationSchema(
            [
                schema.attributes[schema.index(name)]
                for name in delta_occ.qualified_names()
            ]
        )
        reduced = NormalForm(
            [Occurrence(delta_occ.name, 0, delta_occ.rename)],
            reduced_condition,
            reduced_projection,
            reduced_schema,
        )
        proof.append(
            "condition and projection reference only "
            f"{delta_occ.name}'s attributes and referenced key "
            "attributes: the probe lookup is erased by substitution"
        )
        charge("fk_reductions_derived")
        return FkReduction(
            delta_occ.name,
            delta_occ.position,
            reduced,
            sorted(probe_names),
            proof,
        )
    return None


def key_determines_row(
    schema: RelationSchema,
    key: Sequence[str],
    constraint: Optional[Condition],
) -> bool:
    """True when a declared constraint makes the whole row a function
    of its key values (closure of the key under the constraint's shared
    equality atoms covers the schema).

    This is what lets a base-free host keep a key-columns-only
    occupancy set per relation: presence of a key tuple decides
    presence of the (unique, reconstructible) full row.
    """
    if set(key) == set(schema.names):
        return True
    if constraint is None:
        return False
    dependencies = _equality_dependencies(constraint)
    closure, _ = close(key, tuple(dependencies))
    return closure.issuperset(schema.names)


def determined_row(
    schema: RelationSchema,
    key: Sequence[str],
    key_values: Sequence[int],
    constraint: Optional[Condition],
) -> Optional[tuple[int, ...]]:
    """Reconstruct the unique row with the given key values, or None.

    Runs the constraint's shared equality atoms to fixpoint as
    assignments (``x = y + c`` propagates either direction; ``x = c``
    grounds).  Returns None when the constraint does not determine
    every attribute — callers should have checked
    :func:`key_determines_row` first.
    """
    known: dict[str, int] = dict(zip(key, key_values))
    atoms = (
        shared_equality_atoms(constraint) if constraint is not None else ()
    )
    changed = True
    while changed:
        changed = False
        for atom in atoms:
            if atom.is_two_variable():
                assert isinstance(atom.left, Var)
                assert isinstance(atom.right, Var)
                x, y, c = atom.left.name, atom.right.name, atom.offset
                if y in known and x not in known:
                    known[x] = known[y] + c
                    changed = True
                elif x in known and y not in known:
                    known[y] = known[x] - c
                    changed = True
            elif atom.is_single_variable():
                assert isinstance(atom.left, Var)
                assert isinstance(atom.right, Const)
                if atom.left.name not in known:
                    known[atom.left.name] = atom.right.value
                    changed = True
    try:
        return tuple(known[name] for name in schema.names)
    except KeyError:
        return None
