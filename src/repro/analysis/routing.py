"""Shard-aware static irrelevance: Theorem 4.1 as a routing oracle.

PR 5 turned the paper's Theorem 4.1 into a registration-time proof:
an update to relation ``R`` is *statically irrelevant* to a view when
the view condition, conjoined with ``R``'s declared constraint
requalified at each occurrence of ``R``, is unsatisfiable.  This module
quantifies the same theorem over a *set* of per-relation premises — one
per operand — so it can answer the question a sharded cluster's
coordinator asks before shipping a delta:

    On a shard whose local instance of every relation ``S`` provably
    satisfies premise ``P_S`` (the declared global constraint,
    strengthened for partitioned relations by the shard's key-range),
    can a delta of relation ``R`` ever change this view's contents?

The answer is sound in the same way Theorem 4.1 is: every view tuple
requires an assignment satisfying the view condition with each operand
position filled by a tuple satisfying that relation's premise, so if
the *effective condition* — the view condition conjoined with every
occurrence's requalified premise — is unsatisfiable, the view is
provably empty on that shard and no delta of any operand can ever
produce or remove a view tuple there.  The test is conservative:
``False`` ("may be relevant") is always a safe answer.

All conditions stay inside the Rosenkrantz–Hunt class, so each proof is
one polynomial :func:`~repro.core.satisfiability.is_satisfiable` call,
charged to the ``cluster_routing_proofs`` counter.
"""

from __future__ import annotations

from typing import Mapping

from repro.algebra.conditions import Condition
from repro.algebra.expressions import NormalForm, requalify_condition
from repro.core.satisfiability import is_satisfiable
from repro.instrumentation import charge

__all__ = [
    "is_shard_irrelevant",
    "shard_effective_condition",
]


def shard_effective_condition(
    normal_form: NormalForm, premises: Mapping[str, Condition]
) -> Condition:
    """The view condition strengthened by every operand's shard premise.

    ``premises`` maps relation names to conditions (over each
    relation's *own* attribute names) known to hold for every tuple of
    that relation on the shard under consideration — the declared
    global constraint, conjoined for partitioned relations with the
    shard's key-range.  Each premise is requalified through every
    occurrence's rename and conjoined onto the view condition; missing
    or trivially true premises add nothing.
    """
    effective = normal_form.condition
    for occurrence in normal_form.occurrences:
        premise = premises.get(occurrence.name)
        if premise is None or premise.is_true():
            continue
        effective = effective.conjoin(
            requalify_condition(premise, occurrence.rename)
        )
    return effective


def is_shard_irrelevant(
    normal_form: NormalForm,
    relation_name: str,
    premises: Mapping[str, Condition],
) -> bool:
    """Can no delta of ``relation_name`` ever affect this view on a
    shard whose operands satisfy ``premises``?

    ``True`` is a proof (the effective condition is unsatisfiable, so
    the view is empty on that shard in every reachable state — a stale
    local copy of ``relation_name`` can never surface); ``False`` means
    "not provably irrelevant" and the delta must be shipped.  Views
    that never reference ``relation_name`` are trivially unaffected.
    """
    if not normal_form.occurrences_of(relation_name):
        return True
    charge("cluster_routing_proofs")
    return not is_satisfiable(shard_effective_condition(normal_form, premises))
