"""Lightweight operation counting used by the benchmark harness.

The paper argues about costs in terms of *work avoided* — tuples that
never reach a join, truth-table rows that never get evaluated, views
that never get recomputed.  Wall-clock time alone hides those effects
behind constant factors, so the evaluator and maintenance code charge
abstract operation counters (tuples scanned, join probes, tuples
emitted, satisfiability checks, truth-table rows evaluated, …) to an
optional active :class:`CostRecorder`.

Recording is opt-in and near-zero-cost when inactive: every charge site
first checks the active recorder, a :class:`contextvars.ContextVar`.
The contextvar makes :func:`recording` blocks *isolated* — concurrent
asyncio tasks (the network view-server handles many sessions on one
event loop) and threads each see only their own recorder, and nesting
``recording(...)`` inside an active block routes charges to the
innermost recorder until it exits.

Counter families by prefix (each named counter is charged at exactly
one call site):

* evaluation — ``tuples_scanned``, ``join_probes``, ``index_probes``,
  truth-table row counts, satisfiability checks;
* maintenance — ``transactions_skipped_irrelevant`` and the per-view
  counters mirrored in :class:`repro.core.maintainer.MaintenanceStats`;
* plan cache — ``plan_cache_hits``, ``plan_cache_misses``,
  ``plan_cache_invalidations`` charged by
  :class:`repro.core.plancache.PlanCache` as compiled maintenance plans
  are served, compiled, and discarded;
* durability (``wal_*``) — ``wal_records_appended``,
  ``wal_bytes_written``, ``wal_fsyncs``, ``wal_segments_rotated``,
  ``wal_records_read`` from :mod:`repro.replication.wal`, plus
  ``log_replay_transactions`` charged by
  :func:`repro.engine.log.replay_records` during crash recovery and
  changefeed catch-up;
* serving (``server_*``) — request, session and changefeed counters
  charged by :mod:`repro.server` (see ``docs/server.md``);
* cluster (``cluster_*``) — sharded-coordinator counters charged by
  :mod:`repro.cluster` (see ``docs/cluster.md``):
  ``cluster_txns_committed`` / ``cluster_txns_aborted``,
  ``cluster_deltas_sent`` / ``cluster_deltas_skipped`` (per-shard
  relation deltas shipped vs. proven irrelevant by the Theorem 4.1
  routing oracle and never sent), ``cluster_routing_proofs``
  (satisfiability proofs attempted while deriving the routing table),
  ``cluster_retransmissions`` and ``cluster_shard_rebuilds``;
* analysis (``analysis_*`` and static proofs) — ``analysis_runs``,
  ``analysis_definitions_checked`` and ``analysis_view_pairs_compared``
  charged by :mod:`repro.analysis`, plus
  ``static_irrelevance_proofs`` (Theorem 4.1 proofs attempted) and
  ``static_tuples_dropped`` (tuples discarded with zero per-tuple
  screening by a compiled plan's static-irrelevance short-circuit; see
  ``docs/analysis.md``);
* scheduling (``scheduler_*`` and base-free hosting; see
  ``docs/scheduler.md``) — ``self_maintainability_proofs``
  (classifier verdicts attempted while deciding whether a view can be
  maintained without base relations), ``scheduler_ticks`` /
  ``scheduler_refreshes`` / ``scheduler_sla_violations`` /
  ``scheduler_backpressure_deferrals`` charged by
  :class:`repro.scheduler.RefreshScheduler`, and
  ``base_free_rows_dropped`` (base-relation tuples shed by a
  :class:`repro.replication.Follower` or cluster shard hosting only
  self-maintainable views);
* codegen (``codegen_*``; see ``docs/codegen.md``) —
  ``codegen_plans_compiled`` (kernel sets generated, ``compile()``-d
  and installed by :mod:`repro.core.codegen`, charged once per screen
  compilation and once per truth-table shape),
  ``codegen_batch_rows`` (delta tuples screened plus truth-table rows
  evaluated by the generated batch kernels — the work the per-tuple
  interpreter would otherwise have dispatched tuple by tuple), and
  ``codegen_fallback_tuples`` (delta tuples routed back to the
  interpreter because the view exceeded the codegen size caps).

Usage::

    recorder = CostRecorder()
    with recording(recorder):
        maintainer.apply_transaction(...)
    print(recorder.counters)
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator


class CostRecorder:
    """An accumulating bag of named operation counters."""

    __slots__ = ("counters",)

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never charged)."""
        return self.counters.get(name, 0)

    def reset(self) -> None:
        """Clear all counters."""
        self.counters.clear()

    def snapshot(self) -> dict[str, int]:
        """A copy of the current counter values."""
        return dict(self.counters)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.counters.items()))
        return f"<CostRecorder {inner or 'empty'}>"


# The active recorder.  A ContextVar rather than a module global: each
# thread *and* each asyncio task inherits its own binding, so a server
# session recording its request cannot observe (or pollute) another
# session's counters.  The inactive fast path stays one ``get()`` and
# one ``is None`` test.
_ACTIVE: ContextVar[CostRecorder | None] = ContextVar(
    "repro_active_recorder", default=None
)


def active_recorder() -> CostRecorder | None:
    """The recorder charges currently flow to, or ``None``."""
    return _ACTIVE.get()


@contextmanager
def recording(recorder: CostRecorder) -> Iterator[CostRecorder]:
    """Route all charges to ``recorder`` for the duration of the block.

    Re-entrant: nesting a second ``recording(...)`` routes charges to
    the innermost recorder until its block exits, then restores the
    outer one — in *this* context only.  Other threads and asyncio
    tasks are unaffected.
    """
    token = _ACTIVE.set(recorder)
    try:
        yield recorder
    finally:
        _ACTIVE.reset(token)


def charge(name: str, amount: int = 1) -> None:
    """Charge ``amount`` to counter ``name`` on the active recorder."""
    recorder = _ACTIVE.get()
    if recorder is not None:
        recorder.incr(name, amount)
