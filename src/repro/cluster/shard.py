"""One shard worker: the unchanged single-node stack plus 2PC glue.

A :class:`ShardNode` owns a plain :class:`~repro.engine.database.
Database` + :class:`~repro.core.maintainer.ViewMaintainer` pair — the
same stack a single-node deployment runs, compiled plans, relevance
screens and all.  What makes it a shard is purely declarative: its base
relations hold only the rows its key-ranges own (partitioned relations)
or a full copy (replicated relations), and each partitioned relation's
ownership range is *declared as a constraint*, so a misrouted row is
rejected by the ordinary commit pipeline and the range doubles as a
premise for the compiled plans' own static-irrelevance screens.

The 2PC surface is a message handler (transport-agnostic — the
coordinator drives it over :class:`~repro.cluster.links.DirectLink` or
a simulated lossy channel):

* ``prepare`` — validate the sub-transaction (structure, domains, and
  declared constraints against the *raw* inserted rows, which is exact:
  a raw insert that violates a constraint can never be netted away,
  because the violating row cannot already be present) and stage it.
  No state changes; a crash between prepare and commit loses only the
  stage, which the coordinator's retransmitted, self-contained commit
  message replaces.
* ``commit`` — apply sub-commits strictly in ``shard_seq`` order (a
  gap buffer holds early arrivals), pinning the coordinator's global
  transaction id, and reply with the per-view deltas the maintainer
  just applied — the shard's changefeed contribution.  Acks are cached
  per ``shard_seq`` so retransmitted commits are answered
  byte-identically instead of re-applied.
* ``abort`` — drop the stage and tombstone the transaction id, so a
  late retransmitted ``prepare`` can never resurrect an aborted
  transaction.

Every reply carries ``shard`` so the coordinator can attribute it
without trusting transport metadata.

Base-free hosting
-----------------
With ``base_free=True`` the node keeps schemas and declared constraints
but sheds its base-relation rows right after registration: every hosted
view must be **self-maintainable** (:mod:`repro.scheduler.selfmaint`),
and commits are applied by *netting* the sub-transaction's op batches
into per-relation deltas fed straight to the maintainer — for any
valid transaction, pairwise insert/delete netting equals the commit
pipeline's net effect, so view contents and acks stay byte-identical to
a full shard's.  What a base-free node cannot do by itself is check
presence (it has no rows to check against): a duplicate insert or a
delete of an absent row — silent no-ops on a full shard — would leak
into its netted deltas, so without further premises the workload must
avoid them, and existence stays with the shards holding full copies.

Declared keys close that trust boundary.  When a partitioned relation
declares a key that (a) contains the partition attribute, so routing
sends every row with a given key value to this shard, and (b)
*determines the row* under the relation's declared constraint
(:func:`repro.analysis.dependencies.key_determines_row`), the node
keeps a **key-occupancy set** — just the key columns — instead of the
full rows it sheds.  Occupancy answers the only question presence
semantics needs: whether the row a key value pins
(:func:`~repro.analysis.dependencies.determined_row`) is currently
stored.  Netting then reproduces the commit pipeline's silent no-ops
exactly (duplicate inserts and absent deletes drop out), and prepare
rejects key collisions before voting, so such relations accept fully
unrestricted insert/delete workloads while staying byte-identical to a
full shard.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.algebra.conditions import Condition
from repro.algebra.expressions import Expression
from repro.algebra.relation import Delta, Relation
from repro.algebra.tuples import coerce_row
from repro.analysis.dependencies import determined_row, key_determines_row
from repro.cluster.topology import ClusterTopology
from repro.core.maintainer import ViewMaintainer
from repro.core.views import MaterializedView
from repro.engine.constraints import find_violations
from repro.engine.database import Database
from repro.engine.keys import ForeignKey
from repro.engine.persistence import delta_to_document
from repro.errors import ClusterError, ReproError, UnknownViewError
from repro.instrumentation import charge

__all__ = ["ShardNode"]

#: ``{"relation": [[value, ...], ...]}`` — raw (decoded) op batches.
OpBatches = Mapping[str, Sequence[Sequence[Any]]]

#: An encoded row (or key-column slice of one), as stored in relations.
ValueTuple = tuple[int, ...]


class ShardNode:
    """One shard's state machine: local stack + ordered 2PC application."""

    def __init__(
        self,
        shard_id: int,
        topology: ClusterTopology,
        tables: Mapping[str, Sequence[str]],
        rows: Mapping[str, Sequence[Sequence[Any]]],
        constraints: Mapping[str, Condition],
        views: Sequence[tuple[str, Expression]],
        base_free: bool = False,
        keys: Mapping[str, Sequence[Sequence[str]]] | None = None,
        foreign_keys: Sequence[ForeignKey] = (),
    ) -> None:
        self.shard_id = shard_id
        self.topology = topology
        self.base_free = base_free
        #: Distinct base tuples shed by base-free hosting (the
        #: benchmark's memory-saving measure; 0 on full shards).
        self.base_rows_dropped = 0
        self.database = Database()
        for name in sorted(tables):
            attributes = tables[name]
            initial = [tuple(row) for row in rows.get(name, ())]
            if topology.is_partitioned(name):
                initial = [
                    row
                    for row in initial
                    if topology.shard_of_row(name, attributes, row) == shard_id
                ]
            self.database.create_relation(name, list(attributes), initial)
        # Declared constraints come first (they are premises the view
        # plans' static screens may use), global before range: for a
        # partitioned relation the shard declares K ∧ range as one
        # conjoined condition.
        for name in sorted(constraints):
            condition = Condition.coerce(constraints[name])
            spec = topology.spec(name)
            if spec is not None:
                condition = condition.conjoin(spec.range_condition(shard_id))
            if not condition.is_true():
                self.database.declare_constraint(name, condition)
        for name, spec in sorted(topology.partitions.items()):
            if name in constraints:
                continue
            window = spec.range_condition(shard_id)
            if not window.is_true():
                self.database.declare_constraint(name, window)
        # Keys and foreign keys are declared before the maintainer is
        # built so the compiled plans' chase proofs (view keys, FK
        # reductions) see the same premises a single-node stack would.
        for name in sorted(keys or {}):
            for key in (keys or {})[name]:
                self.database.declare_key(name, list(key))
        for fk in foreign_keys:
            self.database.declare_foreign_key(
                fk.relation, fk.attributes, fk.ref_relation, fk.ref_attributes
            )
        #: Base-free key-occupancy: relation → set of key tuples
        #: currently stored, for partitioned relations whose declared
        #: key contains the partition attribute and determines the row
        #: under the declared constraint.  Empty on full shards.
        self._occupancy: dict[str, set[ValueTuple]] = {}
        self._occupancy_keys: dict[str, tuple[str, ...]] = {}
        self._occupancy_positions: dict[str, tuple[int, ...]] = {}
        self.maintainer = ViewMaintainer(self.database)
        self._captured: list[tuple[str, dict[str, Any]]] = []
        self._applied_counts: dict[str, dict[str, int]] = {}
        self.database.add_commit_hook(self._capture_relation_deltas)
        for view_name, expression in views:
            self.maintainer.define_view(view_name, expression)
            self.maintainer.subscribe(view_name, self._capture_view_delta)
        if base_free:
            self._shed_base_copies()
        #: Highest contiguously applied ``shard_seq``.
        self.applied_seq = 0
        self._staged: dict[int, dict[str, Any]] = {}
        self._gap: dict[int, dict[str, Any]] = {}
        self._acks: dict[int, dict[str, Any]] = {}
        self._tombstones: set[int] = set()
        self._committed: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def handle(self, message: Mapping[str, Any]) -> list[dict[str, Any]]:
        """Process one coordinator message; returns the replies to send."""
        kind = message.get("kind")
        if kind == "prepare":
            return self._on_prepare(message)
        if kind == "commit":
            return self._on_commit(message)
        if kind == "abort":
            txn_id = int(message["txn"])
            self._staged.pop(txn_id, None)
            if txn_id not in self._committed:
                self._tombstones.add(txn_id)
            return [{"kind": "abort_ack", "txn": txn_id, "shard": self.shard_id}]
        raise ClusterError(
            f"shard {self.shard_id} received unknown message kind {kind!r}"
        )

    def _on_prepare(self, message: Mapping[str, Any]) -> list[dict[str, Any]]:
        txn_id = int(message["txn"])
        if txn_id in self._tombstones:
            return [
                {
                    "kind": "nack",
                    "txn": txn_id,
                    "shard": self.shard_id,
                    "error": "transaction was already aborted",
                }
            ]
        if txn_id in self._committed:
            # A retransmitted prepare arriving after the commit applied:
            # the coordinator is past this phase; re-answering prepared
            # is harmless and keeps the handler stateless about timing.
            return [{"kind": "prepared", "txn": txn_id, "shard": self.shard_id}]
        error = self._validate(
            message.get("inserts") or {}, message.get("deletes") or {}
        )
        if error is not None:
            self._tombstones.add(txn_id)
            return [
                {
                    "kind": "nack",
                    "txn": txn_id,
                    "shard": self.shard_id,
                    "error": error,
                }
            ]
        self._staged[txn_id] = dict(message)
        return [{"kind": "prepared", "txn": txn_id, "shard": self.shard_id}]

    def _validate(self, inserts: OpBatches, deletes: OpBatches) -> str | None:
        """Row-local validation exactly matching a single-node commit.

        Structural errors (unknown relations, arity, domains) surface
        through a throwaway transaction that is always aborted; the
        constraint check runs over the raw inserted rows, which agrees
        with commit-time net-effect checking in both directions: a
        violating raw insert can never be netted away (the row cannot
        be present, and a same-transaction delete of an absent row does
        not cancel the insert), and netting never adds inserted rows.

        Declared keys and foreign keys are checked here too, on the
        probe's netted post-state: 2PC's contract is that a unanimous
        prepare guarantees the later commit cannot fail, and key checks
        now run inside the commit pipeline, so prepare must anticipate
        them exactly.

        A base-free node holds no rows, so its probe skips the
        delete-existence check (deletes are validated structurally
        only); existence stays with the full replicas in the quorum,
        except for key-occupancy relations, whose presence and key
        collisions are checked against the occupancy set.
        """
        net: dict[str, Delta] = {}
        probe = self.database.begin()
        try:
            if self.base_free:
                for name, batch in sorted(deletes.items()):
                    schema = self.database.relation(name).schema
                    for row in batch:
                        coerce_row(schema, tuple(row))
            else:
                for name, batch in sorted(deletes.items()):
                    probe.delete_many(name, (tuple(row) for row in batch))
            for name, batch in sorted(inserts.items()):
                probe.insert_many(name, (tuple(row) for row in batch))
            if not self.base_free:
                net = probe.net_deltas()
        except ReproError as exc:
            return str(exc)
        finally:
            if probe.state.value == "active":
                probe.abort()
        for name in sorted(inserts):
            condition = self.database.constraints.get(name)
            batch = inserts[name]
            if condition is None or not batch:
                continue
            schema = self.database.relation(name).schema
            encoded = {coerce_row(schema, tuple(row)): 1 for row in batch}
            violations = find_violations(name, condition, schema, encoded)
            if violations:
                preview = ", ".join(map(str, violations[:3]))
                return (
                    f"shard {self.shard_id} constraint {condition} on "
                    f"{name!r} rejects: {preview}"
                )
        if not self.base_free:
            violation = self.database.net_effect_violation(net)
            if violation is not None:
                return f"shard {self.shard_id} rejects: {violation}"
        for name in sorted(self._occupancy):
            _, _, violation = self._occupancy_net(
                name, inserts.get(name, ()), deletes.get(name, ())
            )
            if violation is not None:
                return f"shard {self.shard_id} rejects: {violation}"
        return None

    def _on_commit(self, message: Mapping[str, Any]) -> list[dict[str, Any]]:
        shard_seq = int(message["shard_seq"])
        if shard_seq > self.applied_seq:
            self._gap[shard_seq] = dict(message)
        replies = []
        while self.applied_seq + 1 in self._gap:
            self._apply_commit(self._gap.pop(self.applied_seq + 1))
        # Ack everything acked-or-applied that this message asks about,
        # from the cache — retransmissions get byte-identical answers.
        if shard_seq <= self.applied_seq:
            replies.append(self._acks[shard_seq])
        return replies

    def _apply_commit(self, message: dict[str, Any]) -> None:
        txn_id = int(message["txn"])
        shard_seq = int(message["shard_seq"])
        self._staged.pop(txn_id, None)
        self._captured.clear()
        self._applied_counts = {}
        if self.base_free:
            deltas = self._raw_netted_deltas(message)
            for name in self._occupancy:
                delta = deltas.get(name)
                if delta is None:
                    continue
                positions = self._occupancy_positions[name]
                occupied = self._occupancy[name]
                for values in delta.deleted:
                    occupied.discard(tuple(values[i] for i in positions))
                for values in delta.inserted:
                    occupied.add(tuple(values[i] for i in positions))
            if deltas:
                self.maintainer.apply_deltas(txn_id, deltas)
            self._capture_relation_deltas(txn_id, deltas)
        else:
            txn = self.database.begin(txn_id=txn_id)
            for name, batch in sorted((message.get("deletes") or {}).items()):
                txn.delete_many(name, (tuple(row) for row in batch))
            for name, batch in sorted((message.get("inserts") or {}).items()):
                txn.insert_many(name, (tuple(row) for row in batch))
            txn.commit()
        views = {name: doc for name, doc in self._captured}
        self._captured.clear()
        self.applied_seq = shard_seq
        self._committed[txn_id] = shard_seq
        self._acks[shard_seq] = {
            "kind": "committed",
            "txn": txn_id,
            "shard": self.shard_id,
            "shard_seq": shard_seq,
            "views": views,
            "applied": self._applied_counts,
        }
        self._applied_counts = {}

    # ------------------------------------------------------------------
    # Base-free hosting
    # ------------------------------------------------------------------
    def _shed_base_copies(self) -> None:
        """Validate self-maintainability, then drop every base row.

        Runs once at registration: the hosted views have just been
        materialized against the bootstrap rows, so all that remains is
        proving no future maintenance step will read base state.  The
        per-shard range constraints are already declared, so a view
        whose condition contradicts this shard's ownership window
        classifies ``constraint_empty_join`` and is hosted as provably
        empty.

        Before clearing, partitioned relations with a row-determining
        declared key seed their key-occupancy set from the bootstrap
        rows: the key columns survive the shed and stand in for the
        full rows in all future presence checks.
        """
        offenders = [
            name
            for name in self.maintainer.view_names()
            if not self.maintainer.is_self_maintainable(name)
        ]
        if offenders:
            reasons = "; ".join(
                f"{name}: {self.maintainer.self_maintainability(name).reason}"
                for name in offenders
            )
            raise ClusterError(
                f"base-free shard {self.shard_id} cannot host "
                f"non-self-maintainable view(s) {offenders}: {reasons}"
            )
        for name, spec in sorted(self.topology.partitions.items()):
            relation = self.database.relation(name)
            constraint = self.database.constraints.get(name)
            if constraint is None:
                continue
            for key in self.database.keys.keys_of(name):
                if spec.key not in key:
                    # Routing is by the partition attribute; a key that
                    # omits it cannot be enforced shard-locally.
                    continue
                if not key_determines_row(relation.schema, key, constraint):
                    continue
                positions = tuple(relation.schema.index(a) for a in key)
                self._occupancy_keys[name] = key
                self._occupancy_positions[name] = positions
                self._occupancy[name] = {
                    tuple(values[i] for i in positions)
                    for values in relation.value_tuples()
                }
                charge("base_free_keys_tracked", len(self._occupancy[name]))
                break
        dropped = 0
        for name in sorted(self.database.relation_names()):
            dropped += self.database.relation(name).clear()
        self.base_rows_dropped = dropped
        charge("base_free_rows_dropped", dropped)

    def _raw_netted_deltas(self, message: Mapping[str, Any]) -> dict[str, Delta]:
        """Net a sub-transaction's raw op batches into per-relation deltas.

        Pairwise insert/delete netting equals the commit pipeline's
        net-effect for any valid transaction: a delete cancels exactly
        one insert of the same tuple (or one stored copy — which the
        pipeline also nets to a count move), and what remains is the
        ``(i_r, d_r)`` pair a full shard's commit would produce.

        Key-occupancy relations instead net through
        :meth:`_occupancy_net`, which consults the occupancy set to
        reproduce the pipeline's presence semantics (duplicate inserts
        and absent deletes are silent no-ops), so their workloads need
        not be restricted to exact operations.
        """
        inserts = message.get("inserts") or {}
        deletes = message.get("deletes") or {}
        deltas: dict[str, Delta] = {}
        for name in sorted(set(inserts) | set(deletes)):
            schema = self.database.relation(name).schema
            if name in self._occupancy:
                pend_ins, pend_del, _ = self._occupancy_net(
                    name, inserts.get(name, ()), deletes.get(name, ())
                )
                if pend_ins or pend_del:
                    deltas[name] = Delta.from_counts(
                        schema,
                        {values: 1 for values in pend_ins},
                        {values: 1 for values in pend_del},
                    )
                continue
            net: dict[tuple, int] = {}
            for row in deletes.get(name, ()):
                values = coerce_row(schema, tuple(row))
                net[values] = net.get(values, 0) - 1
            for row in inserts.get(name, ()):
                values = coerce_row(schema, tuple(row))
                net[values] = net.get(values, 0) + 1
            inserted = {values: count for values, count in net.items() if count > 0}
            deleted = {values: -count for values, count in net.items() if count < 0}
            if inserted or deleted:
                deltas[name] = Delta.from_counts(schema, inserted, deleted)
        return deltas

    def _occupancy_net(
        self,
        name: str,
        insert_rows: Sequence[Sequence[Any]],
        delete_rows: Sequence[Sequence[Any]],
    ) -> tuple[set[ValueTuple], set[ValueTuple], str | None]:
        """Presence-aware netting against the key-occupancy set.

        Replays the commit pipeline's semantics — deletes first, then
        inserts, as :meth:`_apply_commit` would feed a transaction —
        with ``determined_row`` standing in for the shed stored rows:
        a delete only takes effect when the occupancy set holds its key
        *and* the determined row matches (otherwise the row is absent
        and the delete is a silent no-op); an insert of the row a key
        value already pins is a silent no-op; an insert whose key is
        held by a *different* surviving row is a key collision.

        Returns ``(inserted, deleted, violation)`` where the first two
        are the netted row sets and ``violation`` is an error string
        when the batch would break the declared key — prepare nacks on
        it, so commits never see one.
        """
        schema = self.database.relation(name).schema
        key = self._occupancy_keys[name]
        positions = self._occupancy_positions[name]
        constraint = self.database.constraints.get(name)
        occupied = self._occupancy[name]
        removed: set[ValueTuple] = set()
        pend_ins: set[ValueTuple] = set()
        pend_del: set[ValueTuple] = set()
        for row in delete_rows:
            values = coerce_row(schema, tuple(row))
            key_values = tuple(values[i] for i in positions)
            if key_values not in occupied or key_values in removed:
                continue
            stored = determined_row(schema, key, key_values, constraint)
            if stored == values:
                pend_del.add(values)
                removed.add(key_values)
        for row in insert_rows:
            values = coerce_row(schema, tuple(row))
            key_values = tuple(values[i] for i in positions)
            if values in pend_del:
                # Reinsert of a row deleted earlier in this batch:
                # cancels to a net no-op, restoring occupancy.
                pend_del.discard(values)
                removed.discard(key_values)
                continue
            stored = None
            if key_values in occupied and key_values not in removed:
                stored = determined_row(schema, key, key_values, constraint)
            if stored == values or values in pend_ins:
                continue
            pend_ins.add(values)
        # Validate the post-state: occupancy keys are pairwise distinct
        # by invariant, so a collision must involve a netted insert —
        # against a surviving stored row, or against another insert.
        # A single pass over the *final* pending sets also covers
        # delete/insert/reinsert interleavings where a cancellation
        # restores a stored row after a colliding insert was netted.
        inserted_keys: dict[ValueTuple, ValueTuple] = {}
        for values in sorted(pend_ins):
            key_values = tuple(values[i] for i in positions)
            collides_with = inserted_keys.get(key_values)
            if collides_with is None and (
                key_values in occupied and key_values not in removed
            ):
                collides_with = determined_row(
                    schema, key, key_values, constraint
                )
            if collides_with is not None:
                return (
                    pend_ins,
                    pend_del,
                    f"the key ({', '.join(key)}) on {name!r}: "
                    f"{values!r}/{collides_with!r}",
                )
            inserted_keys[key_values] = values
        return pend_ins, pend_del, None

    def _capture_view_delta(self, view: MaterializedView, delta: Delta) -> None:
        self._captured.append((view.definition.name, delta_to_document(delta)))

    def _capture_relation_deltas(
        self, txn_id: int, deltas: Mapping[str, Delta]
    ) -> None:
        self._applied_counts = {
            name: {
                "inserted": delta.insert_count(),
                "deleted": delta.delete_count(),
            }
            for name, delta in sorted(deltas.items())
            if not delta.is_empty()
        }

    # ------------------------------------------------------------------
    # Local reads (scatter-gather query path; no messages involved)
    # ------------------------------------------------------------------
    def snapshot_counts(self, target: str) -> tuple[Relation, str]:
        """``(contents, kind)`` for a view or base relation by name."""
        try:
            return self.maintainer.view(target).contents, "view"
        except UnknownViewError:
            return self.database.relation(target), "relation"

    def __repr__(self) -> str:
        return (
            f"<ShardNode {self.shard_id} applied_seq={self.applied_seq} "
            f"{len(self._staged)} staged, {len(self._gap)} buffered>"
        )
