"""One shard worker: the unchanged single-node stack plus 2PC glue.

A :class:`ShardNode` owns a plain :class:`~repro.engine.database.
Database` + :class:`~repro.core.maintainer.ViewMaintainer` pair — the
same stack a single-node deployment runs, compiled plans, relevance
screens and all.  What makes it a shard is purely declarative: its base
relations hold only the rows its key-ranges own (partitioned relations)
or a full copy (replicated relations), and each partitioned relation's
ownership range is *declared as a constraint*, so a misrouted row is
rejected by the ordinary commit pipeline and the range doubles as a
premise for the compiled plans' own static-irrelevance screens.

The 2PC surface is a message handler (transport-agnostic — the
coordinator drives it over :class:`~repro.cluster.links.DirectLink` or
a simulated lossy channel):

* ``prepare`` — validate the sub-transaction (structure, domains, and
  declared constraints against the *raw* inserted rows, which is exact:
  a raw insert that violates a constraint can never be netted away,
  because the violating row cannot already be present) and stage it.
  No state changes; a crash between prepare and commit loses only the
  stage, which the coordinator's retransmitted, self-contained commit
  message replaces.
* ``commit`` — apply sub-commits strictly in ``shard_seq`` order (a
  gap buffer holds early arrivals), pinning the coordinator's global
  transaction id, and reply with the per-view deltas the maintainer
  just applied — the shard's changefeed contribution.  Acks are cached
  per ``shard_seq`` so retransmitted commits are answered
  byte-identically instead of re-applied.
* ``abort`` — drop the stage and tombstone the transaction id, so a
  late retransmitted ``prepare`` can never resurrect an aborted
  transaction.

Every reply carries ``shard`` so the coordinator can attribute it
without trusting transport metadata.

Base-free hosting
-----------------
With ``base_free=True`` the node keeps schemas and declared constraints
but sheds its base-relation rows right after registration: every hosted
view must be **self-maintainable** (:mod:`repro.scheduler.selfmaint`),
and commits are applied by *raw-netting* the sub-transaction's op
batches into per-relation deltas fed straight to the maintainer — for
any valid transaction, pairwise insert/delete netting equals the commit
pipeline's net effect, so view contents and acks stay byte-identical to
a full shard's.  What a base-free node cannot do is check delete
existence (it has no rows to check against); prepare still validates
structure, domains and constraints on raw inserts, and existence stays
with the shards holding full copies — the coordinator aborts on any
nack, so one full replica in the prepare quorum preserves exactness.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.algebra.conditions import Condition
from repro.algebra.expressions import Expression
from repro.algebra.relation import Delta, Relation
from repro.algebra.tuples import coerce_row
from repro.cluster.topology import ClusterTopology
from repro.core.maintainer import ViewMaintainer
from repro.core.views import MaterializedView
from repro.engine.constraints import find_violations
from repro.engine.database import Database
from repro.engine.persistence import delta_to_document
from repro.errors import ClusterError, ReproError, UnknownViewError
from repro.instrumentation import charge

__all__ = ["ShardNode"]

#: ``{"relation": [[value, ...], ...]}`` — raw (decoded) op batches.
OpBatches = Mapping[str, Sequence[Sequence[Any]]]


class ShardNode:
    """One shard's state machine: local stack + ordered 2PC application."""

    def __init__(
        self,
        shard_id: int,
        topology: ClusterTopology,
        tables: Mapping[str, Sequence[str]],
        rows: Mapping[str, Sequence[Sequence[Any]]],
        constraints: Mapping[str, Condition],
        views: Sequence[tuple[str, Expression]],
        base_free: bool = False,
    ) -> None:
        self.shard_id = shard_id
        self.topology = topology
        self.base_free = base_free
        #: Distinct base tuples shed by base-free hosting (the
        #: benchmark's memory-saving measure; 0 on full shards).
        self.base_rows_dropped = 0
        self.database = Database()
        for name in sorted(tables):
            attributes = tables[name]
            initial = [tuple(row) for row in rows.get(name, ())]
            if topology.is_partitioned(name):
                initial = [
                    row
                    for row in initial
                    if topology.shard_of_row(name, attributes, row) == shard_id
                ]
            self.database.create_relation(name, list(attributes), initial)
        # Declared constraints come first (they are premises the view
        # plans' static screens may use), global before range: for a
        # partitioned relation the shard declares K ∧ range as one
        # conjoined condition.
        for name in sorted(constraints):
            condition = Condition.coerce(constraints[name])
            spec = topology.spec(name)
            if spec is not None:
                condition = condition.conjoin(spec.range_condition(shard_id))
            if not condition.is_true():
                self.database.declare_constraint(name, condition)
        for name, spec in sorted(topology.partitions.items()):
            if name in constraints:
                continue
            window = spec.range_condition(shard_id)
            if not window.is_true():
                self.database.declare_constraint(name, window)
        self.maintainer = ViewMaintainer(self.database)
        self._captured: list[tuple[str, dict[str, Any]]] = []
        self._applied_counts: dict[str, dict[str, int]] = {}
        self.database.add_commit_hook(self._capture_relation_deltas)
        for view_name, expression in views:
            self.maintainer.define_view(view_name, expression)
            self.maintainer.subscribe(view_name, self._capture_view_delta)
        if base_free:
            self._shed_base_copies()
        #: Highest contiguously applied ``shard_seq``.
        self.applied_seq = 0
        self._staged: dict[int, dict[str, Any]] = {}
        self._gap: dict[int, dict[str, Any]] = {}
        self._acks: dict[int, dict[str, Any]] = {}
        self._tombstones: set[int] = set()
        self._committed: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def handle(self, message: Mapping[str, Any]) -> list[dict[str, Any]]:
        """Process one coordinator message; returns the replies to send."""
        kind = message.get("kind")
        if kind == "prepare":
            return self._on_prepare(message)
        if kind == "commit":
            return self._on_commit(message)
        if kind == "abort":
            txn_id = int(message["txn"])
            self._staged.pop(txn_id, None)
            if txn_id not in self._committed:
                self._tombstones.add(txn_id)
            return [{"kind": "abort_ack", "txn": txn_id, "shard": self.shard_id}]
        raise ClusterError(
            f"shard {self.shard_id} received unknown message kind {kind!r}"
        )

    def _on_prepare(self, message: Mapping[str, Any]) -> list[dict[str, Any]]:
        txn_id = int(message["txn"])
        if txn_id in self._tombstones:
            return [
                {
                    "kind": "nack",
                    "txn": txn_id,
                    "shard": self.shard_id,
                    "error": "transaction was already aborted",
                }
            ]
        if txn_id in self._committed:
            # A retransmitted prepare arriving after the commit applied:
            # the coordinator is past this phase; re-answering prepared
            # is harmless and keeps the handler stateless about timing.
            return [{"kind": "prepared", "txn": txn_id, "shard": self.shard_id}]
        error = self._validate(
            message.get("inserts") or {}, message.get("deletes") or {}
        )
        if error is not None:
            self._tombstones.add(txn_id)
            return [
                {
                    "kind": "nack",
                    "txn": txn_id,
                    "shard": self.shard_id,
                    "error": error,
                }
            ]
        self._staged[txn_id] = dict(message)
        return [{"kind": "prepared", "txn": txn_id, "shard": self.shard_id}]

    def _validate(self, inserts: OpBatches, deletes: OpBatches) -> str | None:
        """Row-local validation exactly matching a single-node commit.

        Structural errors (unknown relations, arity, domains) surface
        through a throwaway transaction that is always aborted; the
        constraint check runs over the raw inserted rows, which agrees
        with commit-time net-effect checking in both directions: a
        violating raw insert can never be netted away (the row cannot
        be present, and a same-transaction delete of an absent row does
        not cancel the insert), and netting never adds inserted rows.

        A base-free node holds no rows, so its probe skips the
        delete-existence check (deletes are validated structurally
        only); existence stays with the full replicas in the quorum.
        """
        probe = self.database.begin()
        try:
            if self.base_free:
                for name, batch in sorted(deletes.items()):
                    schema = self.database.relation(name).schema
                    for row in batch:
                        coerce_row(schema, tuple(row))
            else:
                for name, batch in sorted(deletes.items()):
                    probe.delete_many(name, (tuple(row) for row in batch))
            for name, batch in sorted(inserts.items()):
                probe.insert_many(name, (tuple(row) for row in batch))
        except ReproError as exc:
            return str(exc)
        finally:
            if probe.state.value == "active":
                probe.abort()
        for name in sorted(inserts):
            condition = self.database.constraints.get(name)
            batch = inserts[name]
            if condition is None or not batch:
                continue
            schema = self.database.relation(name).schema
            encoded = {coerce_row(schema, tuple(row)): 1 for row in batch}
            violations = find_violations(name, condition, schema, encoded)
            if violations:
                preview = ", ".join(map(str, violations[:3]))
                return (
                    f"shard {self.shard_id} constraint {condition} on "
                    f"{name!r} rejects: {preview}"
                )
        return None

    def _on_commit(self, message: Mapping[str, Any]) -> list[dict[str, Any]]:
        shard_seq = int(message["shard_seq"])
        if shard_seq > self.applied_seq:
            self._gap[shard_seq] = dict(message)
        replies = []
        while self.applied_seq + 1 in self._gap:
            self._apply_commit(self._gap.pop(self.applied_seq + 1))
        # Ack everything acked-or-applied that this message asks about,
        # from the cache — retransmissions get byte-identical answers.
        if shard_seq <= self.applied_seq:
            replies.append(self._acks[shard_seq])
        return replies

    def _apply_commit(self, message: dict[str, Any]) -> None:
        txn_id = int(message["txn"])
        shard_seq = int(message["shard_seq"])
        self._staged.pop(txn_id, None)
        self._captured.clear()
        self._applied_counts = {}
        if self.base_free:
            deltas = self._raw_netted_deltas(message)
            if deltas:
                self.maintainer.apply_deltas(txn_id, deltas)
            self._capture_relation_deltas(txn_id, deltas)
        else:
            txn = self.database.begin(txn_id=txn_id)
            for name, batch in sorted((message.get("deletes") or {}).items()):
                txn.delete_many(name, (tuple(row) for row in batch))
            for name, batch in sorted((message.get("inserts") or {}).items()):
                txn.insert_many(name, (tuple(row) for row in batch))
            txn.commit()
        views = {name: doc for name, doc in self._captured}
        self._captured.clear()
        self.applied_seq = shard_seq
        self._committed[txn_id] = shard_seq
        self._acks[shard_seq] = {
            "kind": "committed",
            "txn": txn_id,
            "shard": self.shard_id,
            "shard_seq": shard_seq,
            "views": views,
            "applied": self._applied_counts,
        }
        self._applied_counts = {}

    # ------------------------------------------------------------------
    # Base-free hosting
    # ------------------------------------------------------------------
    def _shed_base_copies(self) -> None:
        """Validate self-maintainability, then drop every base row.

        Runs once at registration: the hosted views have just been
        materialized against the bootstrap rows, so all that remains is
        proving no future maintenance step will read base state.  The
        per-shard range constraints are already declared, so a view
        whose condition contradicts this shard's ownership window
        classifies ``constraint_empty_join`` and is hosted as provably
        empty.
        """
        offenders = [
            name
            for name in self.maintainer.view_names()
            if not self.maintainer.is_self_maintainable(name)
        ]
        if offenders:
            reasons = "; ".join(
                f"{name}: {self.maintainer.self_maintainability(name).reason}"
                for name in offenders
            )
            raise ClusterError(
                f"base-free shard {self.shard_id} cannot host "
                f"non-self-maintainable view(s) {offenders}: {reasons}"
            )
        dropped = 0
        for name in sorted(self.database.relation_names()):
            dropped += self.database.relation(name).clear()
        self.base_rows_dropped = dropped
        charge("base_free_rows_dropped", dropped)

    def _raw_netted_deltas(self, message: Mapping[str, Any]) -> dict[str, Delta]:
        """Net a sub-transaction's raw op batches into per-relation deltas.

        Pairwise insert/delete netting equals the commit pipeline's
        net-effect for any valid transaction: a delete cancels exactly
        one insert of the same tuple (or one stored copy — which the
        pipeline also nets to a count move), and what remains is the
        ``(i_r, d_r)`` pair a full shard's commit would produce.
        """
        inserts = message.get("inserts") or {}
        deletes = message.get("deletes") or {}
        deltas: dict[str, Delta] = {}
        for name in sorted(set(inserts) | set(deletes)):
            schema = self.database.relation(name).schema
            net: dict[tuple, int] = {}
            for row in deletes.get(name, ()):
                values = coerce_row(schema, tuple(row))
                net[values] = net.get(values, 0) - 1
            for row in inserts.get(name, ()):
                values = coerce_row(schema, tuple(row))
                net[values] = net.get(values, 0) + 1
            inserted = {values: count for values, count in net.items() if count > 0}
            deleted = {values: -count for values, count in net.items() if count < 0}
            if inserted or deleted:
                deltas[name] = Delta.from_counts(schema, inserted, deleted)
        return deltas

    def _capture_view_delta(self, view: MaterializedView, delta: Delta) -> None:
        self._captured.append((view.definition.name, delta_to_document(delta)))

    def _capture_relation_deltas(
        self, txn_id: int, deltas: Mapping[str, Delta]
    ) -> None:
        self._applied_counts = {
            name: {
                "inserted": delta.insert_count(),
                "deleted": delta.delete_count(),
            }
            for name, delta in sorted(deltas.items())
            if not delta.is_empty()
        }

    # ------------------------------------------------------------------
    # Local reads (scatter-gather query path; no messages involved)
    # ------------------------------------------------------------------
    def snapshot_counts(self, target: str) -> tuple[Relation, str]:
        """``(contents, kind)`` for a view or base relation by name."""
        try:
            return self.maintainer.view(target).contents, "view"
        except UnknownViewError:
            return self.database.relation(target), "relation"

    def __repr__(self) -> str:
        return (
            f"<ShardNode {self.shard_id} applied_seq={self.applied_seq} "
            f"{len(self._staged)} staged, {len(self._gap)} buffered>"
        )
