"""The routing table: which (shard, relation) deltas never matter.

Derived once at cluster construction from three static inputs — the
topology, the declared global constraints, and every view's normal
form — by quantifying Theorem 4.1 over each shard's premises
(:func:`repro.analysis.routing.is_shard_irrelevant`).  A replicated
relation's delta is *skippable* for a shard when **every** registered
view that references the relation is provably unaffected on that shard;
the coordinator then never ships that relation's deltas there, and the
shard's stale local copy is harmless because each such view is provably
empty on that shard in every reachable state.

Partitioned relations are never in the table: their deltas route by
key, row by row, to exactly the owner shard.  :data:`~repro.cluster.
topology.HOME_SHARD` is never skipped either — it keeps the
authoritative, delta-complete copy of every replicated relation.

This module also enforces the *shardable class*: a view must contain
exactly one occurrence of exactly one partitioned relation, so every
output tuple derives from exactly one shard's slice and the merged
cluster view is a disjoint bag-union of the per-shard views.  Views
over only replicated operands (each shard would compute the full view,
and the merge would multiply counts) and joins or self-joins across
partitioned occurrences (cross-shard joins) are rejected with
:class:`~repro.errors.ClusterError` at registration.
"""

from __future__ import annotations

from typing import Mapping

from repro.algebra.conditions import Condition
from repro.algebra.expressions import NormalForm
from repro.analysis.routing import is_shard_irrelevant
from repro.cluster.topology import HOME_SHARD, ClusterTopology
from repro.errors import ClusterError

__all__ = ["RoutingTable", "build_routing_table", "validate_shardable"]


def validate_shardable(
    name: str, normal_form: NormalForm, topology: ClusterTopology
) -> str:
    """Reject views outside the shardable class; returns the name of
    the view's single partitioned operand."""
    partitioned = [
        occurrence.name
        for occurrence in normal_form.occurrences
        if topology.is_partitioned(occurrence.name)
    ]
    if not partitioned:
        raise ClusterError(
            f"view {name!r} references no partitioned relation; every "
            "shard would materialize the full view and the merged "
            "bag-union would multiply counts — partition one operand, "
            "or maintain this view on a single node"
        )
    if len(partitioned) > 1:
        raise ClusterError(
            f"view {name!r} references partitioned occurrences "
            f"{sorted(partitioned)}; joins across partitioned operands "
            "(or self-joins of one) would need cross-shard joins, which "
            "this subsystem does not perform"
        )
    return partitioned[0]


class RoutingTable:
    """Immutable skip decisions: ``(shard, relation)`` pairs proven safe."""

    __slots__ = ("topology", "skippable", "proofs_attempted")

    def __init__(
        self,
        topology: ClusterTopology,
        skippable: frozenset[tuple[int, str]],
        proofs_attempted: int,
    ) -> None:
        self.topology = topology
        self.skippable = skippable
        self.proofs_attempted = proofs_attempted

    def should_skip(self, shard: int, relation: str) -> bool:
        """True when ``relation``'s deltas never matter on ``shard``."""
        return (shard, relation) in self.skippable

    def describe(self) -> list[str]:
        """Deterministic one-line-per-skip rendering (docs, CLI, tests)."""
        return [
            f"shard {shard} never receives deltas of {relation!r}"
            for shard, relation in sorted(self.skippable)
        ]

    def __repr__(self) -> str:
        return (
            f"<RoutingTable {len(self.skippable)} skippable pairs, "
            f"{self.proofs_attempted} proofs>"
        )


def build_routing_table(
    topology: ClusterTopology,
    views: Mapping[str, NormalForm],
    constraints: Mapping[str, Condition],
) -> RoutingTable:
    """Derive the skip set by proving irrelevance per (shard, relation).

    ``views`` maps view names to their normal forms (all of which must
    already be shardable — see :func:`validate_shardable`);
    ``constraints`` maps relation names to declared global constraints.
    Only replicated relations on non-home shards are candidates; a pair
    enters the table when every view referencing the relation is
    shard-irrelevant under that shard's premises.
    """
    for name, normal_form in views.items():
        validate_shardable(name, normal_form, topology)
    replicated = sorted(
        {
            occurrence.name
            for normal_form in views.values()
            for occurrence in normal_form.occurrences
            if not topology.is_partitioned(occurrence.name)
        }
    )
    skippable: set[tuple[int, str]] = set()
    proofs = 0
    for shard in range(topology.shards):
        if shard == HOME_SHARD:
            continue
        premises = topology.shard_premises(shard, constraints)
        for relation in replicated:
            referencing = [
                normal_form
                for normal_form in views.values()
                if normal_form.occurrences_of(relation)
            ]
            proofs += len(referencing)
            if all(
                is_shard_irrelevant(normal_form, relation, premises)
                for normal_form in referencing
            ):
                skippable.add((shard, relation))
    return RoutingTable(topology, frozenset(skippable), proofs)
