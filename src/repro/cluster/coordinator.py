"""The scatter-gather coordinator: one client surface over N shards.

The coordinator owns the cluster's global order and nothing else — all
relation state and view maintenance live in the shards.  Per committed
client transaction it:

1. **splits** the raw operation batches: partitioned relations route
   row-by-row to the owner shard (:meth:`~repro.cluster.topology.
   ClusterTopology.shard_of_row`); replicated relations go to the home
   shard and every other shard the routing table cannot prove
   indifferent (``cluster_deltas_sent`` / ``cluster_deltas_skipped``);
2. **prepares** on every participant.  A shard validates its
   sub-transaction exactly as a single-node commit would (structure,
   domains, declared constraints), so a unanimous prepare guarantees
   the later commit cannot fail — the classic 2PC contract;
3. **commits** with per-shard ``shard_seq`` and global ``cluster_seq``
   assigned at the decision point.  Commit messages are self-contained
   (they carry the ops, not a reference to the stage), so a shard that
   crashed after preparing needs no recovery dialogue; retransmission
   plus the shard's ack cache make delivery idempotent;
4. **merges** the per-shard view deltas carried on the commit acks into
   one cluster changefeed event, netting rows across shards, buffered
   and emitted strictly in ``cluster_seq`` order however the acks
   arrive.

Timeouts are logical ticks (:meth:`ClusterCoordinator.tick`), injected
by the caller — the wall clock is never consulted, so simulated and
real deployments run the identical state machine.  A transaction still
*preparing* past ``TIMEOUT_TICKS`` aborts with ``shard_unavailable``
(retry is safe: nothing committed anywhere).  A transaction past its
commit point never times out — the decision is durable in
:attr:`ClusterCoordinator.history` and retransmits until every ack
arrives, which is what makes crash recovery exact: rebuilding a shard
is replaying its history slice through a fresh :class:`~repro.cluster.
shard.ShardNode`.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from repro.algebra.conditions import Condition
from repro.algebra.expressions import (
    Expression,
    NormalForm,
    to_normal_form,
)
from repro.algebra.relation import Relation
from repro.algebra.schema import RelationSchema
from repro.cluster.links import DirectLink, SimShardLink
from repro.cluster.routing import RoutingTable, build_routing_table
from repro.cluster.shard import ShardNode
from repro.cluster.topology import HOME_SHARD, ClusterTopology
from repro.engine.keys import ForeignKey
from repro.errors import ClusterError, UnknownRelationError
from repro.instrumentation import CostRecorder, charge, recording
from repro.server import protocol
from repro.server.server import Changefeed

__all__ = ["ClusterCoordinator", "PendingTxn", "build_cluster"]

Link = DirectLink | SimShardLink
OpBatches = Mapping[str, Sequence[Sequence[Any]]]
EmitHook = Callable[[int, Mapping[str, Mapping[str, Any]]], None]

#: Tick budget before an unresponsive prepare phase aborts.
TIMEOUT_TICKS = 12
#: Ticks between retransmissions of an unacknowledged message.
RETRY_TICKS = 3


class PendingTxn:
    """Coordinator-side state of one in-flight distributed transaction."""

    __slots__ = (
        "txn_id",
        "state",
        "participants",
        "prepared",
        "acked",
        "messages",
        "start_tick",
        "last_send",
        "cluster_seq",
        "view_docs",
        "applied_docs",
        "raw_ops",
    )

    def __init__(
        self,
        txn_id: int,
        participants: frozenset[int],
        messages: dict[int, dict[str, Any]],
        raw_ops: dict[str, Any],
        start_tick: int,
    ) -> None:
        self.txn_id = txn_id
        self.state = "preparing"
        self.participants = participants
        self.prepared: set[int] = set()
        self.acked: set[int] = set()
        #: The currently outstanding message per participant shard.
        self.messages = messages
        self.start_tick = start_tick
        self.last_send: dict[int, int] = {}
        self.cluster_seq: int | None = None
        #: Per-shard view delta documents gathered from commit acks.
        self.view_docs: dict[int, dict[str, dict[str, Any]]] = {}
        #: Per-shard applied base-relation counts from commit acks.
        self.applied_docs: dict[int, dict[str, dict[str, int]]] = {}
        #: The unsplit client ops, for the ordered committed log.
        self.raw_ops = raw_ops

    def outstanding(self) -> set[int]:
        """Participants whose current-phase reply is still missing."""
        if self.state == "preparing":
            return set(self.participants) - self.prepared
        return set(self.participants) - self.acked


class ClusterCoordinator:
    """Routes, two-phase-commits, and merges across a fixed shard set."""

    def __init__(
        self,
        topology: ClusterTopology,
        tables: Mapping[str, Sequence[str]],
        constraints: Mapping[str, Condition | str],
        views: Sequence[tuple[str, Expression]],
        links: Sequence[Link],
        *,
        shard_factory: Callable[[int], ShardNode] | None = None,
        routed: bool = True,
        changefeed_history: int = 256,
    ) -> None:
        if len(links) != topology.shards:
            raise ClusterError(
                f"topology has {topology.shards} shards but "
                f"{len(links)} links were supplied"
            )
        self.topology = topology
        self.tables = {name: tuple(attrs) for name, attrs in tables.items()}
        self.constraints = {
            name: Condition.coerce(cond) for name, cond in constraints.items()
        }
        self.links = list(links)
        self.routed = routed
        self.recorder = CostRecorder()
        self._shard_factory = shard_factory
        catalog = {
            name: RelationSchema(list(attrs))
            for name, attrs in self.tables.items()
        }
        # Routing works over each view's SPJ core: aggregate views are
        # unwrapped (delta relevance is a property of the core), after
        # checking that every partitioned operand's partition key is a
        # grouping key — only then are groups shard-local, making the
        # coordinator's bag-union merge of visible group rows exact.
        self.views: dict[str, NormalForm] = {}
        for name, expression in views:
            from repro.algebra.aggregates import Aggregate

            core = expression
            if isinstance(expression, Aggregate):
                expression.schema(catalog)
                keys = set(expression.spec.keys)
                for base in sorted(set(expression.base_names())):
                    spec = topology.spec(base)
                    if spec is not None and spec.key not in keys:
                        raise ClusterError(
                            f"aggregate view {name!r} groups without the "
                            f"partition key {spec.key!r} of {base!r}: a "
                            "group would span shards and per-shard "
                            "aggregates could not be merged by union — "
                            f"add {spec.key!r} to the grouping keys or "
                            "replicate the relation"
                        )
                core = expression.child
            self.views[name] = to_normal_form(core, catalog)
        with recording(self.recorder):
            self.routing: RoutingTable = build_routing_table(
                topology, self.views, self.constraints
            )
        self.feeds: dict[str, Changefeed] = {
            name: Changefeed(name, 0, changefeed_history)
            for name in self.views
        }
        #: Hooks fired per merged changefeed event (simulation mirror).
        self.emit_hooks: list[EmitHook] = []
        #: Per-shard authoritative commit-message log, ``shard_seq`` order.
        self.history: list[list[dict[str, Any]]] = [
            [] for _ in range(topology.shards)
        ]
        #: Client raw ops of every committed txn, ``cluster_seq`` order.
        self.committed_log: list[dict[str, Any]] = []
        self._txn_counter = 0
        self._cluster_seq = 0
        self._shard_seqs = [0] * topology.shards
        self._tick = 0
        self._pending: dict[int, PendingTxn] = {}
        self._outcomes: dict[int, dict[str, Any]] = {}
        #: Completed-but-unemitted events, keyed by ``cluster_seq``.
        self._complete: dict[int, tuple[int, dict[str, dict[str, Any]]]] = {}
        #: Raw client ops awaiting in-order emission, by ``cluster_seq``.
        self._raw_by_seq: dict[int, dict[str, Any]] = {}
        self._emitted_seq = 0
        for link in self.links:
            link.deliver = self.on_shard_message

    # ------------------------------------------------------------------
    # Client transactions
    # ------------------------------------------------------------------
    def submit(
        self,
        inserts: OpBatches | None = None,
        deletes: OpBatches | None = None,
    ) -> int:
        """Route and start one client transaction; returns its id.

        The outcome arrives asynchronously (synchronously over
        :class:`~repro.cluster.links.DirectLink`): poll
        :meth:`outcome` for ``{"status": "committed", ...}`` or
        ``{"status": "aborted", "code": ..., "error": ...}``.
        """
        raw_inserts = {
            name: [list(row) for row in rows]
            for name, rows in (inserts or {}).items()
            if rows
        }
        raw_deletes = {
            name: [list(row) for row in rows]
            for name, rows in (deletes or {}).items()
            if rows
        }
        for name in sorted(set(raw_inserts) | set(raw_deletes)):
            if name not in self.tables:
                raise UnknownRelationError(f"unknown relation {name!r}")
        with recording(self.recorder):
            per_shard = self._split(raw_inserts, raw_deletes)
            self._txn_counter += 1
            txn_id = self._txn_counter
            raw_ops = {"inserts": raw_inserts, "deletes": raw_deletes}
            if not per_shard:
                # Every op was empty (or skippable): commit trivially at
                # the next global position so the ordered log still
                # records the transaction.
                self._cluster_seq += 1
                self._outcomes[txn_id] = {
                    "status": "committed",
                    "cluster_seq": self._cluster_seq,
                    "applied": {},
                }
                charge("cluster_txns_committed")
                self._complete[self._cluster_seq] = (txn_id, {})
                self._raw_by_seq[self._cluster_seq] = raw_ops
                self._emit_ready()
                return txn_id
            messages = {
                shard: {
                    "kind": "prepare",
                    "txn": txn_id,
                    "inserts": ops["inserts"],
                    "deletes": ops["deletes"],
                }
                for shard, ops in per_shard.items()
            }
            pending = PendingTxn(
                txn_id,
                frozenset(per_shard),
                messages,
                raw_ops,
                self._tick,
            )
            self._pending[txn_id] = pending
            for shard in sorted(per_shard):
                self._send(shard, pending)
            return txn_id

    def outcome(self, txn_id: int) -> dict[str, Any] | None:
        """The recorded outcome of ``txn_id`` (None while in flight)."""
        return self._outcomes.get(txn_id)

    def _split(
        self,
        inserts: Mapping[str, list[list[Any]]],
        deletes: Mapping[str, list[list[Any]]],
    ) -> dict[int, dict[str, dict[str, list[list[Any]]]]]:
        """Partition the client ops into per-shard sub-batches."""
        per_shard: dict[int, dict[str, dict[str, list[list[Any]]]]] = {}

        def bucket(shard: int) -> dict[str, dict[str, list[list[Any]]]]:
            return per_shard.setdefault(shard, {"inserts": {}, "deletes": {}})

        for kind, batches in (("inserts", inserts), ("deletes", deletes)):
            for name in sorted(batches):
                rows = batches[name]
                attrs = self.tables[name]
                if self.topology.is_partitioned(name):
                    groups: dict[int, list[list[Any]]] = {}
                    for row in rows:
                        owner = self.topology.shard_of_row(name, attrs, row)
                        groups.setdefault(owner, []).append(list(row))
                    for shard in sorted(groups):
                        bucket(shard)[kind][name] = groups[shard]
                        charge("cluster_deltas_sent")
                    continue
                for shard in range(self.topology.shards):
                    if (
                        shard != HOME_SHARD
                        and self.routed
                        and self.routing.should_skip(shard, name)
                    ):
                        charge("cluster_deltas_skipped")
                        continue
                    bucket(shard)[kind][name] = [list(row) for row in rows]
                    charge("cluster_deltas_sent")
        return per_shard

    # ------------------------------------------------------------------
    # Shard replies
    # ------------------------------------------------------------------
    def on_shard_message(self, reply: Mapping[str, Any]) -> None:
        """Handle one shard reply (installed as every link's deliver)."""
        kind = reply.get("kind")
        txn_id = int(reply["txn"])
        shard = int(reply["shard"]) if "shard" in reply else -1
        pending = self._pending.get(txn_id)
        if pending is None or shard not in pending.participants:
            return  # late duplicate of a finished transaction
        with recording(self.recorder):
            if kind == "prepared" and pending.state == "preparing":
                pending.prepared.add(shard)
                if pending.prepared == set(pending.participants):
                    self._decide_commit(pending)
            elif kind == "nack" and pending.state == "preparing":
                self._abort(
                    pending,
                    protocol.E_TXN_FAILED,
                    str(reply.get("error", "shard rejected the transaction")),
                )
            elif kind == "committed" and pending.state == "committing":
                pending.view_docs[shard] = dict(reply.get("views") or {})
                pending.applied_docs[shard] = dict(reply.get("applied") or {})
                pending.acked.add(shard)
                if pending.acked == set(pending.participants):
                    self._complete_commit(pending)
            elif kind == "abort_ack" and pending.state == "aborting":
                pending.acked.add(shard)
                if pending.acked == set(pending.participants):
                    del self._pending[pending.txn_id]
            # Anything else is a stale cross-phase duplicate; drop it.

    def _decide_commit(self, pending: PendingTxn) -> None:
        """The commit point: assign global order, log, and fan out."""
        self._cluster_seq += 1
        pending.cluster_seq = self._cluster_seq
        pending.state = "committing"
        charge("cluster_txns_committed")
        self._outcomes[pending.txn_id] = {
            "status": "committed",
            "cluster_seq": pending.cluster_seq,
        }
        self._raw_by_seq[pending.cluster_seq] = pending.raw_ops
        commit_messages: dict[int, dict[str, Any]] = {}
        for shard in sorted(pending.participants):
            self._shard_seqs[shard] += 1
            prepare = pending.messages[shard]
            commit_messages[shard] = {
                "kind": "commit",
                "txn": pending.txn_id,
                "shard_seq": self._shard_seqs[shard],
                "cluster_seq": pending.cluster_seq,
                "inserts": prepare["inserts"],
                "deletes": prepare["deletes"],
            }
            self.history[shard].append(commit_messages[shard])
        pending.messages = commit_messages
        pending.last_send = {}
        for shard in sorted(pending.participants):
            self._send(shard, pending)

    def _abort(self, pending: PendingTxn, code: str, error: str) -> None:
        pending.state = "aborting"
        pending.acked = set()
        charge("cluster_txns_aborted")
        self._outcomes[pending.txn_id] = {
            "status": "aborted",
            "code": code,
            "error": error,
        }
        pending.messages = {
            shard: {"kind": "abort", "txn": pending.txn_id}
            for shard in pending.participants
        }
        pending.last_send = {}
        for shard in sorted(pending.participants):
            self._send(shard, pending)

    def _complete_commit(self, pending: PendingTxn) -> None:
        merged = self._merge_view_docs(pending.view_docs)
        assert pending.cluster_seq is not None
        applied: dict[str, dict[str, int]] = {}
        for shard in sorted(pending.applied_docs):
            for name, counts in pending.applied_docs[shard].items():
                # Partitioned rows are disjoint across shards, so their
                # counts sum; a replicated relation is applied once per
                # shard, and counting every copy would report N times the
                # single-node figure — the home shard (which routing never
                # skips) speaks for the whole cluster.
                if not self.topology.is_partitioned(name) and shard != HOME_SHARD:
                    continue
                entry = applied.setdefault(name, {"inserted": 0, "deleted": 0})
                entry["inserted"] += int(counts.get("inserted", 0))
                entry["deleted"] += int(counts.get("deleted", 0))
        self._complete[pending.cluster_seq] = (pending.txn_id, merged)
        del self._pending[pending.txn_id]
        self._outcomes[pending.txn_id]["applied"] = applied
        self._emit_ready()

    def _merge_view_docs(
        self, per_shard: Mapping[int, Mapping[str, Mapping[str, Any]]]
    ) -> dict[str, dict[str, Any]]:
        """Net per-shard view deltas into one cluster-level document."""
        counts: dict[str, dict[tuple[Any, ...], int]] = {}
        for shard in sorted(per_shard):
            for view, doc in per_shard[shard].items():
                bag = counts.setdefault(view, {})
                for row in doc.get("inserted", ()):
                    key = tuple(row)
                    bag[key] = bag.get(key, 0) + 1
                for row in doc.get("deleted", ()):
                    key = tuple(row)
                    bag[key] = bag.get(key, 0) - 1
        merged: dict[str, dict[str, Any]] = {}
        for view in sorted(counts):
            inserted: list[list[Any]] = []
            deleted: list[list[Any]] = []
            for key in sorted(counts[view]):
                net = counts[view][key]
                if net > 0:
                    inserted.extend([list(key)] * net)
                elif net < 0:
                    deleted.extend([list(key)] * (-net))
            if inserted or deleted:
                merged[view] = {"inserted": inserted, "deleted": deleted}
        return merged

    def _emit_ready(self) -> None:
        """Emit completed events in strict ``cluster_seq`` order."""
        while self._emitted_seq + 1 in self._complete:
            self._emitted_seq += 1
            txn_id, merged = self._complete.pop(self._emitted_seq)
            raw_ops = self._raw_by_seq.pop(self._emitted_seq)
            self.committed_log.append(
                {
                    "seq": self._emitted_seq,
                    "txn": txn_id,
                    "inserts": raw_ops["inserts"],
                    "deletes": raw_ops["deletes"],
                }
            )
            for view in sorted(merged):
                self.feeds[view].append(self._emitted_seq, merged[view])
            for hook in list(self.emit_hooks):
                hook(self._emitted_seq, merged)

    # ------------------------------------------------------------------
    # Time and failure injection
    # ------------------------------------------------------------------
    def tick(self) -> None:
        """Advance logical time: enforce timeouts, retransmit."""
        self._tick += 1
        with recording(self.recorder):
            for txn_id in sorted(self._pending):
                pending = self._pending.get(txn_id)
                if pending is None:
                    continue
                if (
                    pending.state == "preparing"
                    and self._tick - pending.start_tick > TIMEOUT_TICKS
                ):
                    self._abort(
                        pending,
                        protocol.E_SHARD_UNAVAILABLE,
                        "a shard stayed unreachable past the two-phase-"
                        "commit timeout; nothing committed — retry is safe",
                    )
                    continue
                for shard in sorted(pending.outstanding()):
                    last = pending.last_send.get(shard)
                    if last is None or self._tick - last >= RETRY_TICKS:
                        if last is not None:
                            charge("cluster_retransmissions")
                        self._send(shard, pending)

    def _send(self, shard: int, pending: PendingTxn) -> None:
        # Stamp before sending: over a DirectLink the reply (and even
        # the whole completion, deleting ``pending``) happens inside
        # ``send``, so ``pending`` must not be touched afterwards.
        pending.last_send[shard] = self._tick
        self.links[shard].send(pending.messages[shard])

    def crash_shard(self, shard: int) -> ShardNode:
        """Lose a shard's memory and wire, rebuild it from the log.

        Requires a ``shard_factory``; the rebuilt node replays its
        commit history slice (deterministically re-deriving relation
        state, view contents, *and* the ack cache with its view delta
        documents), then the link is rebound and flushed.  Outstanding
        messages retransmit on the next tick.
        """
        if self._shard_factory is None:
            raise ClusterError(
                "this cluster was built without a shard_factory; "
                "crash injection is unavailable"
            )
        with recording(self.recorder):
            charge("cluster_shard_rebuilds")
        node = self._shard_factory(shard)
        for message in self.history[shard]:
            node.handle(message)
        link = self.links[shard]
        link.rebind(node)
        if isinstance(link, SimShardLink):
            link.reset()
        for pending in self._pending.values():
            if shard in pending.participants:
                pending.last_send.pop(shard, None)
        return node

    # ------------------------------------------------------------------
    # Reads (scatter-gather over local shard handles)
    # ------------------------------------------------------------------
    def nodes(self) -> list[ShardNode]:
        """The live shard handles behind the links."""
        return [link.shard for link in self.links]

    def merged_counts(
        self, target: str
    ) -> tuple[dict[tuple[int, ...], int], RelationSchema, str]:
        """Cluster-wide contents of a view or base relation.

        Views and partitioned relations merge (disjoint bag-union)
        across every shard; replicated relations are answered by the
        home shard alone, whose copy is delta-complete by construction.
        Returns ``(encoded counts, schema, kind)``.
        """
        nodes = self.nodes()
        if target in self.views:
            sources = [
                (node.maintainer.view(target).contents, "view")
                for node in nodes
            ]
        elif target not in self.tables:
            raise UnknownRelationError(f"unknown relation {target!r}")
        elif self.topology.is_partitioned(target):
            sources = [(node.database.relation(target), "relation") for node in nodes]
        else:
            sources = [
                (nodes[HOME_SHARD].database.relation(target), "relation")
            ]
        counts: dict[tuple[int, ...], int] = {}
        for relation, _ in sources:
            for values, count in relation.items():
                counts[values] = counts.get(values, 0) + count
        schema = sources[0][0].schema
        return counts, schema, sources[0][1]

    def merged_relation(self, target: str) -> Relation:
        """:meth:`merged_counts` materialized as a relation."""
        counts, schema, _ = self.merged_counts(target)
        relation = Relation(schema)
        for values, count in sorted(counts.items()):
            relation.add(schema.decode_values(values), count)
        return relation

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def last_sequence(self) -> int:
        """The highest emitted ``cluster_seq``."""
        return self._emitted_seq

    def pending_count(self) -> int:
        """In-flight transactions (0 means the 2PC layer is quiet)."""
        return len(self._pending)

    def stats(self) -> dict[str, Any]:
        """Counters plus protocol state, for ``stats`` ops and tests."""
        return {
            "shards": self.topology.shards,
            "routed": self.routed,
            "cluster_seq": self._emitted_seq,
            "pending_txns": len(self._pending),
            "routing": self.routing.describe(),
            "counters": dict(sorted(self.recorder.counters.items())),
        }


def build_cluster(
    topology: ClusterTopology,
    tables: Mapping[str, Sequence[str]],
    rows: Mapping[str, Sequence[Sequence[Any]]],
    constraints: Mapping[str, Condition | str],
    views: Sequence[tuple[str, Expression]],
    *,
    routed: bool = True,
    link_factory: Callable[[ShardNode, int], Link] | None = None,
    changefeed_history: int = 256,
    base_free_shards: Sequence[int] = (),
    keys: Mapping[str, Sequence[Sequence[str]]] | None = None,
    foreign_keys: Sequence[ForeignKey] = (),
) -> ClusterCoordinator:
    """Stand up a full cluster: shards, links, coordinator.

    ``rows`` holds each relation's *complete* initial contents; every
    shard filters its own slice.  Without a ``link_factory`` the shards
    hang off synchronous :class:`~repro.cluster.links.DirectLink`\\ s
    (the front-end / CLI / example deployment shape); the simulation
    passes a factory producing lossy :class:`~repro.cluster.links.
    SimShardLink`\\ s.  The returned coordinator carries a
    ``shard_factory`` closing over the initial rows, so
    :meth:`ClusterCoordinator.crash_shard` can rebuild any shard from
    genesis plus its commit history.

    ``base_free_shards`` lists shard ids built with ``base_free=True``
    (see :class:`ShardNode`): those nodes shed their base rows after
    registration and require every hosted view to be self-maintainable;
    crash rebuilds preserve the flag.  Delete-existence validation
    weakens to the remaining full hosts — keep at least the owning
    shard of every partitioned range full unless the workload's
    deletes are validated upstream, or declare keys that restore
    presence tracking (below).

    ``keys`` maps relation names to their declared candidate keys and
    ``foreign_keys`` lists :class:`~repro.engine.keys.ForeignKey`
    declarations; every shard declares them on its local database
    before registering views, so compiled plans prove the same chase
    facts cluster-wide.  A key on a *partitioned* relation must
    contain the partition attribute — rows agreeing on the key would
    otherwise route to different shards and shard-local enforcement
    could miss a cluster-wide collision.  On base-free shards a
    partition-aligned, row-determining key unlocks key-occupancy
    presence tracking (see :class:`ShardNode`), lifting the exact-ops
    workload restriction for that relation.
    """
    frozen_tables = {name: tuple(attrs) for name, attrs in tables.items()}
    frozen_rows = {
        name: [tuple(row) for row in batch] for name, batch in rows.items()
    }
    coerced = {
        name: Condition.coerce(cond) for name, cond in constraints.items()
    }
    view_list = [(name, expression) for name, expression in views]
    frozen_keys = {
        name: tuple(tuple(key) for key in declared)
        for name, declared in (keys or {}).items()
    }
    for name, declared in sorted(frozen_keys.items()):
        spec = topology.spec(name)
        if spec is None:
            continue
        for key in declared:
            if spec.key not in key:
                raise ClusterError(
                    f"key ({', '.join(key)}) on partitioned relation "
                    f"{name!r} omits the partition attribute "
                    f"{spec.key!r}: shard-local enforcement cannot see "
                    f"a collision between rows routed to different shards"
                )
    fk_list = tuple(foreign_keys)

    base_free = frozenset(base_free_shards)

    def make_shard(shard_id: int) -> ShardNode:
        return ShardNode(
            shard_id,
            topology,
            frozen_tables,
            frozen_rows,
            coerced,
            view_list,
            base_free=shard_id in base_free,
            keys=frozen_keys,
            foreign_keys=fk_list,
        )

    links: list[Link] = []
    for shard_id in range(topology.shards):
        node = make_shard(shard_id)
        links.append(
            link_factory(node, shard_id)
            if link_factory is not None
            else DirectLink(node)
        )
    return ClusterCoordinator(
        topology,
        frozen_tables,
        coerced,
        view_list,
        links,
        shard_factory=make_shard,
        routed=routed,
        changefeed_history=changefeed_history,
    )
