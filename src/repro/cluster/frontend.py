"""The cluster's wire-protocol front door.

:class:`ClusterServer` speaks the exact protocol of
:class:`~repro.server.server.ViewServer` — same frames, same ops, same
error codes — so every existing client, including
:class:`~repro.server.client.ViewClient` and the recorded-transport
test harness, works against a cluster unmodified.  It subclasses the
single-node server and swaps the data plane:

* ``query`` resolves targets through the coordinator's scatter-gather
  merge (views and partitioned relations union across shards;
  replicated relations are answered by the home shard's delta-complete
  copy) and stamps results with the cluster sequence;
* ``txn`` submits through the coordinator's two-phase commit.  Over
  the synchronous :class:`~repro.cluster.links.DirectLink` transport
  the outcome is known before the response frame is written; an abort
  surfaces as ``txn_failed`` (a shard vetoed prepare — same meaning as
  single-node) or ``shard_unavailable`` (2PC timeout; nothing
  committed, retry is safe);
* ``subscribe`` replays and follows the *merged* cluster changefeed,
  ordered by ``cluster_seq`` — one subscription observes the whole
  cluster's view history, never a single shard's.

Lifecycle, admission control, session plumbing and dispatch are
inherited unchanged.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.algebra.relation import Relation
from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.links import DirectLink
from repro.cluster.topology import HOME_SHARD
from repro.errors import ClusterError, UnknownRelationError
from repro.server import protocol
from repro.server.protocol import ProtocolError
from repro.server.server import Changefeed, ServerConfig, ViewServer
from repro.server.session import LocalSession, Session

__all__ = ["ClusterServer"]


class ClusterServer(ViewServer):
    """A :class:`ViewServer` whose data plane is a sharded cluster."""

    def __init__(
        self,
        coordinator: ClusterCoordinator,
        config: ServerConfig | None = None,
    ) -> None:
        for link in coordinator.links:
            if not isinstance(link, DirectLink):
                raise ClusterError(
                    "ClusterServer needs synchronous DirectLink transports "
                    "(client transactions must resolve within one request)"
                )
        self.coordinator = coordinator
        home = coordinator.nodes()[HOME_SHARD]
        super().__init__(home.database, home.maintainer, config)
        coordinator.emit_hooks.append(self._on_cluster_event)

    # ------------------------------------------------------------------
    # Changefeed plumbing: the coordinator owns the merged feeds
    # ------------------------------------------------------------------
    def _attach_feed(self, view_name: str) -> Changefeed:
        # Override: never subscribe to the home maintainer — per-shard
        # deltas are partial.  The coordinator appends merged events.
        feed = self.coordinator.feeds[view_name]
        self._feeds[view_name] = feed
        return feed

    def _on_cluster_event(
        self, sequence: int, merged: Mapping[str, Mapping[str, Any]]
    ) -> None:
        for name in sorted(merged):
            targets = self._subscribers.get(name)
            if not targets:
                continue
            for session, subscription_id in list(targets):
                sent = session.send_frame(
                    protocol.delta_event(
                        subscription_id, name, sequence, dict(merged[name])
                    )
                )
                if sent:
                    self.recorder.incr("server_events_sent")

    # ------------------------------------------------------------------
    # Data-plane overrides
    # ------------------------------------------------------------------
    def _resolve_target(self, name: str) -> tuple[str, Relation, int]:
        try:
            counts, schema, kind = self.coordinator.merged_counts(name)
        except UnknownRelationError:
            raise ProtocolError(
                protocol.E_UNKNOWN_TARGET,
                f"{name!r} names neither a view nor a base relation",
            ) from None
        contents = Relation(schema)
        for values, count in sorted(counts.items()):
            contents.add(schema.decode_values(values), count)
        return kind, contents, self.coordinator.last_sequence

    def _op_txn(
        self, session: Session | LocalSession, doc: Mapping[str, Any]
    ) -> dict[str, Any]:
        inserts = protocol.request_field(doc, "insert", dict, required=False) or {}
        deletes = protocol.request_field(doc, "delete", dict, required=False) or {}
        if not inserts and not deletes:
            raise ProtocolError(
                protocol.E_BAD_REQUEST,
                "'txn' needs 'insert' and/or 'delete' batches",
            )
        for label, batch in (("insert", inserts), ("delete", deletes)):
            for name, batch_rows in batch.items():
                if not isinstance(batch_rows, list) or not all(
                    isinstance(row, list) for row in batch_rows
                ):
                    raise ProtocolError(
                        protocol.E_BAD_REQUEST,
                        f"'{label}' batch for {name!r} must be a list of rows",
                    )
        try:
            txn_id = self.coordinator.submit(inserts=inserts, deletes=deletes)
        except (ClusterError, UnknownRelationError) as exc:
            self.recorder.incr("server_txns_failed")
            raise ProtocolError(protocol.E_TXN_FAILED, str(exc)) from exc
        outcome = self.coordinator.outcome(txn_id)
        if outcome is None or (
            outcome["status"] == "committed" and "applied" not in outcome
        ):
            # Unreachable over DirectLink; defensive for exotic wiring.
            self.recorder.incr("server_txns_failed")
            raise ProtocolError(
                protocol.E_SHARD_UNAVAILABLE,
                f"transaction {txn_id} did not resolve synchronously",
            )
        if outcome["status"] == "aborted":
            self.recorder.incr("server_txns_failed")
            raise ProtocolError(outcome["code"], outcome["error"])
        self.recorder.incr("server_txns_committed")
        return {
            "txn": txn_id,
            "seq": outcome["cluster_seq"],
            "applied": outcome["applied"],
        }

    def _op_subscribe(
        self, session: Session | LocalSession, doc: Mapping[str, Any]
    ) -> dict[str, Any]:
        view_name = protocol.request_field(doc, "view", str)
        after = protocol.request_field(doc, "from", int, required=False)
        feed = self.coordinator.feeds.get(view_name)
        if feed is None:
            raise ProtocolError(
                protocol.E_UNKNOWN_TARGET,
                f"{view_name!r} names no view (subscriptions are per-view)",
            )
        current = self.coordinator.last_sequence
        replay: list[tuple[int, dict[str, Any]]] = []
        if after is not None and after < current:
            replay = feed.since(after)
        subscription_id = session.new_subscription(view_name)
        self._subscribers.setdefault(view_name, []).append(
            (session, subscription_id)
        )
        self.recorder.incr("server_subscriptions_opened")
        for sequence, delta_doc in replay:
            session.pending_events.append(
                protocol.delta_event(
                    subscription_id, view_name, sequence, delta_doc
                )
            )
        self.recorder.incr("server_events_sent", len(replay))
        return {
            "subscription": subscription_id,
            "view": view_name,
            "seq": current,
            "replayed": len(replay),
        }

    def _op_stats(
        self, session: Session | LocalSession, doc: Mapping[str, Any]
    ) -> dict[str, Any]:
        shards = []
        for node in self.coordinator.nodes():
            shards.append(
                {
                    "shard": node.shard_id,
                    "applied_seq": node.applied_seq,
                    "views": {
                        name: len(node.maintainer.view(name).contents)
                        for name in node.maintainer.view_names()
                    },
                }
            )
        return {
            "counters": self.recorder.snapshot(),
            "cluster": self.coordinator.stats(),
            "shards": shards,
            "sessions": {
                "open": len(self._sessions),
                "max": self.config.max_sessions,
            },
            "subscriptions": sum(len(t) for t in self._subscribers.values()),
            "seq": self.coordinator.last_sequence,
        }

    def __repr__(self) -> str:
        return (
            f"<ClusterServer port={self.port} "
            f"{self.coordinator.topology.shards} shards, "
            f"{len(self._sessions)} sessions"
            f"{' draining' if self._draining else ''}>"
        )
