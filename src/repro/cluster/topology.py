"""Cluster topology: key-range partitions as declarable constraints.

The paper's condition class (Section 4, after Rosenkrantz and Hunt)
has no modulo operator, so "hash partitioning" in this subsystem is
realized as deterministic *key-range* partitioning: each partitioned
relation names one integer key attribute and ``shards - 1`` strictly
increasing boundaries, and shard ``i`` owns the rows whose key falls in
its range.  The payoff of staying inside the paper's class is the whole
point of the design: a shard's ownership range **is** a condition, so
it can be declared on the shard's local database (misrouted rows are
rejected by the ordinary constraint pipeline) and fed to the
Theorem 4.1 routing oracle as a premise
(:mod:`repro.analysis.routing`), turning partition metadata into
machine-checked irrelevance proofs.

Relations without a :class:`PartitionSpec` are *replicated*: every
shard holds a full copy (modulo deltas the routing oracle proves it
never needs), and shard ``HOME_SHARD`` keeps the authoritative,
delta-complete copy that answers base-relation queries.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Mapping, Sequence

from repro.algebra.conditions import Atom, Condition, Const, Var
from repro.errors import ClusterError

__all__ = ["HOME_SHARD", "ClusterTopology", "PartitionSpec", "even_boundaries"]

#: The shard holding the authoritative copy of every replicated
#: relation.  It is never skipped by the routing oracle, so replicated
#: base-relation queries are answered here, delta-complete.
HOME_SHARD = 0


def even_boundaries(shards: int, lo: int, hi: int) -> tuple[int, ...]:
    """Evenly spaced boundaries splitting ``[lo, hi]`` into ``shards``
    non-empty ranges (a convenience for tests and examples)."""
    if shards < 1:
        raise ClusterError(f"a cluster needs at least one shard, got {shards}")
    width = hi - lo + 1
    if shards > width:
        raise ClusterError(
            f"cannot split the {width}-value range [{lo}, {hi}] "
            f"into {shards} non-empty shard ranges"
        )
    return tuple(lo + ((i + 1) * width) // shards - 1 for i in range(shards - 1))


class PartitionSpec:
    """How one relation is split across shards: a key and boundaries.

    Shard 0 owns ``key <= boundaries[0]``; shard ``i`` (middle) owns
    ``boundaries[i-1] + 1 <= key <= boundaries[i]``; the last shard
    owns ``key >= boundaries[-1] + 1``.  With no boundaries (a
    single-shard cluster) shard 0 owns everything.
    """

    __slots__ = ("relation", "key", "boundaries")

    def __init__(
        self, relation: str, key: str, boundaries: Sequence[int]
    ) -> None:
        self.relation = relation
        self.key = key
        self.boundaries = tuple(int(b) for b in boundaries)
        for earlier, later in zip(self.boundaries, self.boundaries[1:]):
            if later <= earlier:
                raise ClusterError(
                    f"partition boundaries for {relation!r} must be "
                    f"strictly increasing, got {list(self.boundaries)}"
                )

    @property
    def shards(self) -> int:
        """How many shards this spec splits the relation across."""
        return len(self.boundaries) + 1

    def shard_of(self, key_value: int) -> int:
        """The shard owning rows whose key equals ``key_value``."""
        return bisect_left(self.boundaries, key_value)

    def range_condition(self, shard: int) -> Condition:
        """Shard ``shard``'s ownership range as a paper-class condition
        over this relation's own attribute names."""
        if not 0 <= shard < self.shards:
            raise ClusterError(
                f"shard {shard} out of range for the {self.shards}-shard "
                f"partition of {self.relation!r}"
            )
        if not self.boundaries:
            return Condition.true()
        key = Var(self.key)
        atoms = []
        if shard > 0:
            atoms.append(Atom(key, ">=", Const(self.boundaries[shard - 1] + 1)))
        if shard < len(self.boundaries):
            atoms.append(Atom(key, "<=", Const(self.boundaries[shard])))
        return Condition.of_atoms(atoms)

    def __repr__(self) -> str:
        return (
            f"<PartitionSpec {self.relation}.{self.key} "
            f"boundaries={list(self.boundaries)}>"
        )


class ClusterTopology:
    """The cluster's static shape: shard count plus partition specs.

    Everything downstream — delta splitting, range-constraint
    declaration, the routing table — derives from this object, so two
    nodes constructed from equal topologies agree on where every row
    lives without any runtime coordination.
    """

    __slots__ = ("shards", "partitions")

    def __init__(
        self, shards: int, partitions: Iterable[PartitionSpec] = ()
    ) -> None:
        if shards < 1:
            raise ClusterError(f"a cluster needs at least one shard, got {shards}")
        self.shards = shards
        self.partitions: dict[str, PartitionSpec] = {}
        for spec in partitions:
            if spec.relation in self.partitions:
                raise ClusterError(
                    f"relation {spec.relation!r} has two partition specs"
                )
            if spec.shards != shards:
                raise ClusterError(
                    f"partition of {spec.relation!r} spans {spec.shards} "
                    f"shards but the cluster has {shards}"
                )
            self.partitions[spec.relation] = spec

    def is_partitioned(self, relation: str) -> bool:
        """True when ``relation`` is split (not replicated)."""
        return relation in self.partitions

    def spec(self, relation: str) -> PartitionSpec | None:
        """The partition spec for ``relation`` (None when replicated)."""
        return self.partitions.get(relation)

    def shard_of_row(
        self, relation: str, attribute_names: Sequence[str], row: Sequence[object]
    ) -> int:
        """The owner shard for one row of a partitioned relation."""
        spec = self.partitions[relation]
        try:
            position = list(attribute_names).index(spec.key)
        except ValueError:
            raise ClusterError(
                f"partition key {spec.key!r} is not an attribute of "
                f"{relation!r} {list(attribute_names)}"
            ) from None
        value = row[position]
        if not isinstance(value, int) or isinstance(value, bool):
            raise ClusterError(
                f"partition key {relation}.{spec.key} must be an integer, "
                f"got {value!r}"
            )
        return spec.shard_of(value)

    def shard_premises(
        self, shard: int, constraints: Mapping[str, "Condition | str"]
    ) -> dict[str, Condition]:
        """Per-relation premises holding on shard ``shard``'s instance.

        For every relation: the declared global constraint (if any),
        conjoined for partitioned relations with the shard's ownership
        range — exactly the premise set
        :func:`repro.analysis.routing.is_shard_irrelevant` expects.
        """
        premises: dict[str, Condition] = {
            name: Condition.coerce(cond) for name, cond in constraints.items()
        }
        for name, spec in self.partitions.items():
            window = spec.range_condition(shard)
            declared = premises.get(name)
            premises[name] = (
                window if declared is None else declared.conjoin(window)
            )
        return premises

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}.{spec.key}" for name, spec in sorted(self.partitions.items())
        )
        return f"<ClusterTopology shards={self.shards} partitioned=[{parts}]>"
