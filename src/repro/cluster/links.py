"""Coordinator-to-shard transports.

The coordinator and :class:`~repro.cluster.shard.ShardNode` speak
JSON-able dict messages; a *link* is the duplex pipe carrying them.
Two implementations share one tiny interface (``send`` / ``pump`` /
``rebind``, plus a ``deliver`` callback the coordinator installs for
shard replies):

* :class:`DirectLink` — synchronous in-process delivery.  ``send``
  invokes the shard handler inline and feeds replies straight back, so
  a whole two-phase commit completes within one coordinator call.  This
  is the transport behind the cluster front-end, the CLI, examples and
  benchmarks, where a client expects its transaction resolved before
  the response frame is written.
* :class:`SimShardLink` — a pair of :class:`~repro.simulation.network.
  SimChannel` queues (one per direction) under the deterministic
  simulation clock, inheriting drops, duplication, reordering, delay
  and partitions.  Nothing moves until :meth:`SimShardLink.pump` runs,
  so the simulation schedule fully controls interleaving.

``rebind`` swaps in a freshly rebuilt :class:`ShardNode` after a
simulated crash; :meth:`SimShardLink.reset` models the crash also
losing every in-flight message.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Mapping

from repro.cluster.shard import ShardNode
from repro.simulation.clock import SimClock
from repro.simulation.network import SimChannel

__all__ = ["DirectLink", "SimShardLink"]

#: Replies travel coordinator-ward through this callback.
DeliverFn = Callable[[Mapping[str, Any]], None]


def _drop(message: Mapping[str, Any]) -> None:
    """Default deliver target before a coordinator attaches."""


class DirectLink:
    """Synchronous, lossless, in-process link: send → handle → deliver."""

    __slots__ = ("shard", "deliver")

    def __init__(self, shard: ShardNode) -> None:
        self.shard = shard
        self.deliver: DeliverFn = _drop

    def send(self, message: Mapping[str, Any]) -> bool:
        for reply in self.shard.handle(message):
            self.deliver(reply)
        return True

    def pump(self) -> int:
        """Nothing is ever queued; present for interface symmetry."""
        return 0

    def rebind(self, shard: ShardNode) -> None:
        self.shard = shard

    def __repr__(self) -> str:
        return f"<DirectLink shard={self.shard.shard_id}>"


class SimShardLink:
    """A lossy, delayed, partitionable link under simulated time.

    Each direction is an independent :class:`SimChannel`, so a message
    and its reply each face their own drop/duplicate/reorder/delay
    draw — retransmission and ack-caching on both ends are what make
    the protocol converge, and this link is what exercises them.
    """

    __slots__ = ("shard", "deliver", "to_shard", "to_coord")

    def __init__(
        self,
        shard: ShardNode,
        clock: SimClock,
        rng: random.Random,
        *,
        delay_max: int = 2,
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        reorder_rate: float = 0.0,
    ) -> None:
        self.shard = shard
        self.deliver: DeliverFn = _drop
        self.to_shard = SimChannel(
            clock,
            rng,
            delay_max=delay_max,
            drop_rate=drop_rate,
            duplicate_rate=duplicate_rate,
            reorder_rate=reorder_rate,
        )
        self.to_coord = SimChannel(
            clock,
            rng,
            delay_max=delay_max,
            drop_rate=drop_rate,
            duplicate_rate=duplicate_rate,
            reorder_rate=reorder_rate,
        )

    def send(self, message: Mapping[str, Any]) -> bool:
        return self.to_shard.send(dict(message))

    def pump(self) -> int:
        """Deliver everything due in both directions; returns how many
        messages moved (0 means the link is momentarily idle)."""
        moved = 0
        for message in self.to_shard.deliver_due():
            moved += 1
            for reply in self.shard.handle(message):
                self.to_coord.send(reply)
        for reply in self.to_coord.deliver_due():
            moved += 1
            self.deliver(reply)
        return moved

    @property
    def partitioned(self) -> bool:
        return self.to_shard.partitioned

    def partition(self, flag: bool) -> None:
        """(Un)partition both directions at once."""
        self.to_shard.partitioned = flag
        self.to_coord.partitioned = flag

    def reset(self) -> None:
        """Drop every in-flight message (a crash wipes the wire too)."""
        self.to_shard.clear()
        self.to_coord.clear()

    def rebind(self, shard: ShardNode) -> None:
        self.shard = shard

    def idle(self) -> bool:
        """True when nothing is queued in either direction."""
        return len(self.to_shard) == 0 and len(self.to_coord) == 0

    def __repr__(self) -> str:
        state = "partitioned" if self.partitioned else "connected"
        return (
            f"<SimShardLink shard={self.shard.shard_id} {state} "
            f"{len(self.to_shard)}+{len(self.to_coord)} queued>"
        )
