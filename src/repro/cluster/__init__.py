"""Sharded cluster: partitioned shards, 2PC, analyzer-driven routing.

The cluster subsystem scales the single-node maintenance stack out
horizontally without changing it: every shard runs an ordinary
:class:`~repro.engine.database.Database` +
:class:`~repro.core.maintainer.ViewMaintainer` pair over its key-range
slice of the partitioned relations (plus replica copies of the rest),
and a coordinator splits each client transaction, two-phase-commits the
per-shard pieces, and merges the resulting view deltas into one ordered
cluster changefeed.  What a delta *never needs to reach a shard at all*
is decided statically, by quantifying the paper's Theorem 4.1 over each
shard's declared key-range constraints
(:mod:`repro.analysis.routing`) — partition metadata becomes
machine-checked irrelevance proofs, and the proofs become skipped
network sends.

Modules
-------
* :mod:`~repro.cluster.topology` — key-range partitions as conditions.
* :mod:`~repro.cluster.routing` — the static skip table.
* :mod:`~repro.cluster.shard` — one shard's 2PC state machine.
* :mod:`~repro.cluster.links` — synchronous and simulated transports.
* :mod:`~repro.cluster.coordinator` — routing, 2PC, changefeed merge.
* :mod:`~repro.cluster.frontend` — the wire-protocol cluster server.
* :mod:`~repro.cluster.sim` — deterministic sharded fault simulation.
"""

from repro.cluster.coordinator import ClusterCoordinator, build_cluster
from repro.cluster.frontend import ClusterServer
from repro.cluster.links import DirectLink, SimShardLink
from repro.cluster.routing import (
    RoutingTable,
    build_routing_table,
    validate_shardable,
)
from repro.cluster.shard import ShardNode
from repro.cluster.topology import (
    HOME_SHARD,
    ClusterTopology,
    PartitionSpec,
    even_boundaries,
)

__all__ = [
    "HOME_SHARD",
    "ClusterCoordinator",
    "ClusterServer",
    "ClusterTopology",
    "DirectLink",
    "PartitionSpec",
    "RoutingTable",
    "ShardNode",
    "SimShardLink",
    "build_cluster",
    "build_routing_table",
    "even_boundaries",
    "validate_shardable",
]
