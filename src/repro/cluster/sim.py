"""Deterministic sharded-cluster simulation with a recompute oracle.

The single-node simulation harness (:mod:`repro.simulation`) answers
"does the engine survive hostile scheduling?"; this module asks the
same question of the *cluster*: shards behind lossy, reordering,
partitionable links, crash-rebuilt mid-protocol, driven by a seeded
workload — and at quiescence the merged cluster state must agree
**byte for byte** with a single-node ground truth that applied the
coordinator's committed log to one ordinary Database + ViewMaintainer
pair.  Every divergence is a seed, and the same seed replays the
identical episode.

The checked invariants:

1. every registered view, bag-unioned across shards, equals the
   single-node view;
2. the merged changefeed, folded over the initial view contents,
   *also* equals the single-node view (the feed is a faithful,
   gap-free, ordered delta stream — this is what catches
   reordered-ack bugs);
3. the partitioned relation, unioned across shards, equals the
   single-node relation, and every shard's slice respects its declared
   key-range;
4. the home shard's replicated copies equal the single-node relations
   (non-home copies are *legitimately* stale exactly where the routing
   oracle proved staleness invisible, so they are not compared);
5. every submitted transaction resolves — committed or aborted with a
   typed error — and the 2PC layer drains to zero pending.

Episodes are pure functions of ``(seed, config)``: all randomness
flows from string-seeded :class:`random.Random` instances and all time
from :class:`~repro.simulation.clock.SimClock`.  Failing schedules are
not minimized (unlike the single-node harness): a cluster episode's
fault timing is tick-coupled, so event deletion mostly produces
different executions rather than smaller reproductions — the seed is
the reproduction.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Any

from repro.algebra.conditions import Condition
from repro.algebra.expressions import BaseRef, Expression
from repro.cluster.coordinator import ClusterCoordinator, build_cluster
from repro.cluster.links import SimShardLink
from repro.cluster.shard import ShardNode
from repro.cluster.topology import (
    HOME_SHARD,
    ClusterTopology,
    PartitionSpec,
    even_boundaries,
)
from repro.core.maintainer import ViewMaintainer
from repro.engine.database import Database
from repro.server import protocol
from repro.simulation.clock import SimClock

__all__ = [
    "ClusterEpisodeResult",
    "ClusterSimConfig",
    "ClusterSimReport",
    "cluster_workload",
    "generate_cluster_schedule",
    "run_cluster_episode",
    "run_cluster_simulation",
]

Schedule = list[tuple[str, dict[str, Any]]]

#: Ticks the final quiesce may spend draining before it is a failure.
MAX_DRAIN_TICKS = 600
#: Value universe for workload rows (kept small so collisions — double
#: inserts, deletes of present rows, cross-shard row equality — happen).
VALUE_RANGE = 7


class ClusterSimConfig:
    """Knobs for a sharded simulation batch (all deterministic)."""

    __slots__ = (
        "seed",
        "episodes",
        "events",
        "shards",
        "crashes",
        "partitions",
        "routed",
        "base_free",
        "keyed",
        "drop_rate",
        "duplicate_rate",
        "reorder_rate",
        "delay_max",
    )

    def __init__(
        self,
        seed: int = 0,
        episodes: int = 3,
        events: int = 60,
        shards: int = 3,
        crashes: bool = True,
        partitions: bool = True,
        routed: bool = True,
        base_free: bool = False,
        keyed: bool = False,
        drop_rate: float = 0.05,
        duplicate_rate: float = 0.05,
        reorder_rate: float = 0.2,
        delay_max: int = 2,
    ) -> None:
        self.seed = seed
        self.episodes = episodes
        self.events = events
        self.shards = shards
        self.crashes = crashes
        self.partitions = partitions
        self.routed = routed
        #: Every non-home shard hosts base-free (no base-relation
        #: copies).  Implies the self-maintainable view subset (``v_rt``
        #: is dropped) and — without ``keyed`` — a workload whose
        #: partitioned-relation ops stay in the home shard's range: a
        #: base-free owner cannot existence-check a delete *or* detect
        #: a set-semantics duplicate insert, so only rows a full
        #: replica validates may be touched (the documented trust
        #: boundary).
        self.base_free = base_free
        #: Declare a key on the partitioned relation (plus the
        #: row-determining constraint backing it).  Base-free owners
        #: then track key occupancy, so the partitioned workload is
        #: generated *unrestricted* again — duplicate inserts and
        #: absent deletes included — and the oracle must still match
        #: byte for byte.
        self.keyed = keyed
        self.drop_rate = drop_rate
        self.duplicate_rate = duplicate_rate
        self.reorder_rate = reorder_rate
        self.delay_max = delay_max


def cluster_workload(
    shards: int,
    keyed: bool = False,
) -> tuple[
    ClusterTopology,
    dict[str, list[str]],
    dict[str, list[tuple[int, int]]],
    dict[str, str],
    dict[str, list[tuple[str, ...]]],
    list[tuple[str, Expression]],
]:
    """The fixed episode schema: one partitioned and two replicated
    relations, plus three views spanning the routing spectrum.

    ``v_low`` touches only the partitioned relation; ``v_rs`` restricts
    the join key to the home shard's range, making ``s`` provably
    skippable everywhere else; ``v_rt`` joins ``t`` without any range
    restriction, so ``t`` must broadcast — together they exercise
    routed, skipped, and mixed delta paths in one workload.  ``v_agg``
    groups the partitioned relation on its partition key, so per-shard
    group rows are shard-local and the bag-union merge is exact — the
    sharded oracle then pins aggregate state and its changefeed mirror
    to the single-node ground truth.

    With ``keyed`` the partitioned relation declares its partition
    attribute as a key and the constraint ``B = A + 1``, which
    *determines the row from the key* — exactly the premises a
    base-free owner needs to track key occupancy, so the schedule
    generator may hit it with unrestricted inserts and deletes.  The
    bootstrap rows change to satisfy the constraint.
    """
    boundaries = even_boundaries(shards, 0, VALUE_RANGE - 1)
    low_cut = boundaries[0] if boundaries else VALUE_RANGE // 2
    topology = ClusterTopology(shards, [PartitionSpec("r", "A", boundaries)])
    tables = {"r": ["A", "B"], "s": ["C", "D"], "t": ["E", "F"]}
    rows = {
        "r": [(a, (a * 2) % VALUE_RANGE) for a in range(VALUE_RANGE)],
        "s": [(c, (c + 1) % VALUE_RANGE) for c in range(VALUE_RANGE)],
        "t": [(e, (e * 3) % VALUE_RANGE) for e in range(VALUE_RANGE)],
    }
    constraints = {"s": "C >= 0"}
    keys: dict[str, list[tuple[str, ...]]] = {}
    if keyed:
        rows["r"] = [(a, a + 1) for a in range(VALUE_RANGE)]
        constraints["r"] = "B = A + 1"
        keys["r"] = [("A",)]
    views: list[tuple[str, Expression]] = [
        ("v_low", BaseRef("r").select(f"A <= {low_cut}")),
        (
            "v_rs",
            BaseRef("r")
            .join(BaseRef("s"))
            .select(f"A = C and A <= {low_cut}"),
        ),
        ("v_rt", BaseRef("r").join(BaseRef("t")).select("B = E")),
        (
            "v_agg",
            BaseRef("r").aggregate(
                ["A"], [("count", None, "n"), ("sum", "B", "total")]
            ),
        ),
    ]
    return topology, tables, rows, constraints, keys, views


def generate_cluster_schedule(
    rng: random.Random, config: ClusterSimConfig
) -> Schedule:
    """A seeded event list; always ends on a quiesce barrier."""
    kinds = ["txn"] * 55 + ["net"] * 25 + ["quiesce"] * 5
    if config.crashes:
        kinds += ["crash"] * 7
    if config.partitions:
        kinds += ["partition"] * 8
    boundaries = even_boundaries(config.shards, 0, VALUE_RANGE - 1)
    home_max = boundaries[0] if boundaries else VALUE_RANGE - 1
    schedule: Schedule = []
    for _ in range(config.events):
        kind = rng.choice(kinds)
        if kind == "txn":
            inserts: dict[str, list[list[int]]] = {}
            deletes: dict[str, list[list[int]]] = {}
            for _ in range(rng.randint(1, 3)):
                relation = rng.choice(["r", "r", "s", "t"])
                row = [
                    rng.randrange(VALUE_RANGE),
                    rng.randrange(VALUE_RANGE),
                ]
                if relation == "s" and rng.random() < 0.08:
                    row[0] = -1  # violates the declared constraint
                if config.keyed and relation == "r" and rng.random() >= 0.08:
                    # Keep most keyed-relation rows on the declared
                    # row-determining constraint B = A + 1; the rest
                    # stay random, exercising constraint rejection
                    # (inserts) and absent-row no-op deletes.
                    row[1] = row[0] + 1
                target = deletes if rng.random() < 0.4 else inserts
                if config.base_free and relation == "r" and not config.keyed:
                    # Base-free owners cannot existence-check: a delete
                    # of an absent row and an insert of a present one
                    # (a set-semantics no-op their raw netting would
                    # count) both need a full replica to validate, so
                    # partitioned ops stay on the full home shard.
                    # Declared keys (``keyed``) lift the restriction:
                    # key occupancy restores presence semantics.
                    row[0] = rng.randrange(home_max + 1)
                target.setdefault(relation, []).append(row)
            schedule.append(
                ("txn", {"inserts": inserts, "deletes": deletes})
            )
        elif kind == "net":
            schedule.append(("net", {"ticks": rng.randint(1, 4)}))
        elif kind == "crash":
            schedule.append(
                ("crash", {"shard": rng.randrange(config.shards)})
            )
        elif kind == "partition":
            schedule.append(
                (
                    "partition",
                    {
                        "shard": rng.randrange(config.shards),
                        "ticks": rng.randint(2, 6),
                    },
                )
            )
        else:
            schedule.append(("quiesce", {}))
    schedule.append(("quiesce", {}))
    return schedule


class ClusterEpisodeResult:
    """Outcome of one episode (a pure function of seed and config)."""

    __slots__ = ("seed", "schedule", "stats", "divergences")

    def __init__(
        self,
        seed: int,
        schedule: Schedule,
        stats: Counter,
        divergences: list[str],
    ) -> None:
        self.seed = seed
        self.schedule = schedule
        self.stats = stats
        self.divergences = divergences

    @property
    def ok(self) -> bool:
        return not self.divergences


class _ClusterEpisode:
    """One live cluster under one schedule, plus the end-state oracle."""

    def __init__(self, seed: int, config: ClusterSimConfig) -> None:
        self.seed = seed
        self.config = config
        self.stats: Counter = Counter()
        self.divergences: list[str] = []
        self.clock = SimClock()
        net_rng = random.Random(f"{seed}:net")
        (
            self.topology,
            self.tables,
            self.rows,
            self.constraints,
            self.keys,
            self.views,
        ) = cluster_workload(config.shards, keyed=config.keyed)
        self.base_free_shards: tuple[int, ...] = ()
        if config.base_free:
            # Only self-maintainable views can be hosted base-free:
            # v_rt joins without a range restriction, so it is neither
            # single-relation nor provably empty off-home and must go.
            self.views = [
                (name, expression)
                for name, expression in self.views
                if name != "v_rt"
            ]
            self.base_free_shards = tuple(
                shard
                for shard in range(config.shards)
                if shard != HOME_SHARD
            )

        def link_factory(node: ShardNode, shard_id: int) -> SimShardLink:
            return SimShardLink(
                node,
                self.clock,
                net_rng,
                delay_max=config.delay_max,
                drop_rate=config.drop_rate,
                duplicate_rate=config.duplicate_rate,
                reorder_rate=config.reorder_rate,
            )

        self.coordinator: ClusterCoordinator = build_cluster(
            self.topology,
            self.tables,
            self.rows,
            self.constraints,
            self.views,
            routed=config.routed,
            base_free_shards=self.base_free_shards,
            link_factory=link_factory,
            keys=self.keys,
        )
        self.links: list[SimShardLink] = [
            link
            for link in self.coordinator.links
            if isinstance(link, SimShardLink)
        ]
        #: The changefeed mirror: initial merged view contents, folded
        #: forward by every emitted event (oracle invariant 2).
        self.mirror: dict[str, dict[tuple[int, ...], int]] = {
            name: dict(self.coordinator.merged_counts(name)[0])
            for name, _ in self.views
        }
        self.coordinator.emit_hooks.append(self._fold_event)
        self.submitted: list[int] = []
        self._heal_at: dict[int, int] = {}

    # -- changefeed mirror ------------------------------------------------
    def _fold_event(
        self, sequence: int, merged: dict[str, dict[str, Any]]
    ) -> None:
        self.stats["feed_events"] += 1
        for view, doc in merged.items():
            bag = self.mirror[view]
            for row in doc.get("inserted", ()):
                key = tuple(row)
                bag[key] = bag.get(key, 0) + 1
            for row in doc.get("deleted", ()):
                key = tuple(row)
                remaining = bag.get(key, 0) - 1
                if remaining:
                    bag[key] = remaining
                else:
                    bag.pop(key, None)

    # -- schedule execution -----------------------------------------------
    def run(self, schedule: Schedule) -> None:
        for kind, params in schedule:
            if kind == "txn":
                self._do_txn(params)
            elif kind == "net":
                for _ in range(int(params["ticks"])):
                    self._tick()
            elif kind == "crash":
                self.stats["crashes"] += 1
                self.coordinator.crash_shard(int(params["shard"]))
            elif kind == "partition":
                shard = int(params["shard"])
                self.stats["partitions"] += 1
                self.links[shard].partition(True)
                self._heal_at[shard] = self.clock.now + int(params["ticks"])
            elif kind == "quiesce":
                self._quiesce()
        self._quiesce()
        self._check()

    def _do_txn(self, params: dict[str, Any]) -> None:
        self.stats["txns_submitted"] += 1
        txn_id = self.coordinator.submit(
            inserts=params.get("inserts") or {},
            deletes=params.get("deletes") or {},
        )
        self.submitted.append(txn_id)

    def _tick(self) -> None:
        self.stats["ticks"] += 1
        self.clock.advance(1)
        for shard, deadline in sorted(self._heal_at.items()):
            if self.clock.now >= deadline:
                self.links[shard].partition(False)
                del self._heal_at[shard]
        for link in self.links:
            link.pump()
        self.coordinator.tick()

    def _quiesce(self) -> None:
        """Heal everything and drain the 2PC layer to silence."""
        for shard in sorted(self._heal_at):
            self.links[shard].partition(False)
        self._heal_at.clear()
        for _ in range(MAX_DRAIN_TICKS):
            if self.coordinator.pending_count() == 0 and all(
                link.idle() for link in self.links
            ):
                return
            self._tick()
        self.divergences.append(
            f"cluster failed to quiesce within {MAX_DRAIN_TICKS} ticks "
            f"({self.coordinator.pending_count()} pending transactions)"
        )

    # -- the oracle --------------------------------------------------------
    def _ground_truth(self) -> tuple[Database, ViewMaintainer]:
        database = Database()
        for name in sorted(self.tables):
            database.create_relation(
                name, list(self.tables[name]), self.rows[name]
            )
        for name in sorted(self.constraints):
            database.declare_constraint(
                name, Condition.coerce(self.constraints[name])
            )
        for name in sorted(self.keys):
            for key in self.keys[name]:
                database.declare_key(name, list(key))
        maintainer = ViewMaintainer(database)
        for name, expression in self.views:
            maintainer.define_view(name, expression)
        for entry in self.coordinator.committed_log:
            txn = database.begin(txn_id=entry["txn"])
            for name in sorted(entry["deletes"]):
                txn.delete_many(
                    name, (tuple(row) for row in entry["deletes"][name])
                )
            for name in sorted(entry["inserts"]):
                txn.insert_many(
                    name, (tuple(row) for row in entry["inserts"][name])
                )
            txn.commit()
        maintainer.quiesce()
        return database, maintainer

    @staticmethod
    def _diff(
        label: str,
        want: dict[tuple[int, ...], int],
        have: dict[tuple[int, ...], int],
    ) -> str | None:
        if want == have:
            return None
        missing = sorted(set(want) - set(have))
        unexpected = sorted(set(have) - set(want))
        recounted = sorted(
            key for key in set(want) & set(have) if want[key] != have[key]
        )
        return (
            f"{label} diverges (missing {missing[:3]!r}, unexpected "
            f"{unexpected[:3]!r}, count mismatches {recounted[:3]!r}; "
            f"sizes {len(want)} vs {len(have)})"
        )

    def _check(self) -> None:
        for txn_id in self.submitted:
            outcome = self.coordinator.outcome(txn_id)
            if outcome is None:
                self.divergences.append(
                    f"transaction {txn_id} never resolved"
                )
            elif outcome["status"] == "committed":
                self.stats["txns_committed"] += 1
            elif outcome["code"] == protocol.E_SHARD_UNAVAILABLE:
                self.stats["txns_timed_out"] += 1
            else:
                self.stats["txns_rejected"] += 1
        database, maintainer = self._ground_truth()

        # 1. merged views == single-node views
        for name, _ in self.views:
            merged, _, _ = self.coordinator.merged_counts(name)
            truth = maintainer.view(name).contents.counts()
            message = self._diff(f"merged view {name!r}", truth, merged)
            if message:
                self.divergences.append(message)
        # 2. the changefeed mirror == single-node views
        for name, _ in self.views:
            truth = maintainer.view(name).contents.counts()
            message = self._diff(f"changefeed mirror {name!r}", truth, self.mirror[name])
            if message:
                self.divergences.append(message)
        # 3. partitioned union == single-node relation; slices in range.
        # With base-free shards only the home slice is materialized
        # anywhere, so the union is compared against the single-node
        # relation restricted to home-owned rows — and every base-free
        # node must hold zero base rows at all.
        truth_r = database.relation("r").counts()
        if self.config.base_free:
            schema = database.relation("r").schema
            attributes = self.tables["r"]
            truth_r = {
                values: count
                for values, count in truth_r.items()
                if self.topology.shard_of_row(
                    "r", attributes, schema.decode_values(values)
                )
                == HOME_SHARD
            }
        merged_r, _, _ = self.coordinator.merged_counts("r")
        message = self._diff(
            "partitioned relation 'r' union",
            truth_r,
            merged_r,
        )
        if message:
            self.divergences.append(message)
        for node in self.coordinator.nodes():
            if not node.base_free:
                continue
            self.stats["base_free_rows_dropped"] += node.base_rows_dropped
            for name in sorted(self.tables):
                held = len(node.database.relation(name))
                if held:
                    self.divergences.append(
                        f"base-free shard {node.shard_id} holds {held} "
                        f"tuples of base relation {name!r}"
                    )
        for node in self.coordinator.nodes():
            attributes = self.tables["r"]
            for values, _ in node.database.relation("r").items():
                decoded = node.database.relation("r").schema.decode_values(values)
                owner = self.topology.shard_of_row("r", attributes, decoded)
                if owner != node.shard_id:
                    self.divergences.append(
                        f"shard {node.shard_id} holds misrouted row "
                        f"{tuple(decoded)!r} of 'r' (owner {owner})"
                    )
        # 4. home replicated copies == single-node relations
        home = self.coordinator.nodes()[HOME_SHARD]
        for name in ("s", "t"):
            message = self._diff(
                f"home copy of {name!r}",
                database.relation(name).counts(),
                home.database.relation(name).counts(),
            )
            if message:
                self.divergences.append(message)
        # Fold the routing counters into the batch stats.
        counters = self.coordinator.recorder.counters
        for key in (
            "cluster_deltas_sent",
            "cluster_deltas_skipped",
            "cluster_retransmissions",
            "cluster_shard_rebuilds",
        ):
            self.stats[key] += counters.get(key, 0)


def run_cluster_episode(
    seed: int,
    config: ClusterSimConfig,
    schedule: Schedule | None = None,
) -> ClusterEpisodeResult:
    """Execute one sharded episode; escapes become divergences."""
    if schedule is None:
        schedule = generate_cluster_schedule(
            random.Random(f"{seed}:schedule"), config
        )
    stats: Counter = Counter()
    divergences: list[str] = []
    try:
        episode = _ClusterEpisode(seed, config)
        stats, divergences = episode.stats, episode.divergences
        episode.run(schedule)
    except Exception as exc:  # noqa: BLE001 — an escape *is* the finding
        divergences.append(f"unhandled {type(exc).__name__}: {exc}")
    return ClusterEpisodeResult(seed, schedule, stats, divergences)


class ClusterSimReport:
    """Aggregated outcome of a sharded simulation batch."""

    __slots__ = ("config", "stats", "episodes", "failures")

    def __init__(
        self,
        config: ClusterSimConfig,
        stats: Counter,
        episodes: list[ClusterEpisodeResult],
        failures: list[ClusterEpisodeResult],
    ) -> None:
        self.config = config
        self.stats = stats
        self.episodes = episodes
        self.failures = failures

    @property
    def ok(self) -> bool:
        return not self.failures

    def format(self) -> str:
        """A deterministic multi-line summary (same seed, same text)."""
        config = self.config
        lines = [
            f"cluster simulation seed={config.seed} "
            f"episodes={len(self.episodes)} events={config.events} "
            f"shards={config.shards} crashes={config.crashes} "
            f"partitions={config.partitions} routed={config.routed} "
            f"base_free={config.base_free} keyed={config.keyed}"
        ]
        for key in sorted(self.stats):
            lines.append(f"  {key}: {self.stats[key]}")
        for failure in self.failures:
            lines.append(f"DIVERGENCE seed={failure.seed}")
            for message in failure.divergences[:5]:
                lines.append(f"  ! {message}")
        lines.append(
            "OK" if self.ok else f"FAILED ({len(self.failures)} episodes)"
        )
        return "\n".join(lines)


def cluster_episode_seeds(config: ClusterSimConfig) -> list[int]:
    """The batch's episode seeds, derived from the master seed."""
    rng = random.Random(f"{config.seed}:cluster-episodes")
    return [rng.randrange(2**31) for _ in range(config.episodes)]


def run_cluster_simulation(
    config: ClusterSimConfig, max_failures: int = 3
) -> ClusterSimReport:
    """Run the batch; stops early after ``max_failures`` divergences."""
    stats: Counter = Counter()
    episodes: list[ClusterEpisodeResult] = []
    failures: list[ClusterEpisodeResult] = []
    for seed in cluster_episode_seeds(config):
        result = run_cluster_episode(seed, config)
        episodes.append(result)
        stats.update(result.stats)
        stats["episodes"] += 1
        if not result.ok:
            failures.append(result)
            if len(failures) >= max_failures:
                break
    return ClusterSimReport(config, stats, episodes, failures)
