"""Self-maintainability analysis and the staleness-SLA refresh scheduler.

The subsystem has two halves (see ``docs/scheduler.md``):

* :mod:`repro.scheduler.selfmaint` classifies each view definition as
  *self-maintainable* — updatable from the view's own counted contents
  plus the shipped delta, with no base-relation state consulted — or
  not.  Hosts that carry only self-maintainable views (a
  :class:`~repro.replication.follower.Follower` or a
  :class:`~repro.cluster.shard.ShardNode` with ``base_free=True``) drop
  their base-relation copies entirely.
* :mod:`repro.scheduler.refresh` schedules ``refresh()`` calls for
  deferred views against per-view staleness SLAs
  (:class:`~repro.scheduler.sla.StalenessSLA`), with batching and
  backpressure; :mod:`repro.scheduler.monitor` snapshots maintenance
  and scheduler counters over a virtual-clock window and renders
  deterministic JSON/HTML staleness reports.
"""

from repro.scheduler.monitor import Monitor, StalenessReport
from repro.scheduler.refresh import RefreshScheduler, SchedulerStats, TickClock
from repro.scheduler.selfmaint import (
    KIND_CONSTRAINT_EMPTY,
    KIND_JOIN,
    KIND_SINGLE_RELATION,
    SelfMaintainability,
    classify_self_maintainability,
)
from repro.scheduler.sla import StalenessSLA

__all__ = [
    "KIND_CONSTRAINT_EMPTY",
    "KIND_JOIN",
    "KIND_SINGLE_RELATION",
    "Monitor",
    "RefreshScheduler",
    "SchedulerStats",
    "SelfMaintainability",
    "StalenessReport",
    "StalenessSLA",
    "TickClock",
    "classify_self_maintainability",
]
