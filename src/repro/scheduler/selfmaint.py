"""Self-maintainability classification for SPJ views.

A view ``v = π_X(σ_C(R₁ × … × R_p))`` is *self-maintainable* when, for
every legal transaction, the new materialization is a function of the
old view contents (multiplicity counters included) and the
transaction's net deltas alone — no base-relation state is ever
consulted.  Hosts that carry only self-maintainable views can drop
their base-relation copies entirely and still maintain byte-for-byte
correct views from shipped deltas (``base_free=True`` on
:class:`~repro.replication.follower.Follower` and
:class:`~repro.cluster.shard.ShardNode`).

Why join views are not self-maintainable in general
---------------------------------------------------
The obstruction is the *empty view*: take ``v = σ_{A=C}(r × s)`` with
``r`` empty and ``s`` arbitrary, so ``v`` is empty.  Inserting a tuple
into ``r`` must produce every matching ``s``-partner in the view — but
the empty view contents carry no information about ``s`` at all, so no
function of (view contents, delta) can be correct for every ``s``.
Projection does not help (the counters only count rows already in the
view), and neither does any join order.  Self-maintainability for join
views therefore needs *extra premises* that let the probe side be
reconstructed or proven empty.  This module implements the two classes
whose premises the engine can actually discharge:

* ``single_relation`` (``p == 1``) — always self-maintainable.  The
  compiled maintenance plan's delta enumeration for one occurrence
  contains exactly the ``(DELTA,)`` row: the plan screens, selects and
  projects the delta itself with counted semantics and never
  materializes an OLD operand (see
  ``repro.core.differential.LazyOperandEntry`` — OLD operands are built
  lazily, and the single-occurrence DELTA row requests none).  Running
  the *same compiled plan* against empty base relations is therefore
  byte-for-byte identical by construction, which is how the base-free
  hosting modes execute it.
* ``constraint_empty_join`` (``p ≥ 2``) — the view condition conjoined
  with every declared relation constraint (each ``K_R`` requalified
  through its occurrence's rename, Theorem 4.1 style) is
  unsatisfiable.  Every legal database state then yields an **empty**
  view, and every legal delta yields an empty view delta, so
  maintenance is trivially base-free.  Per-shard key-range constraints
  make this case real in the cluster: a shard whose ownership range
  contradicts a view's condition hosts that view as provably empty.
* ``fk_join`` (``p ≥ 2``) — every probe operand is reached through a
  declared foreign key into a declared candidate key and contributes
  nothing beyond the referenced key attributes
  (:func:`repro.analysis.dependencies.fk_reduction`).  The compiled
  plan then executes the *reduced* single-occurrence normal form over
  the referencing relation alone — the probe lookup is erased by
  substituting referencing attributes for referenced key attributes —
  so, like ``single_relation``, no maintenance step ever materializes
  an OLD operand and the same plan runs byte-for-byte against empty
  bases.

Everything else is classified ``join`` / not self-maintainable, with
the obstruction spelled out in the reason.  The test is sound but not
complete: like all Section 4 proofs it is decided over unbounded
discrete domains, so it may answer "not self-maintainable" for a view
that a finer analysis could admit, but never the reverse.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Optional, Protocol

from repro.algebra.conditions import Condition
from repro.algebra.expressions import requalify_condition
from repro.core.satisfiability import is_satisfiable
from repro.instrumentation import charge

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.dependencies import KeyLookup
    from repro.core.views import ViewDefinition


#: ``p == 1``: selection/projection over one occurrence — the delta-only
#: truth-table row maintains the view without OLD operands.
KIND_SINGLE_RELATION = "single_relation"
#: ``p >= 2`` but ``C ∧ K_R₁ ∧ … ∧ K_Rp`` is unsatisfiable: the view is
#: provably empty in every legal state, so maintenance is a no-op.
KIND_CONSTRAINT_EMPTY = "constraint_empty_join"
#: ``p >= 2`` where every probe operand is erased by a declared
#: foreign-key lookup into a declared candidate key: the compiled plan
#: runs the reduced single-occurrence normal form over the referencing
#: relation alone.
KIND_FK_JOIN = "fk_join"
#: ``p >= 2`` with no emptiness proof: the probe side of some delta row
#: cannot be recovered from view contents alone (the empty-view
#: obstruction), so base state is required.
KIND_JOIN = "join"
#: Any MIN/MAX aggregate column: deleting the current extremum needs the
#: runner-up, which the visible group rows do not determine — the
#: per-value support multiset is base-proportional auxiliary state.
KIND_AGGREGATE_MINMAX = "aggregate_minmax"
#: ``p == 1`` with only COUNT/SUM/AVG columns: the core delta is the
#: shipped delta itself, and the fold touches bounded per-group
#: accumulators only.
KIND_SINGLE_RELATION_AGGREGATE = "single_relation_aggregate"


class _ConstraintLookup(Protocol):
    """Anything with ``get(name) -> Condition | None`` — a
    :class:`~repro.engine.constraints.ConstraintCatalog` or a plain
    mapping."""

    def get(self, relation_name: str) -> Optional[Condition]: ...


class SelfMaintainability:
    """One view's classification, with the proof sketch as prose."""

    __slots__ = ("view", "self_maintainable", "kind", "reason")

    def __init__(
        self, view: str, self_maintainable: bool, kind: str, reason: str
    ) -> None:
        self.view = view
        self.self_maintainable = self_maintainable
        self.kind = kind
        self.reason = reason

    def as_dict(self) -> dict[str, object]:
        """JSON-ready form (stable keys)."""
        return {
            "view": self.view,
            "self_maintainable": self.self_maintainable,
            "kind": self.kind,
            "reason": self.reason,
        }

    def __repr__(self) -> str:
        verdict = "self-maintainable" if self.self_maintainable else "base-bound"
        return f"<SelfMaintainability {self.view!r} {verdict} ({self.kind})>"


def classify_self_maintainability(
    definition: "ViewDefinition",
    constraints: Optional[_ConstraintLookup] = None,
    keys: "Optional[KeyLookup]" = None,
) -> SelfMaintainability:
    """Classify one view definition against declared constraints.

    ``constraints`` maps relation names to their declared invariants
    (``None`` disables the ``constraint_empty_join`` class); pass the
    owning database's :attr:`~repro.engine.database.Database.constraints`
    catalog.  ``keys`` is the database's declared key/foreign-key
    catalog (``None`` disables the ``fk_join`` class).  Deterministic
    for a given definition and catalogs.
    """
    normal_form = definition.normal_form
    name = definition.name
    charge("self_maintainability_proofs")

    aggregate = definition.aggregate
    if aggregate is not None and aggregate.has_minmax:
        funcs = ", ".join(
            sorted({c.func for c in aggregate.columns if c.func in ("min", "max")})
        )
        return SelfMaintainability(
            name,
            False,
            KIND_AGGREGATE_MINMAX,
            f"aggregate view computes {funcs}: deleting the current "
            "extremum requires the group's runner-up, which no bounded "
            "per-group accumulator determines — the per-value support "
            "multiset is base-proportional auxiliary state a base-free "
            "host must not carry",
        )

    if len(normal_form.occurrences) == 1:
        relation = normal_form.occurrences[0].name
        if aggregate is not None:
            return SelfMaintainability(
                name,
                True,
                KIND_SINGLE_RELATION_AGGREGATE,
                f"single occurrence of {relation!r} under COUNT/SUM/AVG "
                "aggregation: the core delta is the shipped delta itself "
                "(delta-only plan row, no OLD operand), and the fold "
                "updates bounded per-group accumulators",
            )
        return SelfMaintainability(
            name,
            True,
            KIND_SINGLE_RELATION,
            f"single occurrence of {relation!r}: the delta-only plan row "
            "screens, selects and projects the shipped delta with counted "
            "semantics and never materializes an OLD operand",
        )

    if keys is not None and aggregate is None:
        from repro.analysis.dependencies import fk_reduction

        reduction = fk_reduction(normal_form, keys)
        if reduction is not None:
            probes = ", ".join(reduction.probe_relations)
            return SelfMaintainability(
                name,
                True,
                KIND_FK_JOIN,
                f"declared foreign keys erase the probe lookup into {probes}: "
                "the compiled plan executes the reduced single-occurrence "
                f"normal form over {reduction.delta_relation!r} alone, so "
                "like a single-relation view it never materializes an OLD "
                "operand",
            )

    if constraints is not None:
        condition = normal_form.condition
        constrained: list[str] = []
        for occurrence in normal_form.occurrences:
            declared = constraints.get(occurrence.name)
            if declared is None:
                continue
            condition = condition.conjoin(
                requalify_condition(declared, occurrence.rename)
            )
            constrained.append(occurrence.name)
        if constrained and not is_satisfiable(condition):
            listed = ", ".join(sorted(set(constrained)))
            return SelfMaintainability(
                name,
                True,
                KIND_CONSTRAINT_EMPTY,
                "condition conjoined with the declared constraints on "
                f"{listed} is unsatisfiable: the view is empty in every "
                "legal database state and every legal delta is irrelevant",
            )

    relations = ", ".join(sorted(normal_form.relation_names))
    return SelfMaintainability(
        name,
        False,
        KIND_JOIN,
        f"join over {relations}: an insert into one operand must be joined "
        "against the others' current state, which the view contents do not "
        "determine (consider the view while empty) — base copies required",
    )


def classify_catalog(
    definitions: Mapping[str, "ViewDefinition"],
    constraints: Optional[_ConstraintLookup] = None,
    keys: "Optional[KeyLookup]" = None,
) -> dict[str, SelfMaintainability]:
    """Classify every definition; keys follow the input mapping's names."""
    return {
        name: classify_self_maintainability(definition, constraints, keys)
        for name, definition in definitions.items()
    }
