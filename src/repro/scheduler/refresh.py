"""The staleness-SLA refresh scheduler for deferred views.

:class:`RefreshScheduler` owns the *when* of deferred maintenance: the
maintainer composes backlogs per commit (cheap), and the scheduler
decides which views to :meth:`~repro.core.maintainer.ViewMaintainer.refresh`
on each tick, most-overdue first, against their declared
:class:`~repro.scheduler.sla.StalenessSLA` bounds.

Time is a virtual integer clock (:class:`TickClock` — duck-compatible
with the simulation harness's ``SimClock``): the server advances it
once per committed transaction, the ``simulate`` harness per scheduled
event.  Nothing here reads ambient time, so a schedule replays
identically from a seed.

Scheduling policy
-----------------
* A view becomes **due** when its backlog or oldest-commit age reaches
  an SLA bound.  Due views are refreshed most-overdue first (excess
  over the bound, ties by name) — a priority queue rebuilt per tick
  from live backlog measures, because composition can both grow and
  *cancel* a backlog between ticks.
* At most ``batch_limit`` refreshes run per tick (**backpressure**):
  a refresh drains the whole composed backlog through one differential
  maintenance call, so bounding refreshes per tick bounds the
  maintenance work a single tick can inject into the commit path.
  Deferred-past-due views are counted and retried next tick.
* A due view observed *strictly beyond* a bound has missed its SLA;
  the miss is charged per view per tick (``scheduler_sla_violations``)
  whether or not this tick's batch then refreshes it.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Optional

from repro.errors import MaintenanceError, UnknownViewError
from repro.instrumentation import charge
from repro.scheduler.sla import StalenessSLA

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.maintainer import ViewMaintainer


class TickClock:
    """A monotonically advancing integer clock.

    The scheduler only reads ``.now``; any object with an integer
    ``now`` attribute works (the simulation harness passes its
    ``SimClock``).
    """

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0

    def advance(self, ticks: int = 1) -> int:
        """Move time forward; returns the new now."""
        if ticks < 0:
            raise ValueError("time only moves forward")
        self.now += ticks
        return self.now

    def __repr__(self) -> str:
        return f"<TickClock t={self.now}>"


class SchedulerStats:
    """Scheduler-wide counters."""

    __slots__ = (
        "ticks",
        "refreshes",
        "refreshed_commits",
        "due_views_seen",
        "backpressure_deferrals",
        "sla_violations",
    )

    def __init__(self) -> None:
        self.ticks = 0
        self.refreshes = 0
        self.refreshed_commits = 0
        self.due_views_seen = 0
        self.backpressure_deferrals = 0
        self.sla_violations = 0

    def as_dict(self) -> dict[str, int]:
        """Counter values as a plain dict (for reports)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"<SchedulerStats {inner}>"


class RefreshScheduler:
    """Drives ``refresh()`` for deferred views against staleness SLAs."""

    def __init__(
        self,
        maintainer: "ViewMaintainer",
        clock: Optional[TickClock] = None,
        batch_limit: int = 4,
    ) -> None:
        if batch_limit < 1:
            raise ValueError(f"batch_limit must be >= 1, got {batch_limit}")
        self.maintainer = maintainer
        self.clock = clock if clock is not None else TickClock()
        self.batch_limit = batch_limit
        self.stats = SchedulerStats()
        self._slas: dict[str, StalenessSLA] = {}
        #: Tick at which the oldest unapplied commit was first observed.
        self._first_pending_tick: dict[str, int] = {}
        self._violations: dict[str, int] = {}

    # ------------------------------------------------------------------
    # SLA management
    # ------------------------------------------------------------------
    def declare_sla(self, name: str, sla: StalenessSLA) -> None:
        """Attach an SLA to a deferred view (re-declaring replaces it).

        Immediate views are always current, so declaring an SLA on one
        is a configuration error, not a no-op.
        """
        from repro.core.maintainer import MaintenancePolicy

        if self.maintainer.policy(name) is not MaintenancePolicy.DEFERRED:
            raise MaintenanceError(
                f"view {name!r} is maintained immediately; staleness SLAs "
                "apply to deferred views only"
            )
        self._slas[name] = sla
        self._violations.setdefault(name, 0)

    def drop_sla(self, name: str) -> bool:
        """Forget a view's SLA; returns True when one existed."""
        self._first_pending_tick.pop(name, None)
        return self._slas.pop(name, None) is not None

    def sla(self, name: str) -> Optional[StalenessSLA]:
        """The declared SLA for ``name`` (None when absent)."""
        return self._slas.get(name)

    def sla_names(self) -> tuple[str, ...]:
        """Views with declared SLAs, sorted."""
        return tuple(sorted(self._slas))

    def violations(self) -> dict[str, int]:
        """Per-view SLA-violation tick counts (views with SLAs only)."""
        return {name: self._violations.get(name, 0) for name in self.sla_names()}

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def note_commit(self) -> None:
        """Record backlog arrival times after a commit.

        Stamps the current tick as the *first pending tick* of every
        SLA-tracked view whose backlog just became non-empty — the
        basis of the ``max_lag_ticks`` measure.  Called by the server
        after each commit and by :meth:`tick` itself (a tick observes
        before it schedules), so wiring ``note_commit`` everywhere is a
        precision improvement, not a correctness requirement.
        """
        for name in self._slas:
            backlog = self.maintainer.backlog(name)
            if backlog["commits_since_refresh"] > 0:
                self._first_pending_tick.setdefault(name, self.clock.now)
            else:
                self._first_pending_tick.pop(name, None)

    def lag_ticks(self, name: str) -> int:
        """Age of the oldest unapplied commit, in ticks (0 when fresh)."""
        if name not in self._slas:
            raise UnknownViewError(f"no SLA declared for view {name!r}")
        first = self._first_pending_tick.get(name)
        return 0 if first is None else self.clock.now - first

    # ------------------------------------------------------------------
    # The tick
    # ------------------------------------------------------------------
    def tick(self) -> tuple[str, ...]:
        """Refresh due views, most overdue first, up to ``batch_limit``.

        Returns the names refreshed this tick.  Deterministic: the
        queue order depends only on backlog measures, the clock, and
        view names.
        """
        self.stats.ticks += 1
        charge("scheduler_ticks")
        self.note_commit()

        queue: list[tuple[int, str]] = []
        for name in self.sla_names():
            sla = self._slas[name]
            backlog = self.maintainer.backlog(name)
            pending = backlog["commits_since_refresh"]
            lag = self.lag_ticks(name)
            if not sla.due(pending, lag):
                continue
            self.stats.due_views_seen += 1
            if sla.violated(pending, lag):
                self.stats.sla_violations += 1
                self._violations[name] = self._violations.get(name, 0) + 1
                charge("scheduler_sla_violations")
            heapq.heappush(queue, (-sla.overdue_by(pending, lag), name))

        refreshed: list[str] = []
        while queue and len(refreshed) < self.batch_limit:
            _, name = heapq.heappop(queue)
            pending = self.maintainer.backlog(name)["commits_since_refresh"]
            self.maintainer.refresh(name)
            self._first_pending_tick.pop(name, None)
            self.stats.refreshes += 1
            self.stats.refreshed_commits += pending
            charge("scheduler_refreshes")
            refreshed.append(name)
        if queue:
            self.stats.backpressure_deferrals += len(queue)
            charge("scheduler_backpressure_deferrals", len(queue))
        return tuple(refreshed)

    def __repr__(self) -> str:
        return (
            f"<RefreshScheduler {len(self._slas)} SLAs, t={self.clock.now}, "
            f"batch_limit={self.batch_limit}>"
        )
