"""Staleness monitoring: windowed counter snapshots and reports.

:class:`Monitor` brackets a time window over one maintainer (and
optionally its :class:`~repro.scheduler.refresh.RefreshScheduler`):
:meth:`~Monitor.begin` snapshots every per-view maintenance counter and
the scheduler's counters, :meth:`~Monitor.report` diffs the live
counters against the snapshot and returns a
:class:`StalenessReport` — per-view staleness (backlog size, commits
since refresh, sequence and tick lag), SLA bounds and violations over
the window, and refresh cost (maintenance runs, tuples screened, view
tuples churned).

Reports render as JSON (:meth:`StalenessReport.as_json`) and as a
standalone HTML page (:meth:`StalenessReport.as_html`).  Both are
**deterministic**: every number derives from the virtual clock and the
instrumentation counters — no wall-clock timestamps, no ambient state —
so a seeded run produces byte-identical reports (CI uploads the HTML
as an artifact and may diff it).
"""

from __future__ import annotations

import html
import json
from typing import TYPE_CHECKING, Optional

from repro.errors import MaintenanceError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.maintainer import ViewMaintainer
    from repro.scheduler.refresh import RefreshScheduler

#: Per-view cost counters diffed over the window, in report order.
_COST_COUNTERS = (
    "transactions_seen",
    "transactions_skipped",
    "deltas_applied",
    "tuples_screened",
    "tuples_irrelevant",
    "view_tuples_inserted",
    "view_tuples_deleted",
)


class StalenessReport:
    """One rendered monitoring window (see module docstring)."""

    __slots__ = ("data",)

    def __init__(self, data: dict) -> None:
        self.data = data

    def as_json(self) -> str:
        """The report as pretty-printed JSON with sorted keys."""
        return json.dumps(self.data, sort_keys=True, indent=2)

    def as_html(self) -> str:
        """The report as a standalone HTML page (deterministic)."""
        window = self.data["window"]
        views: dict[str, dict] = self.data["views"]
        scheduler: Optional[dict] = self.data["scheduler"]
        out: list[str] = [
            "<!DOCTYPE html>",
            "<html><head><meta charset='utf-8'>",
            "<title>staleness report</title>",
            "<style>",
            "body{font-family:monospace;margin:2em;}",
            "table{border-collapse:collapse;margin-bottom:2em;}",
            "th,td{border:1px solid #999;padding:0.3em 0.7em;text-align:right;}",
            "th{background:#eee;}td.name{text-align:left;}",
            ".violated{background:#fdd;}.ok{background:#dfd;}",
            "</style></head><body>",
            "<h1>staleness report</h1>",
            f"<p>window: tick {window['start']} &rarr; tick {window['end']} "
            f"({window['ticks']} ticks)</p>",
        ]
        out.append("<h2>views</h2><table><tr>")
        for heading in (
            "view",
            "policy",
            "tuples",
            "pending relations",
            "pending delta size",
            "commits since refresh",
            "sequence lag",
            "lag ticks",
            "SLA",
            "violations",
            "maintenance runs",
            "tuples screened",
            "view tuples churned",
        ):
            out.append(f"<th>{html.escape(heading)}</th>")
        out.append("</tr>")
        for name in sorted(views):
            row = views[name]
            backlog = row["backlog"]
            cost = row["cost"]
            sla = row["sla"]
            sla_text = (
                "&mdash;"
                if sla is None
                else html.escape(
                    f"pending<={sla['max_pending_commits']} "
                    f"lag<={sla['max_lag_ticks']}"
                )
            )
            cls = "violated" if row["sla_violations"] else "ok"
            churn = cost["view_tuples_inserted"] + cost["view_tuples_deleted"]
            out.append(
                f"<tr class='{cls}'><td class='name'>{html.escape(name)}</td>"
                f"<td>{html.escape(row['policy'])}</td>"
                f"<td>{row['tuples']}</td>"
                f"<td>{backlog['pending_relations']}</td>"
                f"<td>{backlog['pending_delta_size']}</td>"
                f"<td>{backlog['commits_since_refresh']}</td>"
                f"<td>{backlog['sequence_lag']}</td>"
                f"<td>{row['lag_ticks']}</td>"
                f"<td>{sla_text}</td>"
                f"<td>{row['sla_violations']}</td>"
                f"<td>{cost['transactions_seen']}</td>"
                f"<td>{cost['tuples_screened']}</td>"
                f"<td>{churn}</td></tr>"
            )
        out.append("</table>")
        if scheduler is not None:
            out.append("<h2>scheduler</h2><table><tr>")
            for key in sorted(scheduler):
                out.append(f"<th>{html.escape(key)}</th>")
            out.append("</tr><tr>")
            for key in sorted(scheduler):
                out.append(f"<td>{scheduler[key]}</td>")
            out.append("</tr></table>")
        out.append("</body></html>")
        return "\n".join(out)

    def __repr__(self) -> str:
        window = self.data["window"]
        return (
            f"<StalenessReport {len(self.data['views'])} views, "
            f"ticks {window['start']}..{window['end']}>"
        )


class Monitor:
    """Snapshots counters at window start and diffs at window end."""

    def __init__(
        self,
        maintainer: "ViewMaintainer",
        scheduler: Optional["RefreshScheduler"] = None,
    ) -> None:
        self.maintainer = maintainer
        self.scheduler = scheduler
        self._window_start: Optional[int] = None
        self._base_stats: dict[str, dict[str, int]] = {}
        self._base_scheduler: dict[str, int] = {}
        self._base_violations: dict[str, int] = {}

    def begin(self, now: int = 0) -> None:
        """Open a window at virtual tick ``now``."""
        self._window_start = now
        self._base_stats = self.maintainer.all_stats()
        if self.scheduler is not None:
            self._base_scheduler = self.scheduler.stats.as_dict()
            self._base_violations = self.scheduler.violations()
        else:
            self._base_scheduler = {}
            self._base_violations = {}

    def report(self, now: int = 0) -> StalenessReport:
        """Close the window at tick ``now`` and render it.

        The window stays open — calling :meth:`report` again later
        yields a longer window over the same baseline.
        """
        if self._window_start is None:
            raise MaintenanceError("Monitor.report() before begin()")
        views: dict[str, dict] = {}
        for name in self.maintainer.view_names():
            stats = self.maintainer.stats(name).as_dict()
            base = self._base_stats.get(name, {})
            cost = {
                key: stats[key] - base.get(key, 0) for key in _COST_COUNTERS
            }
            sla_dict = None
            lag_ticks = 0
            violations = 0
            if self.scheduler is not None:
                sla = self.scheduler.sla(name)
                if sla is not None:
                    sla_dict = sla.as_dict()
                    lag_ticks = self.scheduler.lag_ticks(name)
                    violations = self.scheduler.violations().get(
                        name, 0
                    ) - self._base_violations.get(name, 0)
            views[name] = {
                "policy": self.maintainer.policy(name).value,
                "tuples": len(self.maintainer.view(name).contents),
                "backlog": self.maintainer.backlog(name),
                "lag_ticks": lag_ticks,
                "sla": sla_dict,
                "sla_violations": violations,
                "cost": cost,
            }
        scheduler_delta: Optional[dict[str, int]] = None
        if self.scheduler is not None:
            live = self.scheduler.stats.as_dict()
            scheduler_delta = {
                key: live[key] - self._base_scheduler.get(key, 0) for key in live
            }
        data = {
            "window": {
                "start": self._window_start,
                "end": now,
                "ticks": now - self._window_start,
            },
            "views": views,
            "scheduler": scheduler_delta,
        }
        return StalenessReport(data)
