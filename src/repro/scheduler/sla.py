"""Per-view staleness SLA declarations.

A deferred view is a snapshot [AL80]: commits only compose its pending
deltas and :meth:`~repro.core.maintainer.ViewMaintainer.refresh`
applies them on demand.  An SLA bounds how stale the snapshot may get
along two axes:

* ``max_pending_commits`` — how many commits may accumulate in the
  view's composed backlog before a refresh is owed;
* ``max_lag_ticks`` — how many virtual-clock ticks the *oldest*
  unapplied commit may age before a refresh is owed.

Either bound may be ``None`` (unbounded on that axis), but not both —
an SLA with no bound schedules nothing.  The scheduler refreshes a view
when it becomes **due** (a measure *reaches* its bound) and counts an
**SLA violation** when a measure is observed *strictly beyond* its
bound — under nominal load with a tick per commit, views refresh
exactly at their bounds and the violation count stays zero; violations
appear only when load or backpressure pushes a refresh past its
deadline.
"""

from __future__ import annotations

from typing import Optional


class StalenessSLA:
    """Staleness bounds for one deferred view."""

    __slots__ = ("max_pending_commits", "max_lag_ticks")

    def __init__(
        self,
        max_pending_commits: Optional[int] = None,
        max_lag_ticks: Optional[int] = None,
    ) -> None:
        for label, bound in (
            ("max_pending_commits", max_pending_commits),
            ("max_lag_ticks", max_lag_ticks),
        ):
            if bound is not None and bound < 1:
                raise ValueError(f"{label} must be >= 1, got {bound}")
        if max_pending_commits is None and max_lag_ticks is None:
            raise ValueError("an SLA needs at least one bound")
        self.max_pending_commits = max_pending_commits
        self.max_lag_ticks = max_lag_ticks

    def due(self, pending_commits: int, lag_ticks: int) -> bool:
        """Is a refresh owed now?  (A measure reached its bound.)"""
        if (
            self.max_pending_commits is not None
            and pending_commits >= self.max_pending_commits
        ):
            return True
        return self.max_lag_ticks is not None and lag_ticks >= self.max_lag_ticks

    def violated(self, pending_commits: int, lag_ticks: int) -> bool:
        """Was the deadline missed?  (A measure is strictly beyond.)"""
        if (
            self.max_pending_commits is not None
            and pending_commits > self.max_pending_commits
        ):
            return True
        return self.max_lag_ticks is not None and lag_ticks > self.max_lag_ticks

    def overdue_by(self, pending_commits: int, lag_ticks: int) -> int:
        """How far past the bounds the view is — the scheduling priority.

        The maximum excess over any bounded axis (0 when within bounds);
        larger means more urgent.
        """
        excess = 0
        if self.max_pending_commits is not None:
            excess = max(excess, pending_commits - self.max_pending_commits)
        if self.max_lag_ticks is not None:
            excess = max(excess, lag_ticks - self.max_lag_ticks)
        return excess

    def as_dict(self) -> dict[str, Optional[int]]:
        """JSON-ready form (stable keys)."""
        return {
            "max_pending_commits": self.max_pending_commits,
            "max_lag_ticks": self.max_lag_ticks,
        }

    def __repr__(self) -> str:
        return (
            f"<StalenessSLA pending<={self.max_pending_commits} "
            f"lag<={self.max_lag_ticks}>"
        )
