"""repro — a reproduction of Blakeley, Larson & Tompa,
"Efficiently Updating Materialized Views" (SIGMOD 1986).

The library keeps materialized select–project–join views consistent
with their base relations using the paper's two-stage mechanism:

1. **Irrelevance filtering** (Section 4): updates whose substituted
   view condition is unsatisfiable — decided in polynomial time via the
   Rosenkrantz–Hunt constraint graph — provably cannot affect the view
   and are discarded without touching any data.
2. **Differential re-evaluation** (Section 5): surviving updates are
   propagated by evaluating only the truth-table delta rows of the view
   expression, with multiplicity counters making projection exact and
   insert/delete tags making mixed transactions exact.

Quickstart::

    from repro import Database, ViewMaintainer, BaseRef

    db = Database()
    db.create_relation("r", ["A", "B"], [(1, 2), (5, 10)])
    db.create_relation("s", ["C", "D"], [(2, 10), (10, 20)])

    maintainer = ViewMaintainer(db)
    view = maintainer.define_view(
        "u",
        BaseRef("r").product(BaseRef("s"))
                    .select("A < 10 and C > 5 and B = C")
                    .project(["A", "D"]),
    )

    with db.transact() as txn:
        txn.insert("r", (9, 10))       # relevant: flows into the view
        txn.insert("r", (11, 10))      # provably irrelevant: filtered

    print(view.contents.pretty())
"""

from repro.errors import (
    ReproError,
    SchemaError,
    DomainError,
    ConditionError,
    ExpressionError,
    TransactionError,
    UnknownRelationError,
    UnknownViewError,
    ViewDefinitionError,
    MaintenanceError,
    ReplicationError,
)
from repro.algebra import (
    Attribute,
    RelationSchema,
    Row,
    Relation,
    TaggedRelation,
    Delta,
    Tag,
    Atom,
    Conjunction,
    Condition,
    Var,
    Const,
    TRUE,
    parse_condition,
    BaseRef,
    Select,
    Project,
    Join,
    Product,
    Rename,
    Union,
    Difference,
    Expression,
    NormalForm,
    evaluate,
)
from repro.algebra.domains import Domain, IntegerDomain, FiniteDomain, StringDomain
from repro.algebra.expressions import to_normal_form
from repro.engine import Database, Transaction, UpdateLog, SnapshotQueue
from repro.core import (
    is_satisfiable,
    is_satisfiable_conjunction,
    solve_conjunction,
    solve_condition,
    RelevanceFilter,
    is_irrelevant_update,
    is_irrelevant_combination,
    filter_delta,
    compute_view_delta,
    ViewDefinition,
    MaterializedView,
    ViewMaintainer,
    MaintenancePolicy,
    check_view_consistency,
)
from repro.baselines import FullReevaluationMaintainer, KeyProjectionView
from repro.instrumentation import CostRecorder, recording
from repro.replication import (
    DurabilityManager,
    Follower,
    Recovery,
    WalCorruptionError,
    WalReader,
    WalWriter,
    recover,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "SchemaError",
    "DomainError",
    "ConditionError",
    "ExpressionError",
    "TransactionError",
    "UnknownRelationError",
    "UnknownViewError",
    "ViewDefinitionError",
    "MaintenanceError",
    "ReplicationError",
    # algebra
    "Attribute",
    "RelationSchema",
    "Row",
    "Relation",
    "TaggedRelation",
    "Delta",
    "Tag",
    "Atom",
    "Conjunction",
    "Condition",
    "Var",
    "Const",
    "TRUE",
    "parse_condition",
    "BaseRef",
    "Select",
    "Project",
    "Join",
    "Product",
    "Rename",
    "Union",
    "Difference",
    "Expression",
    "NormalForm",
    "to_normal_form",
    "evaluate",
    "Domain",
    "IntegerDomain",
    "FiniteDomain",
    "StringDomain",
    # engine
    "Database",
    "Transaction",
    "UpdateLog",
    "SnapshotQueue",
    # core
    "is_satisfiable",
    "is_satisfiable_conjunction",
    "solve_conjunction",
    "solve_condition",
    "RelevanceFilter",
    "is_irrelevant_update",
    "is_irrelevant_combination",
    "filter_delta",
    "compute_view_delta",
    "ViewDefinition",
    "MaterializedView",
    "ViewMaintainer",
    "MaintenancePolicy",
    "check_view_consistency",
    # baselines
    "FullReevaluationMaintainer",
    "KeyProjectionView",
    # replication
    "DurabilityManager",
    "Follower",
    "Recovery",
    "recover",
    "WalCorruptionError",
    "WalReader",
    "WalWriter",
    # instrumentation
    "CostRecorder",
    "recording",
    "__version__",
]
