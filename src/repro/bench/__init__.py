"""Benchmark harness: cost accounting, sweeps and paper-style reports."""

from repro.instrumentation import CostRecorder, recording, charge
from repro.bench.harness import Measurement, run_measured, sweep
from repro.bench.reporting import format_table, format_series

__all__ = [
    "CostRecorder",
    "recording",
    "charge",
    "Measurement",
    "run_measured",
    "sweep",
    "format_table",
    "format_series",
]
