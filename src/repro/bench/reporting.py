"""Plain-text tables for benchmark output.

The benchmarks print their reproduced tables and series to stdout in a
stable aligned format, so the shape of each result (who wins, by what
factor, where the crossover falls) is readable directly from
``pytest benchmarks/ -s`` output and from ``bench_output.txt``.
"""

from __future__ import annotations

from typing import Sequence


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            return str(value)
        if abs(value) >= 100:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned text table.

    >>> print(format_table(["x", "y"], [[1, 2.0], [10, 3.5]], title="demo"))
    demo
    x   y
    --  -----
    1   2.000
    10  3.500
    """
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(row[i]) for row in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)


def format_series(
    x_label: str,
    y_label: str,
    points: Sequence[tuple[object, object]],
    title: str = "",
) -> str:
    """Render an (x, y) series as a two-column table."""
    return format_table([x_label, y_label], [list(p) for p in points], title=title)
