"""Measured execution and parameter sweeps.

Every experiment in EXPERIMENTS.md boils down to: run a piece of work
under a :class:`~repro.instrumentation.CostRecorder` and a wall clock,
possibly across a sweep of one parameter, and print the resulting rows.
This module is that harness.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable

from repro.instrumentation import CostRecorder, recording


class Measurement:
    """One measured run: wall-clock seconds plus operation counters."""

    __slots__ = ("label", "seconds", "counters", "result")

    def __init__(
        self, label: str, seconds: float, counters: dict[str, int], result: object
    ) -> None:
        self.label = label
        self.seconds = seconds
        self.counters = counters
        self.result = result

    def counter(self, name: str) -> int:
        """A counter value (0 when the run never charged it)."""
        return self.counters.get(name, 0)

    def __repr__(self) -> str:
        return f"<Measurement {self.label!r} {self.seconds * 1000:.2f} ms>"


def run_measured(label: str, work: Callable[[], object]) -> Measurement:
    """Run ``work`` once under a fresh recorder and a wall clock."""
    recorder = CostRecorder()
    start = time.perf_counter()
    with recording(recorder):
        result = work()
    elapsed = time.perf_counter() - start
    return Measurement(label, elapsed, recorder.snapshot(), result)


def sweep(
    parameter_values: Iterable[object],
    make_work: Callable[[object], Callable[[], object]],
    label: str = "{value}",
) -> list[Measurement]:
    """Measure ``make_work(value)()`` for each parameter value.

    ``make_work`` receives the parameter and returns the zero-argument
    callable to measure — construction (e.g. loading a database) is
    thereby excluded from the measurement.
    """
    measurements = []
    for value in parameter_values:
        work = make_work(value)
        measurements.append(run_measured(label.format(value=value), work))
    return measurements


def ratio(numerator: float, denominator: float) -> float:
    """A guarded ratio for speedup columns (0 denominators give inf)."""
    if denominator == 0:
        return float("inf") if numerator > 0 else 1.0
    return numerator / denominator
