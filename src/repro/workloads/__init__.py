"""Synthetic workloads.

The paper contains no experimental workload, so the benchmarks drive
the system with parameterized synthetic ones (:mod:`generators`) and a
few named scenarios drawn from the paper's own examples and motivating
applications (:mod:`scenarios`).  All generation is deterministic under
a caller-supplied seed.
"""

from repro.workloads.generators import (
    RelationSpec,
    UpdateStreamSpec,
    generate_relation_rows,
    generate_update_stream,
    generate_chain_database,
)
from repro.workloads.scenarios import (
    example_4_1,
    paper_p3_join,
    sales_scenario,
    alerter_scenario,
    Scenario,
)
from repro.workloads.orderflow import OrderFlow

__all__ = [
    "RelationSpec",
    "UpdateStreamSpec",
    "generate_relation_rows",
    "generate_update_stream",
    "generate_chain_database",
    "example_4_1",
    "paper_p3_join",
    "sales_scenario",
    "alerter_scenario",
    "Scenario",
    "OrderFlow",
]
