"""Parameterized synthetic data and update-stream generation.

All randomness flows through a caller-supplied seed, so every benchmark
run is reproducible.  The key knobs mirror the quantities the paper's
cost arguments depend on:

* relation cardinality and attribute value ranges (join selectivity);
* update batch size relative to relation size (the |delta|/|base|
  ratio that decides differential vs full re-evaluation, E9);
* the *irrelevant fraction* of an update stream — tuples constructed
  to provably fail the view condition (E10);
* join fan-out in chain schemas (how many view tuples one base tuple
  supports, E5/E8).
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence

from repro.algebra.schema import RelationSchema
from repro.engine.database import Database
from repro.errors import ReproError


class RelationSpec:
    """How to generate one relation's rows.

    Attributes are integer-valued and uniformly drawn from
    ``[lo, hi]`` per attribute; a ``(lo, hi)`` pair may be given per
    attribute or once for all.
    """

    def __init__(
        self,
        name: str,
        attributes: Sequence[str],
        cardinality: int,
        value_range: tuple[int, int] | Sequence[tuple[int, int]] = (0, 1000),
    ) -> None:
        self.name = name
        self.attributes = tuple(attributes)
        self.cardinality = cardinality
        if isinstance(value_range[0], int):
            ranges = [value_range] * len(self.attributes)  # type: ignore[list-item]
        else:
            ranges = list(value_range)  # type: ignore[arg-type]
        if len(ranges) != len(self.attributes):
            raise ReproError(
                f"{len(ranges)} value ranges for {len(self.attributes)} attributes"
            )
        self.ranges: list[tuple[int, int]] = [tuple(r) for r in ranges]  # type: ignore[misc]

    def schema(self) -> RelationSchema:
        """The generated relation's schema."""
        return RelationSchema(self.attributes)


def generate_relation_rows(
    spec: RelationSpec, rng: random.Random
) -> list[tuple[int, ...]]:
    """Draw ``spec.cardinality`` distinct rows.

    Distinctness matches base relations' set semantics; generation
    retries on collisions, so keep cardinality well under the value
    space.
    """
    space = 1
    for lo, hi in spec.ranges:
        space *= hi - lo + 1
    if spec.cardinality > space:
        raise ReproError(
            f"cannot draw {spec.cardinality} distinct rows from a space of {space}"
        )
    rows: set[tuple[int, ...]] = set()
    while len(rows) < spec.cardinality:
        rows.add(tuple(rng.randint(lo, hi) for lo, hi in spec.ranges))
    return sorted(rows)


class UpdateStreamSpec:
    """How to generate a stream of update batches for one relation.

    Parameters
    ----------
    relation:
        The :class:`RelationSpec` being updated.
    batch_size:
        Tuples per transaction.
    insert_fraction:
        Fraction of each batch that inserts (the rest deletes existing
        tuples).
    irrelevant_fraction:
        Fraction of *inserted* tuples drawn from
        ``irrelevant_ranges`` instead of the relation's normal ranges —
        used to construct updates that provably fail a view condition.
    irrelevant_ranges:
        Per-attribute ``(lo, hi)`` ranges guaranteed (by the caller's
        choice of view condition) to make the tuple irrelevant.
    """

    def __init__(
        self,
        relation: RelationSpec,
        batch_size: int,
        insert_fraction: float = 1.0,
        irrelevant_fraction: float = 0.0,
        irrelevant_ranges: Sequence[tuple[int, int]] | None = None,
    ) -> None:
        if not 0.0 <= insert_fraction <= 1.0:
            raise ReproError("insert_fraction must be in [0, 1]")
        if not 0.0 <= irrelevant_fraction <= 1.0:
            raise ReproError("irrelevant_fraction must be in [0, 1]")
        if irrelevant_fraction > 0 and irrelevant_ranges is None:
            raise ReproError(
                "irrelevant_fraction needs irrelevant_ranges to draw from"
            )
        self.relation = relation
        self.batch_size = batch_size
        self.insert_fraction = insert_fraction
        self.irrelevant_fraction = irrelevant_fraction
        self.irrelevant_ranges = (
            [tuple(r) for r in irrelevant_ranges] if irrelevant_ranges else None
        )


def generate_update_stream(
    spec: UpdateStreamSpec,
    current_rows: Sequence[tuple[int, ...]],
    batches: int,
    rng: random.Random,
) -> Iterator[tuple[list[tuple[int, ...]], list[tuple[int, ...]]]]:
    """Yield ``(inserts, deletes)`` batches against a live row set.

    ``current_rows`` seeds the pool deletions draw from; the pool is
    kept in step with the generated batches so deletions always target
    rows that exist at that point in the stream.
    """
    pool = list(current_rows)
    pool_set = set(pool)
    relation = spec.relation
    for _ in range(batches):
        inserts: list[tuple[int, ...]] = []
        deletes: list[tuple[int, ...]] = []
        insert_count = round(spec.batch_size * spec.insert_fraction)
        delete_count = spec.batch_size - insert_count
        # Deletions are drawn first so a batch never deletes a row it
        # inserts itself (which would be a net no-op anyway).
        for _ in range(min(delete_count, len(pool))):
            index = rng.randrange(len(pool))
            row = pool[index]
            pool[index] = pool[-1]
            pool.pop()
            pool_set.discard(row)
            deletes.append(row)
        for _ in range(insert_count):
            use_irrelevant = (
                spec.irrelevant_ranges is not None
                and rng.random() < spec.irrelevant_fraction
            )
            ranges = (
                spec.irrelevant_ranges if use_irrelevant else relation.ranges
            )
            for _attempt in range(1000):
                row = tuple(rng.randint(lo, hi) for lo, hi in ranges)
                if row not in pool_set:
                    break
            else:  # pragma: no cover - astronomically unlikely
                raise ReproError("could not draw a fresh row in 1000 attempts")
            inserts.append(row)
            pool.append(row)
            pool_set.add(row)
        yield inserts, deletes


def generate_chain_database(
    relation_count: int,
    cardinality: int,
    value_range: tuple[int, int] = (0, 200),
    seed: int = 7,
) -> tuple[Database, list[str]]:
    """A p-relation chain-join database: r1(A0,A1), r2(A1,A2), …

    Adjacent relations share an attribute, so
    ``r1 ⋈ r2 ⋈ … ⋈ rp`` is the natural chain join — the shape of the
    paper's Section 5.3 example with ``p`` relations.  Returns the
    populated database and the relation names in chain order.
    """
    if relation_count < 1:
        raise ReproError("need at least one relation")
    rng = random.Random(seed)
    db = Database()
    names = []
    for i in range(relation_count):
        name = f"r{i + 1}"
        spec = RelationSpec(
            name, [f"A{i}", f"A{i + 1}"], cardinality, value_range
        )
        db.create_relation(name, spec.schema(), generate_relation_rows(spec, rng))
        names.append(name)
    return db, names
