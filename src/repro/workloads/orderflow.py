"""A richer multi-table workload: order flow.

A TPC-flavoured three-table schema exercising every maintenance path at
once — joins across three relations, selective conditions, stacked
views, deferred snapshots — under a mixed transaction stream (new
order lines, shipments, price changes).  Used by the E18 macro
benchmark and available to applications as a ready-made harness.

Schema (integer-coded per the paper's Section 3 convention):

* ``customer(cust_id, region, tier)``
* ``product(prod_id, price, category)``
* ``lineitem(line_id, cust_id, prod_id, qty, status)`` — status 0 =
  open, 1 = shipped, 2 = cancelled.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.algebra.expressions import BaseRef, Expression
from repro.engine.database import Database
from repro.errors import ReproError


class OrderFlow:
    """One populated order-flow database plus its view definitions."""

    def __init__(
        self,
        customers: int = 200,
        products: int = 100,
        lineitems: int = 2000,
        seed: int = 18,
    ) -> None:
        if min(customers, products, lineitems) < 1:
            raise ReproError("all table sizes must be positive")
        rng = random.Random(seed)
        self.database = Database()
        self.database.create_relation(
            "customer",
            ["cust_id", "region", "tier"],
            [(i, rng.randint(0, 4), rng.randint(0, 2)) for i in range(customers)],
        )
        self.database.create_relation(
            "product",
            ["prod_id", "price", "category"],
            [(i, rng.randint(1, 500), rng.randint(0, 9)) for i in range(products)],
        )
        self.database.create_relation(
            "lineitem",
            ["line_id", "cust_id", "prod_id", "qty", "status"],
            [
                (
                    i,
                    rng.randrange(customers),
                    rng.randrange(products),
                    rng.randint(1, 20),
                    rng.randint(0, 2),
                )
                for i in range(lineitems)
            ],
        )
        self._customers = customers
        self._products = products
        self._next_line_id = lineitems

    # ------------------------------------------------------------------
    # View definitions
    # ------------------------------------------------------------------
    def view_definitions(self) -> dict[str, Expression]:
        """The workload's standard views, in dependency order.

        ``open_lines`` is referenced by ``open_premium`` — a stacked
        view — so iteration order matters when registering.
        """
        open_lines = (
            BaseRef("lineitem")
            .select("status = 0 and qty >= 5")
            .project(["line_id", "cust_id", "prod_id", "qty"])
        )
        open_premium = (
            BaseRef("open_lines")
            .join(BaseRef("customer"))
            .select("tier = 2")
            .project(["line_id", "cust_id"])
        )
        pricey_open = (
            BaseRef("lineitem")
            .join(BaseRef("product"))
            .select("status = 0 and price > 400")
            .project(["line_id", "prod_id", "price"])
        )
        region_activity = (
            BaseRef("lineitem")
            .join(BaseRef("customer"))
            .select("status = 0")
            .project(["region"])
        )
        return {
            "open_lines": open_lines,
            "open_premium": open_premium,
            "pricey_open": pricey_open,
            "region_activity": region_activity,
        }

    # ------------------------------------------------------------------
    # Transaction stream
    # ------------------------------------------------------------------
    def transactions(self, count: int, seed: int = 19) -> Iterator[None]:
        """Run ``count`` mixed transactions against the database.

        Mix: 50 % new order lines, 30 % shipments (status 0 → 1), 10 %
        cancellations, 10 % price changes.  Yields after each commit so
        callers can interleave measurements.
        """
        rng = random.Random(seed)
        db = self.database
        for _ in range(count):
            with db.transact() as txn:
                roll = rng.random()
                if roll < 0.5:
                    txn.insert(
                        "lineitem",
                        (
                            self._next_line_id,
                            rng.randrange(self._customers),
                            rng.randrange(self._products),
                            rng.randint(1, 20),
                            0,
                        ),
                    )
                    self._next_line_id += 1
                elif roll < 0.9:
                    new_status = 1 if roll < 0.8 else 2
                    open_rows = [
                        row
                        for row in db.relation("lineitem").value_tuples()
                        if row[4] == 0
                    ]
                    if open_rows:
                        row = open_rows[rng.randrange(len(open_rows))]
                        txn.update("lineitem", row, row[:4] + (new_status,))
                else:
                    products = sorted(db.relation("product").value_tuples())
                    row = products[rng.randrange(len(products))]
                    txn.update(
                        "product", row, (row[0], rng.randint(1, 500), row[2])
                    )
            yield

    def __repr__(self) -> str:
        db = self.database
        return (
            f"<OrderFlow customers={len(db.relation('customer'))} "
            f"products={len(db.relation('product'))} "
            f"lineitems={len(db.relation('lineitem'))}>"
        )
