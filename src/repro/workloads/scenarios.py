"""Named scenarios: the paper's own examples and motivating applications.

Each factory returns a :class:`Scenario` — a populated database plus a
ready-made view expression — so tests, examples and benchmarks all
drive the *same* instances the paper discusses:

* :func:`example_4_1` — the relevance-filter worked example, verbatim;
* :func:`paper_p3_join` — the Section 5.3 three-relation join whose
  truth table the paper prints;
* :func:`sales_scenario` — an order-processing schema standing in for
  the "real time queries" motivation [GSV84];
* :func:`alerter_scenario` — a monitored-condition view in the style
  of Buneman & Clemons' alerters [BC79].
"""

from __future__ import annotations

import random
from repro.algebra.expressions import BaseRef, Expression
from repro.engine.database import Database
from repro.workloads.generators import generate_chain_database


class Scenario:
    """A populated database plus a named view expression."""

    __slots__ = ("name", "database", "view_name", "expression", "notes")

    def __init__(
        self,
        name: str,
        database: Database,
        view_name: str,
        expression: Expression,
        notes: str = "",
    ) -> None:
        self.name = name
        self.database = database
        self.view_name = view_name
        self.expression = expression
        self.notes = notes

    def __repr__(self) -> str:
        return f"<Scenario {self.name!r} view={self.view_name!r}>"


def example_4_1() -> Scenario:
    """The paper's Example 4.1, instance and view verbatim.

    Relations ``r(A, B)`` and ``s(C, D)``, view
    ``u = π_{A,D}(σ_{A<10 ∧ C>5 ∧ B=C}(r × s))``, with the printed
    instances ``r = {(1,2), (5,10), (12,15)}`` and
    ``s = {(2,10), (10,20)}`` — whose view state is ``{(1,10), (5,20)}``.
    """
    db = Database()
    db.create_relation("r", ["A", "B"], [(1, 2), (5, 10), (12, 15)])
    db.create_relation("s", ["C", "D"], [(2, 10), (10, 20)])
    expression = (
        BaseRef("r")
        .product(BaseRef("s"))
        .select("A < 10 and C > 5 and B = C")
        .project(["A", "D"])
    )
    return Scenario(
        "example-4.1",
        db,
        "u",
        expression,
        notes="Insert (9,10) into r: relevant. Insert (11,10): irrelevant.",
    )


def paper_p3_join(cardinality: int = 100, seed: int = 11) -> Scenario:
    """The Section 5.3 setting: ``V = r1 ⋈ r2 ⋈ r3`` as a chain join.

    The paper's truth table for p = 3 enumerates the 8 old/new operand
    combinations; with insertions to r1 and r2 only, rows 3, 5 and 7
    are the ones to evaluate.
    """
    db, names = generate_chain_database(3, cardinality, seed=seed)
    expression: Expression = BaseRef(names[0])
    for name in names[1:]:
        expression = expression.join(BaseRef(name))
    return Scenario(
        "paper-p3-join",
        db,
        "v",
        expression,
        notes="Chain join r1(A0,A1) ⋈ r2(A1,A2) ⋈ r3(A2,A3).",
    )


def sales_scenario(
    customers: int = 200, orders: int = 1000, seed: int = 23
) -> Scenario:
    """An order-processing database with a "large pending orders" view.

    ``customer(cust_id, region)`` joined to
    ``orders(order_id, cust_id, amount, status)`` — the view keeps
    pending orders above an amount threshold in region < 3 (statuses
    and regions are small integer codes, per the paper's convention of
    mapping discrete domains to naturals).  This is the shape of
    [GSV84]'s real-time query support: the view answers instantly,
    updates flow through maintenance.
    """
    rng = random.Random(seed)
    db = Database()
    customer_rows = [(i, rng.randint(0, 9)) for i in range(customers)]
    db.create_relation("customer", ["cust_id", "region"], customer_rows)
    order_rows = set()
    while len(order_rows) < orders:
        order_rows.add(
            (
                len(order_rows),
                rng.randrange(customers),
                rng.randint(1, 5000),
                rng.randint(0, 3),  # 0 = pending
            )
        )
    db.create_relation(
        "orders", ["order_id", "cust_id", "amount", "status"], sorted(order_rows)
    )
    expression = (
        BaseRef("customer")
        .join(BaseRef("orders"))
        .select("status = 0 and amount > 2500 and region < 3")
        .project(["order_id", "cust_id", "amount"])
    )
    return Scenario(
        "sales",
        db,
        "hot_pending_orders",
        expression,
        notes="Real-time query support per [GSV84].",
    )


def alerter_scenario(sensors: int = 50, readings: int = 500, seed: int = 31) -> Scenario:
    """A monitored-condition view in the style of alerters [BC79].

    ``sensor(sensor_id, threshold)`` joined to
    ``reading(sensor_id, value)``; the view is non-empty exactly when
    some reading exceeds its sensor's alarm threshold offset by 10 —
    the "state of the database described by the view definition has
    been reached" that an alerter watches for.  The offset exercises
    the paper's ``x op y + c`` atom shape.
    """
    rng = random.Random(seed)
    db = Database()
    sensor_rows = [(i, rng.randint(50, 150)) for i in range(sensors)]
    db.create_relation("sensor", ["sensor_id", "threshold"], sensor_rows)
    reading_rows = set()
    while len(reading_rows) < readings:
        reading_rows.add((rng.randrange(sensors), rng.randint(0, 120)))
    db.create_relation("reading", ["sensor_id", "value"], sorted(reading_rows))
    expression = (
        BaseRef("sensor")
        .join(BaseRef("reading"))
        .select("value > threshold + 10")
        .project(["sensor_id", "value"])
    )
    return Scenario(
        "alerter",
        db,
        "alarms",
        expression,
        notes="Alerter support per [BC79]; most readings are irrelevant.",
    )
