"""Complete re-evaluation baseline.

"A materialized view can always be brought up to date by re-evaluating
the relational expression that defines it.  However, complete
re-evaluation is often wasteful, and the cost involved may be
unacceptable" (Section 1).  This maintainer is that strawman: on every
commit touching a view's relations it throws the stored contents away
and evaluates the definition from scratch.  Every benchmark that
reports a speedup measures against it.
"""

from __future__ import annotations

from typing import Mapping

from repro.algebra.expressions import Expression
from repro.algebra.relation import Delta
from repro.core.views import MaterializedView, ViewDefinition
from repro.engine.database import Database
from repro.errors import MaintenanceError, UnknownViewError
from repro.instrumentation import charge


class FullReevaluationMaintainer:
    """Maintains views by complete re-evaluation on every commit."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self._views: dict[str, MaterializedView] = {}
        #: Number of from-scratch recomputations performed, per view.
        self.recomputations: dict[str, int] = {}
        database.add_commit_hook(self._on_commit)

    def define_view(self, name: str, expression: Expression) -> MaterializedView:
        """Register and materialize a view."""
        if name in self._views:
            raise MaintenanceError(f"view {name!r} is already defined")
        definition = ViewDefinition(name, expression, self.database.schema_catalog())
        view = MaterializedView.materialize(definition, self.database.instances())
        self._views[name] = view
        self.recomputations[name] = 0
        return view

    def view(self, name: str) -> MaterializedView:
        """The materialized view registered under ``name``."""
        try:
            return self._views[name]
        except KeyError:
            raise UnknownViewError(f"no view named {name!r}") from None

    def _on_commit(self, txn_id: int, deltas: Mapping[str, Delta]) -> None:
        if not deltas:
            return
        for name, view in self._views.items():
            if not (view.definition.relation_names & deltas.keys()):
                continue
            charge("baseline_recomputations")
            refreshed = MaterializedView.materialize(
                view.definition, self.database.instances()
            )
            view.contents = refreshed.contents
            view.updates_applied += 1
            self.recomputations[name] += 1

    def detach(self) -> None:
        """Stop observing commits."""
        self.database.remove_commit_hook(self._on_commit)

    def __repr__(self) -> str:
        return f"<FullReevaluationMaintainer {len(self._views)} views>"
