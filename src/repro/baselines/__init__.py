"""Baselines the paper's mechanism is compared against.

* :mod:`full_reevaluation` — recompute the view from scratch on every
  commit ("complete re-evaluation", the cost the paper calls "often
  wasteful").
* :mod:`unfiltered` — the differential algorithm *without* the
  Section 4 relevance filter (ablation for experiment E10).
* :mod:`key_projection` — Section 5.2's alternative (2): carry the
  underlying relation's key through the projection instead of a
  multiplicity counter.
"""

from repro.baselines.full_reevaluation import FullReevaluationMaintainer
from repro.baselines.key_projection import KeyProjectionView

__all__ = ["FullReevaluationMaintainer", "KeyProjectionView"]
