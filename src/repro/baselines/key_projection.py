"""Section 5.2's alternative (2): project-with-key views.

To make deletions unambiguous in a project view, the paper considers
two alternatives: (1) the multiplicity counter the library adopts, and
(2) "include the key of the underlying relation within the set of
attributes projected in the view.  This alternative allows unique
identification of each tuple in the view."  The paper chooses (1)
because (2) restricts the admissible views, and notes that (2) "becomes
a special case of alternative (1) in which every tuple in the view has
a counter value of one".

:class:`KeyProjectionView` implements alternative (2) so the trade-off
can be measured (experiment E4): it maintains ``π_{X ∪ K}(R)`` — the
user's attributes widened with the key — in plain set semantics, and
answers queries on ``X`` by projecting the key away on read.
"""

from __future__ import annotations

from typing import Sequence

from repro.algebra.evaluate import project_relation
from repro.algebra.relation import Delta, Relation
from repro.algebra.schema import RelationSchema
from repro.algebra.tuples import Row
from repro.errors import MaintenanceError, SchemaError
from repro.instrumentation import charge


class KeyProjectionView:
    """A project view maintained by carrying the base relation's key.

    Parameters
    ----------
    base_schema:
        Schema of the underlying relation.
    attributes:
        The user-requested projection ``X``.
    key:
        Attributes forming a key of the base relation.  Base relations
        here are sets of tuples, so the full attribute list is always a
        valid (if maximal) key.
    """

    def __init__(
        self,
        base_schema: RelationSchema,
        attributes: Sequence[str],
        key: Sequence[str],
    ) -> None:
        self.base_schema = base_schema
        self.attributes = tuple(attributes)
        self.key = tuple(key)
        missing = [a for a in self.attributes + self.key if a not in base_schema]
        if missing:
            raise SchemaError(
                f"attributes {missing} are not in base schema {base_schema.names}"
            )
        # The stored schema is X widened with whatever key attributes X
        # does not already include, preserving X's order first.
        stored_names = list(self.attributes)
        for name in self.key:
            if name not in stored_names:
                stored_names.append(name)
        self.stored_schema = base_schema.project_schema(stored_names)
        self._stored_positions = base_schema.positions(stored_names)
        self.contents = Relation(self.stored_schema)

    # ------------------------------------------------------------------
    # Materialization and maintenance
    # ------------------------------------------------------------------
    def materialize(self, base: Relation) -> None:
        """Load the widened projection of the base relation."""
        if base.schema.names != self.base_schema.names:
            raise SchemaError(
                f"expected base schema {self.base_schema.names}, "
                f"got {base.schema.names}"
            )
        self.contents = Relation(self.stored_schema)
        for values, count in base.items():
            if count != 1:
                raise MaintenanceError(
                    "key-projection views require set-semantics bases"
                )
            self.contents.add(self._stored_row(values))

    def apply_delta(self, delta: Delta) -> None:
        """Maintain through a base delta — trivially, thanks to the key.

        Because stored tuples are uniquely identified, insertions and
        deletions "cause no trouble": each base change maps to exactly
        one stored-tuple change.
        """
        for values in delta.deleted:
            charge("tuples_scanned")
            self.contents.discard(self._stored_row(values))
        for values in delta.inserted:
            charge("tuples_scanned")
            self.contents.add(self._stored_row(values))

    def _stored_row(self, values: tuple[int, ...]) -> Row:
        return Row(
            self.stored_schema, tuple(values[i] for i in self._stored_positions)
        )

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def query(self) -> Relation:
        """The user-visible view ``π_X``: project the key away on read.

        This is the cost alternative (2) pays at query time — the read
        does the count aggregation that alternative (1) keeps
        incrementally maintained.
        """
        return project_relation(self.contents, self.attributes)

    def __len__(self) -> int:
        return len(self.contents)

    def __repr__(self) -> str:
        return (
            f"<KeyProjectionView π_{list(self.attributes)} "
            f"+key{list(self.key)}: {len(self.contents)} stored tuples>"
        )
