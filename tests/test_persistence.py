"""Unit tests for database save/load."""

import io
import json

import pytest

from repro.algebra.domains import FiniteDomain, StringDomain
from repro.algebra.schema import Attribute, RelationSchema
from repro.engine.database import Database
from repro.engine.persistence import (
    PersistenceError,
    database_from_document,
    database_to_document,
    load_database,
    load_database_file,
    save_database,
    save_database_file,
)


@pytest.fixture
def db():
    database = Database()
    database.create_relation("r", ["A", "B"], [(1, 2), (3, 4)])
    database.create_relation(
        "typed",
        RelationSchema(
            [
                Attribute("status", StringDomain(["pending", "done"])),
                Attribute("n", FiniteDomain(0, 10)),
            ]
        ),
        [("pending", 3), ("done", 7)],
    )
    return database


class TestRoundTrip:
    def test_stream_round_trip(self, db):
        buffer = io.StringIO()
        save_database(db, buffer)
        buffer.seek(0)
        loaded = load_database(buffer)
        for name in db.relation_names():
            assert loaded.relation(name) == db.relation(name)
            assert loaded.relation(name).schema == db.relation(name).schema

    def test_file_round_trip(self, db, tmp_path):
        path = str(tmp_path / "db.json")
        save_database_file(db, path)
        loaded = load_database_file(path)
        assert loaded.relation("r") == db.relation("r")

    def test_document_is_deterministic(self, db):
        assert database_to_document(db) == database_to_document(db)

    def test_domains_survive(self, db):
        doc = database_to_document(db)
        loaded = database_from_document(doc)
        schema = loaded.relation("typed").schema
        assert schema.domain_of("status") == StringDomain(["pending", "done"])
        assert schema.domain_of("n") == FiniteDomain(0, 10)
        # String values decode back through the restored domain.
        (row,) = [r for r in loaded.relation("typed").rows() if r["n"] == 3]
        assert row["status"] == "pending"

    def test_loaded_database_is_functional(self, db):
        doc = database_to_document(db)
        loaded = database_from_document(doc)
        with loaded.transact() as txn:
            txn.insert("r", (5, 6))
        assert (5, 6) in loaded.relation("r")
        assert (5, 6) not in db.relation("r")

    def test_empty_database(self):
        doc = database_to_document(Database())
        assert database_from_document(doc).relation_names() == ()


class TestErrors:
    def test_wrong_version(self):
        with pytest.raises(PersistenceError):
            database_from_document({"format": 999, "relations": {}})

    def test_missing_relations(self):
        with pytest.raises(PersistenceError):
            database_from_document({"format": 1})

    def test_malformed_relation(self):
        doc = {"format": 1, "relations": {"r": {"attributes": []}}}
        with pytest.raises(PersistenceError):
            database_from_document(doc)

    def test_row_count_mismatch(self):
        doc = {
            "format": 1,
            "relations": {
                "r": {
                    "attributes": [{"name": "A", "domain": {"kind": "integer"}}],
                    "rows": [[1], [2]],
                    "counts": [1],
                }
            },
        }
        with pytest.raises(PersistenceError):
            database_from_document(doc)

    def test_counted_base_rejected(self):
        doc = {
            "format": 1,
            "relations": {
                "r": {
                    "attributes": [{"name": "A", "domain": {"kind": "integer"}}],
                    "rows": [[1]],
                    "counts": [2],
                }
            },
        }
        with pytest.raises(PersistenceError):
            database_from_document(doc)

    def test_unknown_domain_kind(self):
        doc = {
            "format": 1,
            "relations": {
                "r": {
                    "attributes": [{"name": "A", "domain": {"kind": "complex"}}],
                    "rows": [],
                    "counts": [],
                }
            },
        }
        with pytest.raises(PersistenceError):
            database_from_document(doc)

    def test_invalid_json_stream(self):
        with pytest.raises(PersistenceError):
            load_database(io.StringIO("{not json"))

    def test_document_is_json_serializable(self, db):
        json.dumps(database_to_document(db))


class TestRoundTripProperties:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    random_rows = st.lists(
        st.tuples(
            st.integers(min_value=-50, max_value=50),
            st.integers(min_value=-50, max_value=50),
        ),
        max_size=15,
        unique=True,
    )

    @settings(max_examples=100, deadline=None)
    @given(random_rows, random_rows)
    def test_random_databases_round_trip(self, r_rows, s_rows):
        db = Database()
        db.create_relation("r", ["A", "B"], r_rows)
        db.create_relation("s", ["X", "Y"], s_rows)
        buffer = io.StringIO()
        save_database(db, buffer)
        buffer.seek(0)
        loaded = load_database(buffer)
        assert loaded.relation("r") == db.relation("r")
        assert loaded.relation("s") == db.relation("s")

    @settings(max_examples=60, deadline=None)
    @given(random_rows)
    def test_round_trip_twice_is_stable(self, rows):
        db = Database()
        db.create_relation("r", ["A", "B"], rows)
        doc1 = database_to_document(db)
        doc2 = database_to_document(database_from_document(doc1))
        assert doc1 == doc2
