"""Unit tests for the Rosenkrantz–Hunt constraint graph."""

import pytest

from repro.algebra.conditions import Atom
from repro.core.graph import ZERO, ConstraintGraph
from repro.errors import ConditionError


class TestEdgeTranslation:
    def test_le_two_var(self):
        g = ConstraintGraph()
        g.add_atom(Atom("x", "<=", "y", 3))
        assert g.edges() == {("x", "y"): 3}

    def test_ge_two_var(self):
        # x >= y + c  ==  y <= x - c  ->  edge (y, x, -c)
        g = ConstraintGraph()
        g.add_atom(Atom("x", ">=", "y", 3))
        assert g.edges() == {("y", "x"): -3}

    def test_upper_bound_via_zero(self):
        g = ConstraintGraph()
        g.add_atom(Atom("x", "<=", 7))
        assert g.edges() == {("x", ZERO): 7}

    def test_lower_bound_via_zero(self):
        g = ConstraintGraph()
        g.add_atom(Atom("x", ">=", 7))
        assert g.edges() == {(ZERO, "x"): -7}

    def test_parallel_edges_keep_tightest(self):
        g = ConstraintGraph()
        g.add_atom(Atom("x", "<=", "y", 5))
        g.add_atom(Atom("x", "<=", "y", 2))
        g.add_atom(Atom("x", "<=", "y", 9))
        assert g.edges() == {("x", "y"): 2}

    def test_strict_operator_rejected(self):
        g = ConstraintGraph()
        with pytest.raises(ConditionError):
            g.add_atom(Atom("x", "<", "y"))

    def test_ground_atom_rejected(self):
        g = ConstraintGraph()
        with pytest.raises(ConditionError):
            g.add_atom(Atom(1, "<=", 2))

    def test_from_atoms_with_extra_nodes(self):
        g = ConstraintGraph.from_atoms([Atom("x", "<=", "y")], nodes=["z"])
        assert {"x", "y", "z", ZERO} <= g.nodes()


class TestNegativeCycles:
    def _graph(self, *atoms):
        return ConstraintGraph.from_atoms(list(atoms))

    def test_satisfiable_chain(self):
        g = self._graph(Atom("x", "<=", "y"), Atom("y", "<=", "z"))
        assert not g.has_negative_cycle("floyd")
        assert not g.has_negative_cycle("bellman")

    def test_contradictory_pair(self):
        # x <= y - 1 and y <= x - 1: cycle weight -2.
        g = self._graph(Atom("x", "<=", "y", -1), Atom("y", "<=", "x", -1))
        assert g.has_negative_cycle("floyd")
        assert g.has_negative_cycle("bellman")

    def test_zero_weight_cycle_is_fine(self):
        # x <= y and y <= x: consistent (x = y).
        g = self._graph(Atom("x", "<=", "y"), Atom("y", "<=", "x"))
        assert not g.has_negative_cycle("floyd")
        assert not g.has_negative_cycle("bellman")

    def test_bounds_conflict_through_zero(self):
        # x <= 3 and x >= 5: cycle through ZERO of weight -2.
        g = self._graph(Atom("x", "<=", 3), Atom("x", ">=", 5))
        assert g.has_negative_cycle("floyd")
        assert g.has_negative_cycle("bellman")

    def test_long_cycle(self):
        atoms = [
            Atom("a", "<=", "b"),
            Atom("b", "<=", "c"),
            Atom("c", "<=", "d"),
            Atom("d", "<=", "a", -1),
        ]
        g = self._graph(*atoms)
        assert g.has_negative_cycle("floyd")
        assert g.has_negative_cycle("bellman")

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            ConstraintGraph().has_negative_cycle("dijkstra")

    def test_floyd_and_bellman_agree_on_random_graphs(self):
        import random

        rng = random.Random(13)
        names = ["a", "b", "c", "d", "e"]
        for _ in range(100):
            g = ConstraintGraph()
            for _ in range(rng.randint(1, 10)):
                u, v = rng.sample(names, 2)
                g.add_edge(u, v, rng.randint(-3, 3))
            assert g.has_negative_cycle("floyd") == g.has_negative_cycle("bellman")


class TestFloydWarshall:
    def test_distances(self):
        g = ConstraintGraph.from_atoms(
            [Atom("x", "<=", "y", 2), Atom("y", "<=", "z", 3)]
        )
        dist, negative = g.floyd_warshall()
        assert not negative
        assert dist["x"]["z"] == 5
        assert dist["z"]["x"] == float("inf")
        assert dist["x"]["x"] == 0


class TestSolve:
    def test_solution_satisfies_edges(self):
        g = ConstraintGraph.from_atoms(
            [
                Atom("x", "<=", "y", -1),  # x <= y - 1
                Atom("y", "<=", 4),
                Atom("x", ">=", -2),
            ]
        )
        sol = g.solve()
        assert sol is not None
        assert sol["x"] <= sol["y"] - 1
        assert sol["y"] <= 4
        assert sol["x"] >= -2

    def test_unsatisfiable_returns_none(self):
        g = ConstraintGraph.from_atoms([Atom("x", "<=", 3), Atom("x", ">=", 5)])
        assert g.solve() is None

    def test_solution_pins_zero_node(self):
        # A pure bound: x >= 7. Solution must respect it, which only
        # works if ZERO is pinned to 0.
        g = ConstraintGraph.from_atoms([Atom("x", ">=", 7)])
        sol = g.solve()
        assert sol is not None and sol["x"] >= 7

    def test_unconstrained_nodes_get_values(self):
        g = ConstraintGraph(nodes=["lonely"])
        sol = g.solve()
        assert sol == {"lonely": 0}

    def test_random_solve_agrees_with_cycle_test(self):
        import random

        rng = random.Random(29)
        names = ["a", "b", "c", "d"]
        for _ in range(100):
            g = ConstraintGraph()
            for _ in range(rng.randint(1, 8)):
                u, v = rng.sample(names + [ZERO], 2)
                g.add_edge(u, v, rng.randint(-3, 3))
            sol = g.solve()
            if g.has_negative_cycle("bellman"):
                assert sol is None
            else:
                assert sol is not None
                # Verify every edge constraint u - v <= w.
                full = dict(sol)
                full[ZERO] = 0
                for (u, v), w in g.edges().items():
                    assert full[u] - full[v] <= w
