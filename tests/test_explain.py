"""Unit tests for the plan-explanation facility."""

import pytest

from repro.algebra.expressions import BaseRef, to_normal_form
from repro.core.maintainer import ViewMaintainer
from repro.core.planner import RowPlanner
from repro.engine.database import Database


@pytest.fixture
def db():
    database = Database()
    database.create_relation("r", ["A", "B"], [(1, 2)])
    database.create_relation("s", ["B", "C"], [(2, 3)])
    database.create_relation("t", ["C", "D"], [(3, 4)])
    return database


@pytest.fixture
def maintainer(db):
    m = ViewMaintainer(db)
    m.define_view(
        "v",
        BaseRef("r")
        .join(BaseRef("s"))
        .join(BaseRef("t"))
        .select("A < 10 and D >= 2")
        .project(["A", "D"]),
    )
    return m


class TestPlannerDescribe:
    def test_mentions_rows_and_order(self, db):
        nf = to_normal_form(
            BaseRef("r").join(BaseRef("s")), db.schema_catalog()
        )
        text = RowPlanner(nf, [0]).describe()
        assert "rows to evaluate: 1" in text
        assert "i_r ⋈ s" in text
        assert "delta-first" in text

    def test_full_evaluation_mode(self, db):
        nf = to_normal_form(BaseRef("r"), db.schema_catalog())
        text = RowPlanner(nf, []).describe()
        assert "full evaluation" in text
        assert "rows to evaluate: 1" in text

    def test_hash_links_and_filters_reported(self, db):
        nf = to_normal_form(
            BaseRef("r").join(BaseRef("s")).select("A < 5 and C > 1"),
            db.schema_catalog(),
        )
        text = RowPlanner(nf, [0]).describe()
        assert "hash-join on" in text
        assert "prefiltered" in text

    def test_cross_join_flagged(self, db):
        db.create_relation("u", ["X"], [(1,)])
        nf = to_normal_form(
            BaseRef("r").product(BaseRef("u")), db.schema_catalog()
        )
        text = RowPlanner(nf, [0]).describe()
        assert "cross join" in text

    def test_dnf_final_pass_flagged(self, db):
        nf = to_normal_form(
            BaseRef("r").select("A < 1 or B > 5"), db.schema_catalog()
        )
        text = RowPlanner(nf, [0]).describe()
        assert "full DNF condition re-check" in text


class TestMaintainerExplain:
    def test_explain_changed_relations(self, maintainer):
        text = maintainer.explain("v", ["r", "s"])
        assert "changed occurrences: ['r', 's']" in text
        assert "rows to evaluate: 3" in text

    def test_explain_uninvolved_relation(self, maintainer):
        text = maintainer.explain("v", ["zzz"])
        assert "no maintenance needed" in text

    def test_explain_unknown_view(self, maintainer):
        from repro.errors import UnknownViewError

        with pytest.raises(UnknownViewError):
            maintainer.explain("nope", ["r"])

    def test_projection_listed(self, maintainer):
        assert "projection: A, D" in maintainer.explain("v", ["r"])


class TestCompiledPlanExplain:
    def test_screening_split_shown(self, maintainer):
        text = maintainer.explain("v", ["r"])
        assert "compiled plan for view 'v'" in text
        assert "relevance screens" in text
        assert "invariant [" in text
        assert "variant evaluable [" in text

    def test_invariant_vs_variant_atoms(self, db):
        m = ViewMaintainer(db)
        m.define_view(
            "w",
            BaseRef("r").join(BaseRef("s")).select("A < 10 and C > 1"),
        )
        text = m.explain("w", ["r"])
        # Substituting an r-tuple grounds A < 10 (variant evaluable)
        # while C > 1 stays invariant across the whole batch.
        assert "invariant [C > 1]" in text
        assert "variant evaluable [A < 10]" in text

    def test_index_bindings_listed(self, maintainer):
        text = maintainer.explain("v", ["r"])
        assert "index bindings" in text
        assert "probes hash index" in text
        assert "will be created on first use" in text

    def test_existing_index_shown_as_bound(self, db, maintainer):
        db.create_index("s", ["B"])
        text = maintainer.explain("v", ["r"])
        assert "s(B) [bound]" in text

    def test_view_operand_flagged(self, db):
        m = ViewMaintainer(db)
        m.define_view("base_v", BaseRef("r").select("A < 10"))
        m.define_view(
            "stacked",
            BaseRef("base_v").join(BaseRef("t")).select("B = C"),
        )
        text = m.explain("stacked", ["t"])
        assert "base_v is a view operand" in text

    def test_screens_only_for_changed_relations(self, maintainer):
        text = maintainer.explain("v", ["r"])
        assert "  r#" in text
        assert "  s#" not in text
