"""Unit tests for atom normalization (Algorithm 4.1 step 1)."""

import pytest

from repro.algebra.conditions import Atom, Conjunction, parse_condition
from repro.core.normalize import normalize_atom, normalize_conjunction
from repro.errors import ConditionError


def _conj(text):
    return parse_condition(text).disjuncts[0]


class TestNormalizeAtom:
    def test_less_than_two_var(self):
        # x < y + c  ->  x <= y + c - 1 (discrete domains)
        (out,) = normalize_atom(Atom("x", "<", "y", 3))
        assert str(out) == "x <= y + 2"

    def test_greater_than_two_var(self):
        # x > y + c  ->  x >= y + c + 1
        (out,) = normalize_atom(Atom("x", ">", "y", 3))
        assert str(out) == "x >= y + 4"

    def test_equality_splits(self):
        out = normalize_atom(Atom("x", "=", "y", 2))
        assert [str(a) for a in out] == ["x <= y + 2", "x >= y + 2"]

    def test_weak_operators_unchanged(self):
        for op in ("<=", ">="):
            atom = Atom("x", op, "y", 1)
            assert normalize_atom(atom) == [atom]

    def test_single_variable_bounds(self):
        (out,) = normalize_atom(Atom("x", "<", 10))
        assert str(out) == "x <= 9"
        (out,) = normalize_atom(Atom("x", ">", 10))
        assert str(out) == "x >= 11"

    def test_single_variable_equality(self):
        out = normalize_atom(Atom("x", "=", 5))
        assert [str(a) for a in out] == ["x <= 5", "x >= 5"]

    def test_ground_atom_rejected(self):
        with pytest.raises(ConditionError):
            normalize_atom(Atom(1, "<", 2))

    @pytest.mark.parametrize(
        "op,offset",
        [("<", 0), (">", 0), ("=", 0), ("<=", 2), (">=", -2), ("<", 5), (">", -5)],
    )
    def test_normalization_preserves_solutions(self, op, offset):
        """Over the integers, normalized atoms have the same solution
        set as the original — the point of the ±1 rewrites."""
        original = Atom("x", op, "y", offset)
        normalized = normalize_atom(original)
        for x in range(-10, 11):
            for y in range(-10, 11):
                env = {"x": x, "y": y}
                assert original.evaluate(env) == all(
                    a.evaluate(env) for a in normalized
                )


class TestNormalizeConjunction:
    def test_drops_true_ground_atoms(self):
        nc = normalize_conjunction(_conj("3 <= 7 and x < 10"))
        assert [str(a) for a in nc.atoms] == ["x <= 9"]
        assert not nc.trivially_false

    def test_false_ground_atom_short_circuits(self):
        nc = normalize_conjunction(_conj("11 < 10 and x > 0"))
        assert nc.trivially_false
        assert nc.atoms == ()

    def test_empty_conjunction_is_true(self):
        nc = normalize_conjunction(Conjunction())
        assert not nc.trivially_false
        assert nc.atoms == ()

    def test_variables(self):
        nc = normalize_conjunction(_conj("x < y and z >= 2"))
        assert nc.variables() == {"x", "y", "z"}

    def test_paper_example_substituted_condition(self):
        # C(11, 10, C) = (11 < 10) ∧ (C > 5) ∧ (10 = C): trivially false.
        nc = normalize_conjunction(_conj("11 < 10 and C > 5 and 10 = C"))
        assert nc.trivially_false

    def test_paper_example_satisfiable_substitution(self):
        # C(9, 10, C) = (9 < 10) ∧ (C > 5) ∧ (10 = C): normalizes to
        # bounds on C only.
        nc = normalize_conjunction(_conj("9 < 10 and C > 5 and 10 = C"))
        assert not nc.trivially_false
        assert {str(a) for a in nc.atoms} == {"C >= 6", "C <= 10", "C >= 10"}
