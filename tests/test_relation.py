"""Unit tests for counted relations, deltas and tagged relations."""

import pytest

from repro.algebra.relation import Delta, Relation, TaggedRelation
from repro.algebra.schema import RelationSchema
from repro.algebra.tags import Tag
from repro.errors import MaintenanceError, SchemaError


@pytest.fixture
def schema():
    return RelationSchema(["A", "B"])


class TestRelation:
    def test_add_and_count(self, schema):
        r = Relation(schema)
        r.add((1, 2))
        r.add((1, 2))
        assert len(r) == 1
        assert r.count_of((1, 2)) == 2
        assert r.total_count() == 2

    def test_from_rows_mixed_shapes(self, schema):
        r = Relation.from_rows(schema, [(1, 2), {"A": 3, "B": 4}])
        assert (1, 2) in r and (3, 4) in r

    def test_discard_decrements_then_removes(self, schema):
        r = Relation.from_rows(schema, [(1, 2), (1, 2), (3, 4)])
        r.discard((1, 2))
        assert r.count_of((1, 2)) == 1
        r.discard((1, 2))
        assert (1, 2) not in r
        assert len(r) == 1

    def test_discard_below_zero_raises(self, schema):
        r = Relation.from_rows(schema, [(1, 2)])
        with pytest.raises(MaintenanceError):
            r.discard((1, 2), count=2)
        with pytest.raises(MaintenanceError):
            r.discard((9, 9))

    def test_nonpositive_counts_rejected(self, schema):
        r = Relation(schema)
        with pytest.raises(MaintenanceError):
            r.add((1, 2), count=0)
        with pytest.raises(MaintenanceError):
            r.add((1, 2), count=-1)
        r.add((1, 2))
        with pytest.raises(MaintenanceError):
            r.discard((1, 2), count=0)

    def test_from_counts_rejects_nonpositive(self, schema):
        with pytest.raises(MaintenanceError):
            Relation.from_counts(schema, {(1, 2): 0})

    def test_copy_is_independent(self, schema):
        r = Relation.from_rows(schema, [(1, 2)])
        c = r.copy()
        c.add((3, 4))
        assert (3, 4) not in r

    def test_union_adds_counts(self, schema):
        a = Relation.from_counts(schema, {(1, 2): 2})
        b = Relation.from_counts(schema, {(1, 2): 1, (3, 4): 1})
        u = a.union(b)
        assert u.count_of((1, 2)) == 3
        assert u.count_of((3, 4)) == 1

    def test_difference_subtracts_counts(self, schema):
        a = Relation.from_counts(schema, {(1, 2): 3, (3, 4): 1})
        b = Relation.from_counts(schema, {(1, 2): 1, (3, 4): 1})
        d = a.difference(b)
        assert d.count_of((1, 2)) == 2
        assert (3, 4) not in d

    def test_difference_negative_raises(self, schema):
        a = Relation.from_counts(schema, {(1, 2): 1})
        b = Relation.from_counts(schema, {(1, 2): 2})
        with pytest.raises(MaintenanceError):
            a.difference(b)

    def test_schema_mismatch_raises(self, schema):
        other = Relation(RelationSchema(["X", "Y"]))
        with pytest.raises(SchemaError):
            Relation(schema).union(other)

    def test_equality_includes_counts(self, schema):
        a = Relation.from_counts(schema, {(1, 2): 1})
        b = Relation.from_counts(schema, {(1, 2): 2})
        assert a != b
        assert a == Relation.from_counts(schema, {(1, 2): 1})

    def test_unhashable(self, schema):
        with pytest.raises(TypeError):
            hash(Relation(schema))

    def test_rows_iteration(self, schema):
        r = Relation.from_rows(schema, [(1, 2)])
        (row,) = list(r.rows())
        assert row["A"] == 1 and row["B"] == 2

    def test_pretty_renders_counts(self, schema):
        r = Relation.from_counts(schema, {(1, 2): 2})
        text = r.pretty()
        assert "x2" in text and "A" in text

    def test_pretty_truncates(self, schema):
        r = Relation.from_rows(schema, [(i, i) for i in range(30)])
        assert "more" in r.pretty(limit=5)


class TestDelta:
    def test_counts_and_disjointness(self, schema):
        d = Delta(schema, inserted=[(1, 2)], deleted=[(3, 4)])
        assert d.insert_count() == 1
        assert d.delete_count() == 1
        assert not d.is_empty()

    def test_overlap_rejected(self, schema):
        with pytest.raises(MaintenanceError):
            Delta(schema, inserted=[(1, 2)], deleted=[(1, 2)])

    def test_from_counts_overlap_rejected(self, schema):
        with pytest.raises(MaintenanceError):
            Delta.from_counts(schema, {(1, 2): 1}, {(1, 2): 1})

    def test_apply_to(self, schema):
        r = Relation.from_rows(schema, [(3, 4)])
        Delta(schema, inserted=[(1, 2)], deleted=[(3, 4)]).apply_to(r)
        assert (1, 2) in r and (3, 4) not in r

    def test_tagged_items(self, schema):
        d = Delta(schema, inserted=[(1, 2)], deleted=[(3, 4)])
        tags = {tag for _, tag, _ in d.tagged_items()}
        assert tags == {Tag.INSERT, Tag.DELETE}

    def test_compose_cancels_insert_then_delete(self, schema):
        first = Delta(schema, inserted=[(1, 2)])
        second = Delta(schema, deleted=[(1, 2)])
        assert first.compose(second).is_empty()

    def test_compose_cancels_delete_then_insert(self, schema):
        first = Delta(schema, deleted=[(1, 2)])
        second = Delta(schema, inserted=[(1, 2)])
        assert first.compose(second).is_empty()

    def test_compose_accumulates_distinct(self, schema):
        first = Delta(schema, inserted=[(1, 2)])
        second = Delta(schema, inserted=[(3, 4)], deleted=[(5, 6)])
        combined = first.compose(second)
        assert combined.inserted.keys() == {(1, 2), (3, 4)}
        assert combined.deleted.keys() == {(5, 6)}

    def test_compose_schema_mismatch(self, schema):
        other = Delta(RelationSchema(["X", "Y"]))
        with pytest.raises(SchemaError):
            Delta(schema).compose(other)

    def test_compose_equals_sequential_application(self, schema):
        base = Relation.from_rows(schema, [(0, 0), (1, 1), (2, 2)])
        d1 = Delta(schema, inserted=[(3, 3)], deleted=[(0, 0)])
        d2 = Delta(schema, inserted=[(0, 0)], deleted=[(3, 3), (1, 1)])
        sequential = base.copy()
        d1.apply_to(sequential)
        d2.apply_to(sequential)
        composed = base.copy()
        d1.compose(d2).apply_to(composed)
        assert sequential == composed


class TestTaggedRelation:
    def test_from_relation_tags_old(self, schema):
        r = Relation.from_counts(schema, {(1, 2): 2})
        t = TaggedRelation.from_relation(r)
        assert t.count_of((1, 2), Tag.OLD) == 2

    def test_from_delta(self, schema):
        d = Delta(schema, inserted=[(1, 2)], deleted=[(3, 4)])
        t = TaggedRelation.from_delta(d)
        assert t.count_of((1, 2), Tag.INSERT) == 1
        assert t.count_of((3, 4), Tag.DELETE) == 1

    def test_add_ignores_ignore(self, schema):
        t = TaggedRelation(schema)
        t.add((1, 2), Tag.IGNORE)
        assert t.is_empty()

    def test_add_accumulates_per_tag(self, schema):
        t = TaggedRelation(schema)
        t.add((1, 2), Tag.INSERT)
        t.add((1, 2), Tag.INSERT, 2)
        t.add((1, 2), Tag.DELETE)
        assert t.count_of((1, 2), Tag.INSERT) == 3
        assert t.count_of((1, 2), Tag.DELETE) == 1

    def test_nonpositive_count_rejected(self, schema):
        with pytest.raises(MaintenanceError):
            TaggedRelation(schema).add((1, 2), Tag.INSERT, 0)

    def test_to_delta_drops_old_and_cancels(self, schema):
        t = TaggedRelation(schema)
        t.add((1, 2), Tag.OLD, 5)
        t.add((3, 4), Tag.INSERT, 2)
        t.add((3, 4), Tag.DELETE, 1)
        t.add((5, 6), Tag.DELETE, 1)
        d = t.to_delta()
        assert d.inserted == {(3, 4): 1}
        assert d.deleted == {(5, 6): 1}

    def test_to_delta_full_cancellation(self, schema):
        t = TaggedRelation(schema)
        t.add((1, 2), Tag.INSERT, 2)
        t.add((1, 2), Tag.DELETE, 2)
        assert t.to_delta().is_empty()

    def test_merge(self, schema):
        a = TaggedRelation(schema)
        a.add((1, 2), Tag.INSERT)
        b = TaggedRelation(schema)
        b.add((1, 2), Tag.INSERT)
        b.add((3, 4), Tag.OLD)
        a.merge(b)
        assert a.count_of((1, 2), Tag.INSERT) == 2
        assert a.count_of((3, 4), Tag.OLD) == 1

    def test_merge_schema_mismatch(self, schema):
        with pytest.raises(SchemaError):
            TaggedRelation(schema).merge(TaggedRelation(RelationSchema(["X"])))
