"""Adversarial corner cases: self-referential atoms, multi-link joins.

These pin behaviours that are easy to get subtly wrong: atoms whose two
variables are the same attribute (``A < A + 1`` is a tautology, ``A <
A`` a contradiction — over discrete domains the graph sees them as
self-loops), and join operands linked to the accumulator through
*several* equality atoms at once.
"""

import pytest

from repro.algebra.conditions import Atom, parse_condition
from repro.algebra.evaluate import evaluate
from repro.algebra.expressions import BaseRef, to_normal_form
from repro.algebra.schema import RelationSchema
from repro.core.irrelevance import RelevanceFilter, is_irrelevant_update
from repro.core.maintainer import ViewMaintainer
from repro.core.planner import evaluate_normal_form
from repro.core.satisfiability import is_satisfiable_conjunction
from repro.engine.database import Database


class TestSelfReferentialAtoms:
    def test_tautology_satisfiable(self):
        conj = parse_condition("A < A + 1").disjuncts[0]
        assert is_satisfiable_conjunction(conj, "floyd")
        assert is_satisfiable_conjunction(conj, "bellman")

    def test_contradiction_unsatisfiable(self):
        for text in ("A < A", "A > A", "A = A + 1", "A <= A - 1"):
            conj = parse_condition(text).disjuncts[0]
            assert not is_satisfiable_conjunction(conj, "floyd"), text
            assert not is_satisfiable_conjunction(conj, "bellman"), text

    def test_reflexive_equality_satisfiable(self):
        conj = parse_condition("A = A and A <= 5").disjuncts[0]
        assert is_satisfiable_conjunction(conj)

    def test_filter_with_contradictory_invariant_self_loop(self):
        """An invariant self-loop contradiction kills the screen at
        construction, not per tuple."""
        catalog = {
            "r": RelationSchema(["A", "B"]),
            "s": RelationSchema(["C"]),
        }
        expr = (
            BaseRef("r").product(BaseRef("s")).select("C < C and A = C")
        ).project(["A"])
        nf = to_normal_form(expr, catalog)
        screen = RelevanceFilter(nf, "r", catalog["r"])
        assert screen._screens == []
        assert not screen.is_relevant((1, 2))

    def test_filter_with_variant_self_loop(self):
        """A < A substitutes to a ground falsehood for every tuple."""
        catalog = {"r": RelationSchema(["A", "B"])}
        nf = to_normal_form(BaseRef("r").select("A < A"), catalog)
        assert is_irrelevant_update(nf, "r", (3, 4), catalog["r"])

    def test_view_with_tautological_self_atom_maintained(self):
        db = Database()
        db.create_relation("r", ["A", "B"], [(1, 2)])
        m = ViewMaintainer(db, auto_verify=True)
        view = m.define_view("v", BaseRef("r").select("A <= A and B >= 1"))
        with db.transact() as txn:
            txn.insert("r", (3, 4))
            txn.insert("r", (5, 0))  # fails B >= 1
        assert view.contents.counts() == {(1, 2): 1, (3, 4): 1}


class TestMultiLinkJoins:
    @pytest.fixture
    def catalog(self):
        return {
            "r": RelationSchema(["A", "B"]),
            "t": RelationSchema(["X", "Y"]),
        }

    def test_operand_linked_through_two_equalities(self, catalog):
        """t joins r on BOTH X = A and Y = B simultaneously: the planner
        must build a composite key, not pick one link arbitrarily."""
        expr = (
            BaseRef("r")
            .product(BaseRef("t"))
            .select("X = A and Y = B")
            .project(["A", "B"])
        )
        from repro.algebra.relation import Relation

        nf = to_normal_form(expr, catalog)
        instances = {
            "r": Relation.from_rows(catalog["r"], [(1, 2), (1, 3), (4, 2)]),
            "t": Relation.from_rows(catalog["t"], [(1, 2), (4, 3)]),
        }
        got = evaluate_normal_form(nf, instances)
        want = evaluate(expr, instances)
        assert got == want
        assert got.counts() == {(1, 2): 1}

    def test_same_operand_attribute_linked_twice(self, catalog):
        """X must equal A *and* B: only rows with A = B can match."""
        expr = (
            BaseRef("r")
            .product(BaseRef("t"))
            .select("X = A and X = B")
            .project(["A", "X"])
        )
        nf = to_normal_form(expr, catalog)
        from repro.algebra.relation import Relation

        instances = {
            "r": Relation.from_rows(catalog["r"], [(1, 1), (1, 2), (5, 5)]),
            "t": Relation.from_rows(catalog["t"], [(1, 9), (5, 9), (2, 9)]),
        }
        got = evaluate_normal_form(nf, instances)
        want = evaluate(expr, instances)
        assert got == want
        assert set(got.value_tuples()) == {(1, 1), (5, 5)}

    def test_maintained_multi_link_view(self, catalog):
        db = Database()
        db.create_relation("r", ["A", "B"], [(1, 2), (4, 2)])
        db.create_relation("t", ["X", "Y"], [(1, 2)])
        m = ViewMaintainer(db, auto_verify=True)
        m.define_view(
            "v",
            BaseRef("r").product(BaseRef("t")).select("X = A and Y = B"),
        )
        with db.transact() as txn:
            txn.insert("t", (4, 2))
            txn.insert("r", (9, 9))
        # auto_verify asserts correctness; spot-check the new match.
        assert (4, 2, 4, 2) in m.view("v").contents

    def test_offset_links_in_both_directions(self, catalog):
        """x = y + c links honoured regardless of which side is bound."""
        from repro.algebra.relation import Relation

        for text in ("X = A + 2", "A = X + 2"):
            expr = (
                BaseRef("r")
                .product(BaseRef("t"))
                .select(text)
                .project(["A", "X"])
            )
            nf = to_normal_form(expr, catalog)
            instances = {
                "r": Relation.from_rows(catalog["r"], [(1, 0), (3, 0)]),
                "t": Relation.from_rows(catalog["t"], [(3, 0), (5, 0)]),
            }
            assert evaluate_normal_form(nf, instances) == evaluate(
                expr, instances
            ), text
