"""Declared keys and the chase: enforcement, derived view keys, and
counter-free maintenance parity.

Three layers under test, mirroring the subsystem's shape:

* the engine's :class:`~repro.engine.keys.KeyCatalog` and the commit
  pipeline's net-effect enforcement (`KeyViolationError`),
* the chase (:mod:`repro.analysis.dependencies`): attribute closure,
  derived view keys, FK-join reduction, key-determined rows,
* the load-bearing consumers: analyzer findings, the ``fk_join``
  self-maintainability class, and the counter-free apply kernels —
  verified byte-for-byte against the counted path across all five
  execution paths (immediate, deferred, WAL-replay recovery, follower,
  server) plus a base-free FK-join follower against a full-base oracle.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.expressions import BaseRef
from repro.analysis import (
    F_COUNTER_FREE,
    F_DUPLICATE_SENSITIVE,
    F_VIEW_KEY,
    Severity,
    analyze_definition,
    close,
    dependencies_for,
    derive_view_key,
    determined_row,
    fk_reduction,
    key_determines_row,
)
from repro.analysis.dependencies import shared_equality_atoms
from repro.core.maintainer import MaintenancePolicy, ViewMaintainer
from repro.engine.database import Database
from repro.errors import ConstraintError, KeyViolationError
from repro.replication.durability import DurabilityManager
from repro.replication.follower import Follower
from repro.replication.recovery import Recovery
from repro.scheduler.selfmaint import KIND_FK_JOIN, KIND_JOIN
from tests.strategies import SPJ_TABLES, update_streams


# ----------------------------------------------------------------------
# Shared schema: p(B, C) with key (B); r(A, B) with FK r(B) → p(B).
# ``r join p`` is a natural join on B — the canonical FK-join view.
# ----------------------------------------------------------------------
def keyed_database() -> Database:
    db = Database()
    db.create_relation("p", ["B", "C"], [(b, b * 10) for b in range(4)])
    db.create_relation("r", ["A", "B"], [(1, 0), (2, 1), (3, 1)])
    db.declare_key("p", ["B"])
    db.declare_foreign_key("r", ["B"], "p", ["B"])
    return db


def fk_join_view():
    """FK-reducible: condition and projection mention only r's
    attributes plus p's referenced key, so the probe lookup erases."""
    return BaseRef("r").join(BaseRef("p")).project(["A", "B"])


def keyed_join_view():
    """Projects the probe's payload C: a view key still derives (p's
    key grounds C), but the FK reduction is off the table."""
    return BaseRef("r").join(BaseRef("p"))


#: A scripted, legal op sequence over the keyed schema: child inserts
#: and deletes, a parent insert, and a delete of an unreferenced parent.
LEGAL_OPS = [
    [("ins", "r", (4, 2)), ("ins", "r", (5, 3))],
    [("del", "r", (1, 0))],
    [("ins", "p", (4, 40)), ("ins", "r", (6, 4))],
    [("del", "r", (2, 1)), ("ins", "r", (7, 0))],
    [("del", "r", (5, 3)), ("del", "p", (3, 30))],
    [("ins", "r", (8, 4)), ("del", "r", (3, 1))],
]


def apply_ops(db: Database, transactions=LEGAL_OPS) -> None:
    for ops in transactions:
        with db.transact() as txn:
            for op, name, row in ops:
                (txn.insert if op == "ins" else txn.delete)(name, row)


# ----------------------------------------------------------------------
# Catalog and commit-pipeline enforcement
# ----------------------------------------------------------------------
class TestKeyEnforcement:
    def test_declare_over_colliding_rows_is_rejected(self):
        db = Database()
        db.create_relation("p", ["B", "C"], [(1, 2), (1, 3)])
        with pytest.raises(ConstraintError, match="existing rows collide"):
            db.declare_key("p", ["B"])

    def test_foreign_key_requires_a_declared_referenced_key(self):
        db = Database()
        db.create_relation("p", ["B", "C"], [])
        db.create_relation("r", ["A", "B"], [])
        with pytest.raises(ConstraintError, match="declare the key first"):
            db.declare_foreign_key("r", ["B"], "p", ["B"])

    def test_foreign_key_over_dangling_rows_is_rejected(self):
        db = Database()
        db.create_relation("p", ["B", "C"], [(0, 0)])
        db.create_relation("r", ["A", "B"], [(1, 7)])
        db.declare_key("p", ["B"])
        with pytest.raises(ConstraintError, match="existing rows dangle"):
            db.declare_foreign_key("r", ["B"], "p", ["B"])

    def test_key_collision_aborts_the_transaction(self):
        db = keyed_database()
        before = db.relation("p").counts()
        with pytest.raises(KeyViolationError, match=r"key \(B\) on 'p'"):
            with db.transact() as txn:
                txn.insert("p", (0, 99))  # collides with stored (0, 0)
        assert db.relation("p").counts() == before

    def test_same_transaction_replacement_commits(self):
        # Net effect is what's checked: delete + insert of the same key
        # value inside one transaction never shows a collision.
        db = keyed_database()
        with db.transact() as txn:
            txn.delete("p", (0, 0))
            txn.insert("p", (0, 5))
        assert (0, 5) in db.relation("p")

    def test_dangling_insert_aborts(self):
        db = keyed_database()
        with pytest.raises(KeyViolationError, match="foreign key"):
            with db.transact() as txn:
                txn.insert("r", (9, 77))  # no p row with B = 77

    def test_deleting_a_referenced_parent_aborts(self):
        db = keyed_database()
        with pytest.raises(KeyViolationError, match="foreign key"):
            with db.transact() as txn:
                txn.delete("p", (0, 0))  # r holds (1, 0)

    def test_parent_and_children_may_leave_together(self):
        db = keyed_database()
        with db.transact() as txn:
            txn.delete("r", (1, 0))
            txn.delete("p", (0, 0))
        assert (0, 0) not in db.relation("p")

    def test_net_effect_violation_is_the_prepare_seam(self):
        # The 2PC prepare path asks the same question commit enforces,
        # without a transaction object: pending net deltas in, the
        # commit pipeline's own message (or None) out.
        db = keyed_database()
        txn = db.begin()
        txn.insert("p", (0, 99))
        violation = db.net_effect_violation(txn.net_deltas())
        assert violation is not None and "key (B) on 'p'" in violation

        clean = db.begin()
        clean.insert("p", (8, 80))
        assert db.net_effect_violation(clean.net_deltas()) is None

    def test_drop_key_requires_dropping_referencing_fk_first(self):
        db = keyed_database()
        with pytest.raises(ConstraintError, match="drop the foreign key first"):
            db.drop_key("p", ["B"])
        with pytest.raises(ConstraintError, match="drop the foreign key first"):
            db.drop_key("p")
        assert db.drop_foreign_key("r", "p") is True
        assert db.drop_key("p", ["B"]) is True
        # Enforcement is gone with the declarations.
        with db.transact() as txn:
            txn.insert("p", (0, 99))
        assert (0, 99) in db.relation("p")


# ----------------------------------------------------------------------
# The chase: closures, derived view keys, FK reduction
# ----------------------------------------------------------------------
class TestChase:
    def normal_form(self, db, expression):
        maintainer = ViewMaintainer(db)
        return maintainer.define_view("v", expression).definition.normal_form

    def test_shared_equality_atoms_survive_every_disjunct(self):
        db = Database()
        db.create_relation("r", ["A", "B"], [])
        nf = self.normal_form(
            db, BaseRef("r").select("(A = B and A > 0) or (A = B and B < 9)")
        )
        atoms = shared_equality_atoms(nf.condition)
        assert len(atoms) == 1 and atoms[0].op == "="

    def test_dependencies_include_keys_and_equalities(self):
        db = keyed_database()
        nf = self.normal_form(db, fk_join_view())
        deps = dependencies_for(nf, db.keys)
        reasons = [d.reason for d in deps]
        assert any("declared key (B) of p" in reason for reason in reasons)
        assert any(reason.startswith("equality") for reason in reasons)

    def test_closure_carries_a_proof_chain(self):
        db = keyed_database()
        nf = self.normal_form(db, fk_join_view())
        deps = dependencies_for(nf, db.keys)
        # The projected attributes reach the whole flattened product:
        # the join equality crosses to p, then p's key grounds its row.
        projected = sorted({q for _, q in nf.projection})
        closure, proof = close(projected, deps)
        assert closure.issuperset(nf.qualified_schema.names)
        assert proof, "productive FD applications must be recorded"

    def test_derived_view_key_is_minimal_and_deterministic(self):
        db = keyed_database()
        nf = self.normal_form(db, keyed_join_view())
        first = derive_view_key(nf, db.keys)
        second = derive_view_key(nf, db.keys)
        assert first is not None
        # C is functionally dependent on B (key of p) and is dropped by
        # greedy minimization; A and B are both essential.
        assert first.view_attributes == ("A", "B")
        assert first.proof == second.proof
        assert first.view_attributes == second.view_attributes

    def test_declared_key_is_what_recovers_the_projected_away_column(self):
        # π_{A,B}(r ⋈ p) hides p.C.  Without p's key the closure of the
        # projection stops at p.B; the declared key carries it to p.C.
        db = Database()
        db.create_relation("p", ["B", "C"], [])
        db.create_relation("r", ["A", "B"], [])
        nf = self.normal_form(db, fk_join_view())
        assert derive_view_key(nf, db.keys) is None
        db.declare_key("p", ["B"])
        key = derive_view_key(nf, db.keys)
        assert key is not None and key.view_attributes == ("A", "B")

    def test_projecting_away_an_essential_attribute_loses_the_key(self):
        db = keyed_database()
        nf = self.normal_form(db, keyed_join_view().project(["B", "C"]))
        # r.A is projected away and nothing determines it.
        assert derive_view_key(nf, db.keys) is None

    def test_equality_atoms_alone_can_derive_a_key(self):
        # No declared keys needed: σ_{A=B}(r) projected to A covers the
        # whole (single-occurrence) product through the equality FD.
        db = Database()
        db.create_relation("r", ["A", "B"], [])
        nf = self.normal_form(db, BaseRef("r").select("A = B").project(["A"]))
        key = derive_view_key(nf, db.keys)
        assert key is not None and key.view_attributes == ("A",)

    def test_fk_reduction_accepts_the_canonical_join(self):
        db = keyed_database()
        nf = self.normal_form(db, fk_join_view())
        reduction = fk_reduction(nf, db.keys)
        assert reduction is not None
        assert reduction.delta_relation == "r"
        assert tuple(reduction.probe_relations) == ("p",)
        # Projecting the probe's payload C breaks premise 3.
        exposed = self.normal_form(keyed_database(), keyed_join_view())
        assert fk_reduction(exposed, db.keys) is None

    def test_fk_reduction_needs_the_foreign_key(self):
        db = keyed_database()
        db.drop_foreign_key("r", "p")
        nf = self.normal_form(db, fk_join_view())
        assert fk_reduction(nf, db.keys) is None

    def test_key_determined_rows_round_trip(self):
        db = Database()
        db.create_relation("p", ["B", "C"], [])
        db.declare_constraint("p", "C = B + 1")
        schema = db.relation("p").schema
        constraint = db.constraints.get("p")
        assert key_determines_row(schema, ("B",), constraint)
        assert determined_row(schema, ("B",), (4,), constraint) == (4, 5)
        assert not key_determines_row(schema, ("B",), None)


# ----------------------------------------------------------------------
# Analyzer findings and self-maintainability
# ----------------------------------------------------------------------
class TestKeyFindings:
    def codes(self, findings):
        return [f.code for f in findings]

    def test_view_key_and_counter_free_fire_with_proof(self):
        db = keyed_database()
        maintainer = ViewMaintainer(db)
        view = maintainer.define_view("v", fk_join_view())
        findings = analyze_definition(view.definition, keys=db.keys)
        by_code = {f.code: f for f in findings}
        assert F_VIEW_KEY in by_code and F_COUNTER_FREE in by_code
        assert by_code[F_VIEW_KEY].severity is Severity.INFO
        assert "declared key (B) of p" in by_code[F_VIEW_KEY].message
        assert "multiplicity 1" in by_code[F_COUNTER_FREE].message

    def test_duplicate_sensitive_warns_on_keyless_self_maintainable(self):
        db = Database()
        db.create_relation("r", ["A", "B"], [])
        maintainer = ViewMaintainer(db)
        view = maintainer.define_view("v", BaseRef("r").select("A > 0"))
        findings = analyze_definition(view.definition, keys=db.keys)
        warned = [f for f in findings if f.code == F_DUPLICATE_SENSITIVE]
        assert len(warned) == 1
        assert warned[0].severity is Severity.WARN
        assert warned[0].subject == "r"
        # Declaring the key retires the warning.
        db.declare_key("r", ["A"])
        findings = analyze_definition(view.definition, keys=db.keys)
        assert F_DUPLICATE_SENSITIVE not in self.codes(findings)

    def test_analyze_report_is_byte_identical_across_runs(self):
        db = keyed_database()
        maintainer = ViewMaintainer(db)
        maintainer.define_view("v", fk_join_view())
        maintainer.define_view("w", BaseRef("r").select("A = B").project(["A"]))
        first = maintainer.analyze().format()
        second = maintainer.analyze().format()
        assert first == second

    def test_fk_join_class_requires_the_declarations(self):
        db = keyed_database()
        maintainer = ViewMaintainer(db)
        maintainer.define_view("v", fk_join_view())
        verdict = maintainer.self_maintainability("v")
        assert verdict.self_maintainable
        assert verdict.kind == KIND_FK_JOIN
        assert "executes the reduced single-occurrence" in verdict.reason

        bare = Database()
        bare.create_relation("p", ["B", "C"], [])
        bare.create_relation("r", ["A", "B"], [])
        other = ViewMaintainer(bare)
        other.define_view("v", fk_join_view())
        verdict = other.self_maintainability("v")
        assert not verdict.self_maintainable
        assert verdict.kind == KIND_JOIN


# ----------------------------------------------------------------------
# Plan cache integration: key DDL stales dependency proofs
# ----------------------------------------------------------------------
class TestKeyDdlInvalidation:
    def test_declaring_keys_recompiles_to_a_counter_free_plan(self):
        db = Database()
        db.create_relation("p", ["B", "C"], [(0, 0)])
        db.create_relation("r", ["A", "B"], [(1, 0)])
        maintainer = ViewMaintainer(db)
        maintainer.define_view("v", fk_join_view())
        plan = maintainer.compiled_plan("v")
        assert plan is not None and not plan.counter_free
        assert plan.view_key is None

        db.declare_key("p", ["B"])
        db.declare_foreign_key("r", ["B"], "p", ["B"])
        with db.transact() as txn:
            txn.insert("r", (2, 0))
        plan = maintainer.compiled_plan("v")
        assert plan is not None and plan.counter_free
        assert plan.view_key is not None
        assert plan.reduction is not None

    def test_dropping_the_key_retires_the_proofs(self):
        db = keyed_database()
        maintainer = ViewMaintainer(db)
        maintainer.define_view("v", fk_join_view())
        assert maintainer.compiled_plan("v").counter_free
        db.drop_foreign_key("r", "p")
        db.drop_key("p")
        with db.transact() as txn:
            txn.insert("r", (9, 1))
        plan = maintainer.compiled_plan("v")
        assert plan is not None and not plan.counter_free
        assert maintainer.view("v").contents.counts() == {
            row: 1
            for row in maintainer.view("v").contents.counts()
        }

    def test_explain_prints_the_chase_proofs(self):
        db = keyed_database()
        maintainer = ViewMaintainer(db)
        maintainer.define_view("v", fk_join_view())
        text = maintainer.explain("v", ["r", "p"])
        assert "derived view key" in text
        assert "counter-free" in text


# ----------------------------------------------------------------------
# Counter-free parity: five execution paths, byte-for-byte
# ----------------------------------------------------------------------
def final_counts(use_counter_free: bool):
    db = keyed_database()
    maintainer = ViewMaintainer(db, use_counter_free=use_counter_free)
    maintainer.define_view("v", fk_join_view())
    plan = maintainer.compiled_plan("v")
    assert plan.counter_free is use_counter_free
    apply_ops(db)
    return maintainer.view("v").contents.counts()


class TestCounterFreeParity:
    def test_immediate_commit_path(self):
        counted = final_counts(use_counter_free=False)
        assert counted  # non-vacuous
        assert final_counts(use_counter_free=True) == counted

    def test_deferred_refresh_path(self):
        results = []
        for flag in (True, False):
            db = keyed_database()
            maintainer = ViewMaintainer(db, use_counter_free=flag)
            maintainer.define_view(
                "v", fk_join_view(), policy=MaintenancePolicy.DEFERRED
            )
            apply_ops(db, LEGAL_OPS[:3])
            maintainer.refresh("v")
            apply_ops(db, LEGAL_OPS[3:])
            maintainer.refresh("v")
            results.append(maintainer.view("v").contents.counts())
        assert results[0] == results[1] and results[0]

    def test_wal_replay_recovery_path(self, tmp_path):
        directory = str(tmp_path / "wal")
        db = keyed_database()
        leader = ViewMaintainer(db)
        leader.define_view("v", fk_join_view())
        durability = DurabilityManager(db, directory, sync="never")
        durability.checkpoint(leader)
        apply_ops(db)
        durability.close()

        results = []
        for flag in (True, False):
            recovery = Recovery(directory)
            recovery.database.declare_key("p", ["B"])
            recovery.database.declare_foreign_key("r", ["B"], "p", ["B"])
            maintainer = ViewMaintainer(
                recovery.database, use_counter_free=flag
            )
            recovery.restore_view(maintainer, "v", fk_join_view())
            recovery.replay()
            results.append(maintainer.view("v").contents.counts())
        assert results[0] == results[1]
        assert results[0] == leader.view("v").contents.counts()

    def test_follower_path(self, tmp_path):
        directory = str(tmp_path / "wal")
        db = keyed_database()
        leader = ViewMaintainer(db)
        durability = DurabilityManager(db, directory, sync="never")
        durability.checkpoint(leader)

        followers = []
        for flag in (True, False):
            follower = Follower(directory, use_counter_free=flag)
            follower.declare_key("p", ["B"])
            follower.declare_foreign_key("r", ["B"], "p", ["B"])
            follower.define_view("v", fk_join_view())
            followers.append(follower)
        assert followers[0].maintainer.compiled_plan("v").counter_free
        assert not followers[1].maintainer.compiled_plan("v").counter_free

        apply_ops(db)
        durability.close()
        counts = []
        for follower in followers:
            follower.poll()
            counts.append(follower.view("v").contents.counts())
        assert counts[0] == counts[1] and counts[0]

    def test_server_path(self):
        from repro.server import ServerConfig, ViewServer

        results = []
        for flag in (True, False):
            db = keyed_database()
            maintainer = ViewMaintainer(db, use_counter_free=flag)
            maintainer.define_view("v", fk_join_view())
            server = ViewServer(db, maintainer, ServerConfig())
            for ops in LEGAL_OPS:
                request = {"insert": {}, "delete": {}}
                for op, name, row in ops:
                    bucket = "insert" if op == "ins" else "delete"
                    request[bucket].setdefault(name, []).append(list(row))
                server._op_txn(None, request)
            results.append(maintainer.view("v").contents.counts())
        assert results[0] == results[1] and results[0]


# ----------------------------------------------------------------------
# Acceptance: an FK-join view hosted base-free, deletes included,
# against a full-base follower oracle
# ----------------------------------------------------------------------
class TestBaseFreeFkJoin:
    def test_base_free_follower_matches_full_base_oracle(self, tmp_path):
        directory = str(tmp_path / "wal")
        db = keyed_database()
        leader = ViewMaintainer(db)
        durability = DurabilityManager(db, directory, sync="never")
        durability.checkpoint(leader)

        full = Follower(directory)
        bare = Follower(directory, base_free=True)
        for follower in (full, bare):
            follower.declare_key("p", ["B"])
            follower.declare_foreign_key("r", ["B"], "p", ["B"])
            follower.define_view("v", fk_join_view())
        verdict = bare.maintainer.self_maintainability("v")
        assert verdict.self_maintainable and verdict.kind == KIND_FK_JOIN

        apply_ops(db)  # includes local deletes on r and p
        durability.close()
        full.poll()
        bare.poll()

        assert bare.base_dropped and bare.base_rows_dropped > 0
        for name in bare.database.relation_names():
            assert not list(bare.database.relation(name).value_tuples())
        counts = bare.view("v").contents.counts()
        assert counts == full.view("v").contents.counts()
        assert counts, "the oracle comparison must be non-vacuous"


# ----------------------------------------------------------------------
# Property: derived view keys are sound over random legal streams
# ----------------------------------------------------------------------
#: View shapes over the SPJ schema whose keys derive from equality
#: atoms alone, a declared key, or both.
PROPERTY_VIEWS = [
    ("v_eq", BaseRef("r").select("A = B").project(["A"])),
    ("v_join", BaseRef("r").join(BaseRef("s")).select("B = C").project(["A", "B", "D"])),
    ("v_keyed", BaseRef("r").join(BaseRef("s")).select("B = C").project(["A", "B"])),
]


@settings(max_examples=40, deadline=None)
@given(data=update_streams(), use_codegen=st.booleans())
def test_derived_view_keys_are_sound(data, use_codegen):
    """No two materialized rows ever agree on a derived view key, and
    every row's multiplicity is exactly one — across random legal
    update streams, on both the codegen and interpreter paths.

    The stream strategy is key-oblivious; enforcement itself keeps the
    replayed stream legal (violating transactions abort and are
    skipped), which is exactly the premise the chase's conclusions rest
    on.
    """
    initial, transactions = data
    db = Database()
    for name, attrs in sorted(SPJ_TABLES.items()):
        rows = initial[name]
        if name == "s":  # one row per C value so the key declares
            seen, kept = set(), []
            for row in rows:
                if row[0] not in seen:
                    seen.add(row[0])
                    kept.append(row)
            rows = kept
        db.create_relation(name, list(attrs), rows)
    db.declare_key("s", ["C"])
    maintainer = ViewMaintainer(db, use_codegen=use_codegen)
    views = {}
    for name, expression in PROPERTY_VIEWS:
        views[name] = maintainer.define_view(name, expression)
        assert maintainer.compiled_plan(name).view_key is not None

    def check_soundness():
        for name, view in views.items():
            view_key = maintainer.compiled_plan(name).view_key
            schema = view.contents.schema
            positions = tuple(
                schema.index(a) for a in view_key.view_attributes
            )
            seen_keys = set()
            for row, count in view.contents.counts().items():
                assert count == 1, (name, row, count)
                key_values = tuple(row[i] for i in positions)
                assert key_values not in seen_keys, (name, key_values)
                seen_keys.add(key_values)

    check_soundness()
    for ops in transactions:
        txn = db.begin()
        for op, name, row in ops:
            (txn.insert if op == "ins" else txn.delete)(name, row)
        try:
            txn.commit()
        except KeyViolationError:
            continue
        check_soundness()
