"""Tests for compiled maintenance plans and the plan cache.

Covers eager compilation at registration, hit/miss accounting across
commits, DDL-driven invalidation (index create/drop, relation drop,
view re-registration under the same name), the stale-index-binding
regression, the cache-disabled ablation, byte-for-byte agreement of
live commits vs. WAL replay vs. a changefeed follower executing the
same plans, and a property test that plan reuse never changes view
contents compared to fresh-plan runs.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BaseRef,
    Database,
    DurabilityManager,
    Follower,
    MaintenancePolicy,
    ViewMaintainer,
    check_view_consistency,
    recover,
)
from tests.strategies import SPJ_TABLES, spj_database_rows, spj_expressions
from repro.core.compiled import CompiledViewPlan
from repro.core.plancache import PlanCache
from repro.instrumentation import CostRecorder, recording

VIEW_EXPR = (
    BaseRef("r")
    .join(BaseRef("s"))
    .select("A < 10 and B = C")
    .project(["A", "D"])
)


@pytest.fixture
def db():
    database = Database()
    database.create_relation("r", ["A", "B"], [(1, 2), (5, 10)])
    database.create_relation("s", ["C", "D"], [(2, 20), (10, 30)])
    return database


@pytest.fixture
def maintainer(db):
    m = ViewMaintainer(db)
    m.define_view("v", VIEW_EXPR)
    return m


class TestPlanCacheUnit:
    def test_get_miss_then_put_then_hit(self, db, maintainer):
        cache = PlanCache()
        plan = maintainer.compiled_plan("v")
        assert cache.get("w") is None
        cache.put("w", plan)
        assert cache.get("w") is plan
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_fingerprint_mismatch_counts_as_miss(self, db, maintainer):
        cache = PlanCache()
        plan = maintainer.compiled_plan("v")
        cache.put("w", plan)
        assert cache.get("w", fingerprint=("something", "else")) is None
        assert cache.stats.misses == 1
        assert "w" not in cache

    def test_invalidate_counts_only_real_evictions(self, db, maintainer):
        cache = PlanCache()
        assert not cache.invalidate("w")
        assert cache.stats.invalidations == 0
        cache.put("w", maintainer.compiled_plan("v"))
        assert cache.invalidate("w")
        assert cache.stats.invalidations == 1

    def test_invalidate_all(self, db, maintainer):
        cache = PlanCache()
        plan = maintainer.compiled_plan("v")
        cache.put("a", plan)
        cache.put("b", plan)
        assert cache.invalidate_all() == 2
        assert cache.stats.invalidations == 2
        assert len(cache) == 0

    def test_charges_flow_to_recorder(self, db, maintainer):
        cache = PlanCache()
        recorder = CostRecorder()
        with recording(recorder):
            cache.get("w")
            cache.put("w", maintainer.compiled_plan("v"))
            cache.get("w")
            cache.invalidate("w")
        assert recorder.get("plan_cache_misses") == 1
        assert recorder.get("plan_cache_hits") == 1
        assert recorder.get("plan_cache_invalidations") == 1


class TestEagerCompilation:
    def test_plan_exists_right_after_registration(self, db, maintainer):
        plan = maintainer.compiled_plan("v")
        assert isinstance(plan, CompiledViewPlan)
        assert set(plan.screens()) == {"r", "s"}

    def test_commits_hit_the_registration_plan(self, db, maintainer):
        plan = maintainer.compiled_plan("v")
        db.apply(inserts={"r": [(3, 2)]})
        db.apply(inserts={"s": [(2, 40)]})
        assert maintainer.compiled_plan("v") is plan
        stats = maintainer.stats("v")
        assert stats.plan_cache_hits == 2
        assert stats.plan_cache_misses == 0

    def test_planner_shape_reused_across_transactions(self, db, maintainer):
        plan = maintainer.compiled_plan("v")
        db.apply(inserts={"r": [(3, 2)]})
        planner = plan.planner_for([0])
        db.apply(inserts={"r": [(4, 2)]})
        assert plan.planner_for([0]) is planner

    def test_maintained_contents_stay_correct(self, db, maintainer):
        db.apply(inserts={"r": [(3, 2)], "s": [(2, 40)]})
        db.apply(deletes={"r": [(1, 2)]})
        check_view_consistency(maintainer.view("v"), db.instances())


class TestInvalidation:
    def test_create_index_invalidates_dependent_plans(self, db, maintainer):
        plan = maintainer.compiled_plan("v")
        db.create_index("s", ["C"])
        assert maintainer.compiled_plan("v") is None
        assert maintainer.plan_cache_stats()["plan_cache_invalidations"] == 1
        db.apply(inserts={"r": [(3, 2)]})
        fresh = maintainer.compiled_plan("v")
        assert fresh is not None and fresh is not plan
        assert maintainer.stats("v").plan_cache_misses == 1
        check_view_consistency(maintainer.view("v"), db.instances())

    def test_unrelated_relation_ddl_leaves_plan_cached(self, db, maintainer):
        plan = maintainer.compiled_plan("v")
        db.create_relation("u", ["X"], [(1,)])
        db.create_index("u", ["X"])
        db.drop_relation("u")
        assert maintainer.compiled_plan("v") is plan

    def test_lazy_index_creation_does_not_self_invalidate(self, db, maintainer):
        db.apply(inserts={"r": [(3, 2)]})
        plan = maintainer.compiled_plan("v")
        # The commit lazily created the probe index on s(C) — that must
        # not have evicted the very plan that created it.
        assert db.indexes.lookup("s", ("C",)) is not None
        assert plan is not None
        assert maintainer.plan_cache_stats()["plan_cache_invalidations"] == 0

    def test_drop_relation_invalidates(self, db, maintainer):
        # Dropping an operand relation leaves the view unusable, but the
        # plan must be gone immediately, not on next use.
        db.drop_relation("s")
        assert maintainer.compiled_plan("v") is None

    def test_drop_view_invalidates(self, db, maintainer):
        maintainer.drop_view("v")
        assert "v" not in maintainer._plan_cache
        assert maintainer.plan_cache_stats()["plan_cache_invalidations"] == 1

    def test_reregistration_under_same_name_gets_new_plan(self, db, maintainer):
        old_plan = maintainer.compiled_plan("v")
        maintainer.drop_view("v")
        maintainer.define_view(
            "v", BaseRef("r").select("A >= 5").project(["B"])
        )
        new_plan = maintainer.compiled_plan("v")
        assert new_plan is not None and new_plan is not old_plan
        assert new_plan.fingerprint != old_plan.fingerprint
        db.apply(inserts={"r": [(9, 77)]})
        assert (77,) in maintainer.view("v").contents
        check_view_consistency(maintainer.view("v"), db.instances())

    def test_detached_maintainer_stops_observing_ddl(self, db, maintainer):
        plan = maintainer.compiled_plan("v")
        maintainer.detach()
        db.create_index("s", ["C"])
        assert maintainer.compiled_plan("v") is plan


class TestStaleIndexBindings:
    def test_index_dropped_between_commits_forces_replan(self, db, maintainer):
        # First commit: the plan lazily creates and binds s(C).
        db.apply(inserts={"r": [(3, 2)]})
        plan = maintainer.compiled_plan("v")
        assert plan.index_bindings(), "expected a bound probe index"
        # Drop the index out from under the cached plan.  The dropped
        # HashIndex object stops being maintained, so probing it after
        # further commits would silently miss rows.
        assert db.drop_index("s", ("C",))
        assert maintainer.compiled_plan("v") is None
        # Grow s (the dead index never sees this row), then touch r: a
        # correct maintainer must re-plan rather than probe the corpse.
        db.apply(inserts={"s": [(2, 99)]})
        db.apply(inserts={"r": [(4, 2)]})
        replanned = maintainer.compiled_plan("v")
        assert replanned is not None and replanned is not plan
        assert (4, 99) in maintainer.view("v").contents
        check_view_consistency(maintainer.view("v"), db.instances())

    def test_stale_binding_would_have_missed_rows(self, db, maintainer):
        # Demonstrate the hazard the invalidation prevents: the dropped
        # index object genuinely does not contain later insertions.
        db.apply(inserts={"r": [(3, 2)]})
        dead = db.indexes.lookup("s", ("C",))
        assert dead is not None
        db.drop_index("s", ("C",))
        db.apply(inserts={"s": [(2, 99)]})
        assert not dead.probe((2,)) & {(2, 99)}  # the corpse is stale
        live = db.indexes.lookup("s", ("C",))
        assert live is None or (2, 99) in live.probe((2,))


class TestAblation:
    def test_cache_disabled_compiles_every_call(self, db):
        m = ViewMaintainer(db, use_plan_cache=False)
        m.define_view("v", VIEW_EXPR)
        assert m.compiled_plan("v") is None  # nothing is ever cached
        db.apply(inserts={"r": [(3, 2)]})
        db.apply(inserts={"r": [(4, 2)]})
        stats = m.stats("v")
        assert stats.plan_cache_misses == 2
        assert stats.plan_cache_hits == 0
        check_view_consistency(m.view("v"), db.instances())

    def test_cached_and_uncached_agree(self):
        def run(use_plan_cache):
            database = Database()
            database.create_relation("r", ["A", "B"], [(1, 2), (5, 10)])
            database.create_relation("s", ["C", "D"], [(2, 20), (10, 30)])
            m = ViewMaintainer(database, use_plan_cache=use_plan_cache)
            m.define_view("v", VIEW_EXPR)
            rng = random.Random(7)
            for _ in range(30):
                with database.transact() as txn:
                    txn.insert("r", (rng.randrange(12), rng.randrange(12)))
                    if rng.random() < 0.5:
                        txn.insert("s", (rng.randrange(12), rng.randrange(40)))
            return m.view("v").contents

        assert run(True) == run(False)


class TestReplicationAgreement:
    def _make_leader(self, directory):
        database = Database()
        database.create_relation("r", ["A", "B"], [(1, 2), (5, 10)])
        database.create_relation("s", ["C", "D"], [(2, 20), (10, 30)])
        durability = DurabilityManager(database, directory)
        m = ViewMaintainer(database)
        m.define_view("v", VIEW_EXPR)
        m.define_view(
            "d",
            BaseRef("r").select("A >= 5").project(["B"]),
            policy=MaintenancePolicy.DEFERRED,
        )
        durability.checkpoint(m)
        return database, durability, m

    def test_live_replay_and_follower_agree_byte_for_byte(self, tmp_path):
        directory = str(tmp_path)
        database, durability, leader = self._make_leader(directory)
        follower = Follower(directory)
        follower.define_view("v", VIEW_EXPR)
        rng = random.Random(3)
        for _ in range(25):
            with database.transact() as txn:
                txn.insert("r", (rng.randrange(12), rng.randrange(12)))
                if rng.random() < 0.4:
                    txn.insert("s", (rng.randrange(12), rng.randrange(40)))
        leader.refresh("d")
        durability.close()

        recovery, recovered = recover(
            directory,
            setup=lambda rec, m: (
                rec.restore_view(m, "v", VIEW_EXPR),
                rec.restore_view(
                    m, "d", BaseRef("r").select("A >= 5").project(["B"])
                ),
            ),
        )
        recovered.refresh("d")
        follower.poll()

        live = dict(leader.view("v").contents.items())
        replayed = dict(recovered.view("v").contents.items())
        followed = dict(follower.maintainer.view("v").contents.items())
        assert live == replayed == followed
        assert dict(leader.view("d").contents.items()) == dict(
            recovered.view("d").contents.items()
        )
        # All three executed cached compiled plans, not one-off ones.
        assert leader.plan_cache_stats()["plan_cache_hits"] > 0
        assert recovered.plan_cache_stats()["plan_cache_hits"] > 0
        assert follower.maintainer.plan_cache_stats()["plan_cache_hits"] > 0


@st.composite
def transaction_batches(draw):
    """A short workload of random single/multi-relation transactions."""
    n = draw(st.integers(min_value=1, max_value=8))
    batches = []
    for _ in range(n):
        r_rows = draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=8),
                    st.integers(min_value=0, max_value=8),
                ),
                max_size=3,
            )
        )
        s_rows = draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=8),
                    st.integers(min_value=0, max_value=30),
                ),
                max_size=3,
            )
        )
        batches.append((r_rows, s_rows))
    return batches


class TestPlanReuseProperty:
    @settings(max_examples=40, deadline=None)
    @given(batches=transaction_batches())
    def test_plan_reuse_never_changes_view_contents(self, batches):
        def run(use_plan_cache):
            database = Database()
            database.create_relation("r", ["A", "B"])
            database.create_relation("s", ["C", "D"])
            m = ViewMaintainer(database, use_plan_cache=use_plan_cache)
            m.define_view("v", VIEW_EXPR)
            for r_rows, s_rows in batches:
                with database.transact() as txn:
                    for row in r_rows:
                        txn.insert("r", row)
                    for row in s_rows:
                        txn.insert("s", row)
            return database, m

        cached_db, cached = run(True)
        fresh_db, fresh = run(False)
        assert cached.view("v").contents == fresh.view("v").contents
        check_view_consistency(cached.view("v"), cached_db.instances())


class TestRandomSpjViewAgreement:
    """Cached plans vs fresh compilation on the simulator's view class.

    The view population is exactly the one the deterministic simulation
    harness runs (tests/strategies.spj_expressions delegates to
    repro.simulation.workload.random_spj_expression), so any plan-cache
    divergence found here has a replayable simulator counterpart.
    """

    @settings(max_examples=30, deadline=None)
    @given(
        expression=spj_expressions(),
        workload_seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_cached_plans_agree_with_fresh_compilation(
        self, expression, workload_seed
    ):
        def run(use_plan_cache):
            rng = random.Random(workload_seed)
            database = Database()
            for name, rows in spj_database_rows(random.Random(workload_seed)).items():
                database.create_relation(name, SPJ_TABLES[name], rows)
            maintainer = ViewMaintainer(database, use_plan_cache=use_plan_cache)
            maintainer.define_view("v", expression)
            for _ in range(6):
                with database.transact() as txn:
                    for _ in range(rng.randint(1, 3)):
                        name = rng.choice(sorted(SPJ_TABLES))
                        row = tuple(
                            rng.randint(0, 6) for _ in SPJ_TABLES[name]
                        )
                        if rng.random() < 0.6:
                            txn.insert(name, row)
                        else:
                            txn.delete(name, row)
            return database, maintainer

        cached_db, cached = run(True)
        fresh_db, fresh = run(False)
        assert dict(cached.view("v").contents.items()) == dict(
            fresh.view("v").contents.items()
        )
        # The cache-enabled run actually reused plans, and the disabled
        # run compiled fresh every commit — the ablation is real.
        assert fresh.plan_cache_stats()["plan_cache_hits"] == 0
        check_view_consistency(cached.view("v"), cached_db.instances())
        check_view_consistency(fresh.view("v"), fresh_db.instances())
