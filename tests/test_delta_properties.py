"""Property tests for the delta algebra (net effects and composition)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.relation import Delta, Relation
from repro.algebra.schema import RelationSchema

SCHEMA = RelationSchema(["A"])

rows = st.tuples(st.integers(min_value=0, max_value=6))
row_sets = st.lists(rows, max_size=8, unique=True).map(set)


@st.composite
def states_and_deltas(draw, chain_length: int = 3):
    """A base state plus a chain of deltas, each valid for the state it
    applies to (inserts absent tuples, deletes present ones)."""
    state = draw(row_sets)
    initial = set(state)
    deltas = []
    for _ in range(chain_length):
        candidates = sorted(state)
        deletions = set()
        if candidates:
            deletions = set(
                draw(
                    st.lists(
                        st.sampled_from(candidates), max_size=3, unique=True
                    )
                )
            )
        insert_pool = draw(row_sets)
        insertions = {r for r in insert_pool if r not in state}
        delta = Delta(SCHEMA, inserted=sorted(insertions), deleted=sorted(deletions))
        deltas.append(delta)
        state = (state - deletions) | insertions
    return initial, deltas, state


class TestComposition:
    @settings(max_examples=200, deadline=None)
    @given(states_and_deltas())
    def test_compose_equals_sequential(self, scenario):
        initial, deltas, final = scenario
        combined = deltas[0]
        for later in deltas[1:]:
            combined = combined.compose(later)
        relation = Relation.from_rows(SCHEMA, sorted(initial))
        combined.apply_to(relation)
        assert set(relation.value_tuples()) == final

    @settings(max_examples=200, deadline=None)
    @given(states_and_deltas(chain_length=3))
    def test_compose_is_associative(self, scenario):
        _, (d1, d2, d3), _ = scenario
        left = d1.compose(d2).compose(d3)
        right = d1.compose(d2.compose(d3))
        assert left == right

    @settings(max_examples=100, deadline=None)
    @given(states_and_deltas(chain_length=1))
    def test_empty_delta_is_identity(self, scenario):
        _, (delta,), _ = scenario
        empty = Delta(SCHEMA)
        assert delta.compose(empty) == delta
        assert empty.compose(delta) == delta

    @settings(max_examples=200, deadline=None)
    @given(states_and_deltas())
    def test_composed_sides_stay_disjoint(self, scenario):
        _, deltas, _ = scenario
        combined = deltas[0]
        for later in deltas[1:]:
            combined = combined.compose(later)
        assert not (combined.inserted.keys() & combined.deleted.keys())

    @settings(max_examples=100, deadline=None)
    @given(states_and_deltas(chain_length=2))
    def test_inverse_cancels(self, scenario):
        """A delta followed by its inverse nets to nothing."""
        _, (delta, _), _ = scenario
        inverse = Delta.from_counts(SCHEMA, delta.deleted, delta.inserted)
        assert delta.compose(inverse).is_empty()


class TestSnapshotQueueAgreesWithLog:
    @settings(max_examples=100, deadline=None)
    @given(states_and_deltas(chain_length=4))
    def test_queue_composition_equals_log_composition(self, scenario):
        """Two independent composition paths — SnapshotQueue (incremental)
        and UpdateLog.composed_delta (fold over records) — must agree."""
        from repro.engine.database import Database
        from repro.engine.snapshots import SnapshotQueue

        initial, deltas, _ = scenario
        db = Database()
        db.create_relation("r", SCHEMA, sorted(initial))
        queue = SnapshotQueue(db)
        for delta in deltas:
            with db.transact() as txn:
                for values in delta.deleted:
                    txn.delete("r", values)
                for values in delta.inserted:
                    txn.insert("r", values)
        queue_delta = queue.pending_deltas().get("r")
        log_delta = db.log.composed_delta("r")
        # The queue drops fully-cancelled entries; the log returns an
        # explicit empty delta when records existed.  Both mean "no net
        # change".
        if queue_delta is None:
            assert log_delta is None or log_delta.is_empty()
        else:
            assert queue_delta == log_delta
