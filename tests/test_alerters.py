"""Unit tests for the alerter registry ([BC79] extension)."""

import pytest

from repro.algebra.expressions import BaseRef
from repro.engine.database import Database
from repro.errors import MaintenanceError
from repro.extensions.alerters import AlertEvent, AlerterRegistry


@pytest.fixture
def db():
    database = Database()
    database.create_relation("sensor", ["sid", "threshold"], [(1, 100), (2, 50)])
    database.create_relation("reading", ["sid", "value"], [])
    return database


@pytest.fixture
def registry(db):
    return AlerterRegistry(db)


OVERHEAT = (
    BaseRef("sensor")
    .join(BaseRef("reading"))
    .select("value > threshold + 10")
    .project(["sid", "value"])
)


class TestDefinition:
    def test_define_and_list(self, registry):
        registry.define("overheat", OVERHEAT)
        assert registry.alerter_names() == ("overheat",)
        assert registry.alerter("overheat").active_conditions() == []

    def test_duplicate_rejected(self, registry):
        registry.define("overheat", OVERHEAT)
        with pytest.raises(MaintenanceError):
            registry.define("overheat", OVERHEAT)

    def test_drop(self, registry):
        registry.define("overheat", OVERHEAT)
        registry.drop("overheat")
        assert registry.alerter_names() == ()
        with pytest.raises(MaintenanceError):
            registry.drop("overheat")

    def test_unknown_lookup(self, registry):
        with pytest.raises(MaintenanceError):
            registry.alerter("zzz")

    def test_preexisting_conditions_do_not_fire(self, db):
        with db.transact() as txn:
            txn.insert("reading", (1, 200))
        registry = AlerterRegistry(db)
        registry.define("overheat", OVERHEAT)
        assert registry.log == []
        assert registry.alerter("overheat").active_conditions() == [(1, 200)]


class TestFiring:
    def test_raise_event(self, db, registry):
        events = []
        registry.define("overheat", OVERHEAT, on_event=events.append)
        with db.transact() as txn:
            txn.insert("reading", (1, 150))
        assert events == [
            AlertEvent("overheat", AlertEvent.RAISED, (1, 150), 1)
        ]
        assert registry.log == events
        assert registry.alerter("overheat").events_fired == 1

    def test_clear_event(self, db, registry):
        events = []
        registry.define("overheat", OVERHEAT, on_event=events.append)
        with db.transact() as txn:
            txn.insert("reading", (1, 150))
        with db.transact() as txn:
            txn.delete("reading", (1, 150))
        assert [e.kind for e in events] == [
            AlertEvent.RAISED,
            AlertEvent.CLEARED,
        ]
        assert registry.alerter("overheat").active_conditions() == []

    def test_irrelevant_updates_fire_nothing(self, db, registry):
        events = []
        registry.define("overheat", OVERHEAT, on_event=events.append)
        with db.transact() as txn:
            txn.insert("reading", (1, 50))  # well under every threshold+10
        assert events == []

    def test_count_changes_are_not_events(self, db, registry):
        """A projected tuple supported twice raises once; losing one
        support is not a clear."""
        events = []
        # Project away the sensor id so two sensors can support one tuple.
        expr = (
            BaseRef("sensor")
            .join(BaseRef("reading"))
            .select("value > threshold + 10")
            .project(["value"])
        )
        registry.define("hot_value", expr, on_event=events.append)
        with db.transact() as txn:
            txn.insert("reading", (1, 150))
            txn.insert("reading", (2, 150))
        # Both sensors trip on value 150: one raise for the tuple (150,).
        assert [e.kind for e in events] == [AlertEvent.RAISED]
        with db.transact() as txn:
            txn.delete("reading", (1, 150))
        assert [e.kind for e in events] == [AlertEvent.RAISED]  # still raised
        with db.transact() as txn:
            txn.delete("reading", (2, 150))
        assert [e.kind for e in events] == [
            AlertEvent.RAISED,
            AlertEvent.CLEARED,
        ]

    def test_multiple_alerters_independent(self, db, registry):
        hot = registry.define("overheat", OVERHEAT)
        cold = registry.define(
            "freeze",
            BaseRef("reading").select("value < 0").project(["sid"]),
        )
        with db.transact() as txn:
            txn.insert("reading", (1, 150))
            txn.insert("reading", (2, -5))
        assert hot.events_fired == 1
        assert cold.events_fired == 1
        kinds = {(e.alerter, e.kind) for e in registry.log}
        assert kinds == {
            ("overheat", AlertEvent.RAISED),
            ("freeze", AlertEvent.RAISED),
        }

    def test_detach_stops_delivery(self, db, registry):
        events = []
        registry.define("overheat", OVERHEAT, on_event=events.append)
        registry.detach()
        with db.transact() as txn:
            txn.insert("reading", (1, 150))
        assert events == []


class TestAlertEvent:
    def test_equality_and_repr(self):
        a = AlertEvent("x", AlertEvent.RAISED, (1,), 1)
        b = AlertEvent("x", AlertEvent.RAISED, (1,), 1)
        assert a == b
        assert a != AlertEvent("x", AlertEvent.CLEARED, (1,), 1)
        assert "raised" in repr(a)
