"""Unit tests for the snapshot (deferred-delta) queue."""

import pytest

from repro.engine.database import Database
from repro.engine.snapshots import SnapshotQueue


@pytest.fixture
def db():
    database = Database()
    database.create_relation("r", ["A"], [(1,), (2,)])
    database.create_relation("s", ["B"], [(1,)])
    return database


class TestAccumulation:
    def test_single_transaction(self, db):
        queue = SnapshotQueue(db)
        with db.transact() as txn:
            txn.insert("r", (5,))
        pending = queue.pending_deltas()
        assert pending["r"].inserted == {(5,): 1}
        assert queue.pending_transaction_count() == 1

    def test_composition_cancels(self, db):
        queue = SnapshotQueue(db)
        with db.transact() as txn:
            txn.insert("r", (5,))
        with db.transact() as txn:
            txn.delete("r", (5,))
        assert not queue.has_pending()

    def test_composition_accumulates(self, db):
        queue = SnapshotQueue(db)
        with db.transact() as txn:
            txn.insert("r", (5,))
        with db.transact() as txn:
            txn.insert("r", (6,))
            txn.delete("r", (1,))
        pending = queue.pending_deltas()["r"]
        assert set(pending.inserted) == {(5,), (6,)}
        assert set(pending.deleted) == {(1,)}

    def test_multiple_relations_tracked_separately(self, db):
        queue = SnapshotQueue(db)
        with db.transact() as txn:
            txn.insert("r", (5,))
            txn.delete("s", (1,))
        pending = queue.pending_deltas()
        assert set(pending) == {"r", "s"}

    def test_read_only_transactions_ignored(self, db):
        queue = SnapshotQueue(db)
        with db.transact():
            pass
        assert queue.pending_transaction_count() == 0


class TestDrain:
    def test_drain_hands_over_and_clears(self, db):
        queue = SnapshotQueue(db)
        with db.transact() as txn:
            txn.insert("r", (5,))
        drained = queue.drain()
        assert drained["r"].inserted == {(5,): 1}
        assert not queue.has_pending()
        assert queue.pending_transaction_count() == 0

    def test_drain_equals_one_big_transaction(self, db):
        """Applying the drained deltas to a pre-commit copy must yield
        the live state — the deferred deltas are a faithful summary."""
        before = db.clone_data()
        queue = SnapshotQueue(db)
        import random

        rng = random.Random(8)
        for _ in range(15):
            with db.transact() as txn:
                for _ in range(rng.randint(1, 3)):
                    row = (rng.randint(0, 9),)
                    if rng.random() < 0.5:
                        txn.insert("r", row)
                    else:
                        txn.delete("r", row)
        for name, delta in queue.drain().items():
            delta.apply_to(before.relation(name))
        assert before.relation("r") == db.relation("r")

    def test_detach_stops_observing(self, db):
        queue = SnapshotQueue(db)
        queue.detach()
        with db.transact() as txn:
            txn.insert("r", (5,))
        assert not queue.has_pending()
