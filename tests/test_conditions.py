"""Unit tests for the condition language (atoms, conjunctions, DNF)."""

import pytest

from repro.algebra.conditions import (
    TRUE,
    Atom,
    Condition,
    Conjunction,
    Const,
    Var,
)
from repro.errors import ConditionError


class TestTerms:
    def test_var_requires_name(self):
        with pytest.raises(ConditionError):
            Var("")

    def test_const_requires_int(self):
        with pytest.raises(ConditionError):
            Const("5")
        with pytest.raises(ConditionError):
            Const(True)

    def test_term_equality(self):
        assert Var("x") == Var("x")
        assert Var("x") != Var("y")
        assert Const(3) == Const(3)
        assert Var("x") != Const(3)


class TestAtomCanonicalization:
    def test_offset_folds_into_const_right(self):
        a = Atom("A", "<", 10, offset=2)  # A < 10 + 2
        assert isinstance(a.right, Const)
        assert a.right.value == 12
        assert a.offset == 0

    def test_const_left_mirrors(self):
        a = Atom(5, "<", "A")  # 5 < A  ->  A > 5
        assert isinstance(a.left, Var) and a.left.name == "A"
        assert a.op == ">"
        assert a.right == Const(5)

    def test_const_left_mirror_with_offset(self):
        a = Atom(5, "<=", "A", offset=3)  # 5 <= A + 3  ->  A >= 2
        assert a.op == ">="
        assert a.right == Const(2)

    def test_equality_mirror(self):
        a = Atom(7, "=", "A")
        assert a.op == "="
        assert a.left == Var("A")
        assert a.right == Const(7)

    def test_not_equals_rejected(self):
        with pytest.raises(ConditionError):
            Atom("A", "!=", "B")
        with pytest.raises(ConditionError):
            Atom("A", "<>", 3)

    def test_unknown_operator_rejected(self):
        with pytest.raises(ConditionError):
            Atom("A", "~", "B")

    def test_non_integer_offset_rejected(self):
        with pytest.raises(ConditionError):
            Atom("A", "<", "B", offset=1.5)

    def test_str_rendering(self):
        assert str(Atom("A", "<=", "B", 3)) == "A <= B + 3"
        assert str(Atom("A", ">=", "B", -2)) == "A >= B - 2"
        assert str(Atom("A", "<", 10)) == "A < 10"


class TestAtomShapes:
    def test_ground(self):
        a = Atom(3, "<", 5)
        assert a.is_ground()
        assert a.truth_value() is True
        assert not Atom(5, "<", 3).truth_value()

    def test_truth_value_requires_ground(self):
        with pytest.raises(ConditionError):
            Atom("A", "<", 5).truth_value()

    def test_single_variable(self):
        a = Atom("A", "<", 10)
        assert a.is_single_variable()
        assert not a.is_ground() and not a.is_two_variable()

    def test_two_variable(self):
        assert Atom("A", "=", "B").is_two_variable()

    def test_variables(self):
        assert Atom("A", "<", "B", 1).variables() == {"A", "B"}
        assert Atom("A", "<", 5).variables() == {"A"}
        assert Atom(1, "<", 5).variables() == frozenset()


class TestAtomEvaluation:
    @pytest.mark.parametrize(
        "op,expected",
        [("=", False), ("<", True), (">", False), ("<=", True), (">=", False)],
    )
    def test_operators(self, op, expected):
        assert Atom("x", op, "y").evaluate({"x": 1, "y": 2}) is expected

    def test_offset_applies_to_right(self):
        # x <= y + 3 with x=5, y=2  ->  5 <= 5  True
        assert Atom("x", "<=", "y", 3).evaluate({"x": 5, "y": 2})
        assert not Atom("x", "<=", "y", 2).evaluate({"x": 5, "y": 2})

    def test_missing_variable_raises(self):
        with pytest.raises(ConditionError):
            Atom("x", "<", "y").evaluate({"x": 1})

    def test_substitute_partial(self):
        a = Atom("x", "<", "y", 2).substitute({"x": 5})
        assert a.is_single_variable()
        # 5 < y + 2  mirrors to  y > 3
        assert a.left == Var("y")
        assert a.op == ">"
        assert a.right == Const(3)

    def test_substitute_full_makes_ground(self):
        a = Atom("x", "=", "y").substitute({"x": 5, "y": 5})
        assert a.is_ground() and a.truth_value()

    def test_substitute_unmentioned_is_noop(self):
        a = Atom("x", "<", "y")
        assert a.substitute({"z": 1}) == a


class TestConjunction:
    def test_empty_is_true(self):
        assert Conjunction().evaluate({}) is True

    def test_evaluate_all(self):
        c = Conjunction([Atom("x", "<", 10), Atom("x", ">", 0)])
        assert c.evaluate({"x": 5})
        assert not c.evaluate({"x": 11})

    def test_variables(self):
        c = Conjunction([Atom("x", "<", "y"), Atom("z", ">", 0)])
        assert c.variables() == {"x", "y", "z"}

    def test_substitute(self):
        c = Conjunction([Atom("x", "<", "y")]).substitute({"y": 7})
        assert c.atoms[0] == Atom("x", "<", 7)

    def test_non_atom_member_rejected(self):
        with pytest.raises(ConditionError):
            Conjunction(["x < 5"])

    def test_str(self):
        assert str(Conjunction()) == "true"


class TestCondition:
    def test_true_false(self):
        assert TRUE.is_true()
        assert Condition.false().is_false()
        assert TRUE.evaluate({})
        assert not Condition.false().evaluate({})

    def test_dnf_evaluation(self):
        c = Condition.coerce("x < 0 or x > 10")
        assert c.evaluate({"x": -1})
        assert c.evaluate({"x": 11})
        assert not c.evaluate({"x": 5})

    def test_conjoin_distributes(self):
        c = Condition.coerce("x < 0 or x > 10").conjoin(
            Condition.coerce("y = 1 or y = 2")
        )
        assert len(c.disjuncts) == 4

    def test_disjoin_concatenates(self):
        c = Condition.coerce("x < 0").disjoin(Condition.coerce("x > 10"))
        assert len(c.disjuncts) == 2

    def test_operators(self):
        a = Condition.coerce("x < 0")
        b = Condition.coerce("y > 0")
        assert len((a & b).disjuncts) == 1
        assert len((a | b).disjuncts) == 2

    def test_coerce_shapes(self):
        assert Condition.coerce(Atom("x", "<", 1)).disjuncts[0].atoms[0] == Atom(
            "x", "<", 1
        )
        assert Condition.coerce([Atom("x", "<", 1)]).variables() == {"x"}
        assert Condition.coerce(Conjunction([Atom("x", "<", 1)])).variables() == {"x"}
        c = Condition.coerce("x < 1")
        assert Condition.coerce(c) is c

    def test_coerce_garbage_rejected(self):
        with pytest.raises(ConditionError):
            Condition.coerce(3.14)

    def test_substitute_goes_through_all_disjuncts(self):
        c = Condition.coerce("x < y or x > y + 5").substitute({"y": 0})
        assert all("y" not in d.variables() for d in c.disjuncts)

    def test_variables_across_disjuncts(self):
        assert Condition.coerce("x < 1 or y > 2").variables() == {"x", "y"}

    def test_str_shapes(self):
        assert str(Condition.false()) == "false"
        assert str(Condition.coerce("x < 1")) == "x < 1"
        assert "or" in str(Condition.coerce("x < 1 or y > 2"))
