"""Tests for views defined over other views (stacked maintenance).

A registered view can serve as a base relation for further views: the
maintainer propagates each commit's deltas down the dependency chain,
feeding every downstream view the *view delta* its upstream just
applied.  Counted semantics carries through — an upstream projection's
multiplicity changes are deltas like any other.
"""

import random

import pytest

from repro.algebra.expressions import BaseRef
from repro.core.consistency import check_view_consistency
from repro.core.maintainer import MaintenancePolicy, ViewMaintainer
from repro.engine.database import Database
from repro.errors import MaintenanceError

from tests.conftest import run_random_transactions


@pytest.fixture
def db():
    database = Database()
    database.create_relation("r", ["A", "B"], [(i, i % 4) for i in range(12)])
    database.create_relation("s", ["B", "C"], [(i % 4, i) for i in range(12)])
    return database


@pytest.fixture
def maintainer(db):
    return ViewMaintainer(db, auto_verify=True)


class TestDefinition:
    def test_view_over_view(self, maintainer):
        maintainer.define_view("joined", BaseRef("r").join(BaseRef("s")))
        stacked = maintainer.define_view(
            "hot", BaseRef("joined").select("C >= 6")
        )
        assert len(stacked.contents) > 0

    def test_three_level_chain(self, maintainer):
        maintainer.define_view("l1", BaseRef("r").join(BaseRef("s")))
        maintainer.define_view("l2", BaseRef("l1").select("C >= 3"))
        l3 = maintainer.define_view("l3", BaseRef("l2").project(["A"]))
        assert l3.definition.relation_names == {"l2"}

    def test_deferred_upstream_rejected(self, maintainer):
        maintainer.define_view(
            "snap", BaseRef("r"), policy=MaintenancePolicy.DEFERRED
        )
        with pytest.raises(MaintenanceError):
            maintainer.define_view("over", BaseRef("snap").select("A < 5"))

    def test_drop_with_dependants_rejected(self, maintainer):
        maintainer.define_view("base_view", BaseRef("r"))
        maintainer.define_view("over", BaseRef("base_view").select("A < 5"))
        with pytest.raises(MaintenanceError):
            maintainer.drop_view("base_view")
        maintainer.drop_view("over")
        maintainer.drop_view("base_view")  # now fine

    def test_unknown_reference_still_rejected(self, maintainer):
        from repro.errors import ExpressionError

        with pytest.raises(ExpressionError):
            maintainer.define_view("v", BaseRef("no_such_thing"))


class TestPropagation:
    def test_insert_flows_through_chain(self, db, maintainer):
        maintainer.define_view("joined", BaseRef("r").join(BaseRef("s")))
        hot = maintainer.define_view("hot", BaseRef("joined").select("C >= 100"))
        assert len(hot.contents) == 0
        with db.transact() as txn:
            txn.insert("r", (99, 0))
            txn.insert("s", (0, 500))
        assert hot.contents.count_of((99, 0, 500)) == 1

    def test_delete_flows_through_chain(self, db, maintainer):
        maintainer.define_view("joined", BaseRef("r").join(BaseRef("s")))
        hot = maintainer.define_view("hot", BaseRef("joined").select("C >= 6"))
        target = next(iter(hot.contents.value_tuples()))
        with db.transact() as txn:
            txn.delete("r", (target[0], target[1]))
        assert target not in hot.contents

    def test_counted_upstream_deltas(self, db, maintainer):
        """A projection upstream produces counted deltas; the stacked
        view must track count changes, not just presence."""
        maintainer.define_view("proj", BaseRef("r").project(["B"]))
        over = maintainer.define_view("over", BaseRef("proj").select("B >= 0"))
        before = over.contents.count_of((0,))
        with db.transact() as txn:
            txn.insert("r", (50, 0))  # raises the count of B = 0
        assert over.contents.count_of((0,)) == before + 1

    def test_join_of_two_views(self, db, maintainer):
        maintainer.define_view("ra", BaseRef("r").select("A <= 6"))
        maintainer.define_view("sa", BaseRef("s").select("C <= 6"))
        both = maintainer.define_view("both", BaseRef("ra").join(BaseRef("sa")))
        with db.transact() as txn:
            txn.insert("r", (5, 1))
            txn.insert("s", (1, 5))
        check_view_consistency(both, maintainer._combined_instances())

    def test_upstream_skip_skips_downstream(self, db, maintainer):
        maintainer.define_view("narrow", BaseRef("r").select("A < 0"))
        maintainer.define_view("over", BaseRef("narrow").project(["B"]))
        stats = maintainer.stats("over")
        with db.transact() as txn:
            txn.insert("r", (100, 1))  # irrelevant to 'narrow'
        # The upstream view never changed, so the stacked view saw no
        # delta at all — not even a screened one.
        assert stats.transactions_seen == 0

    def test_deferred_downstream_over_immediate_upstream(self, db, maintainer):
        maintainer.define_view("joined", BaseRef("r").join(BaseRef("s")))
        snap = maintainer.define_view(
            "snap",
            BaseRef("joined").select("C >= 6").project(["A"]),
            policy=MaintenancePolicy.DEFERRED,
        )
        with db.transact() as txn:
            txn.insert("r", (99, 0))
            txn.insert("s", (0, 500))
        # Upstream is current, downstream is stale until refresh.
        assert (99,) not in snap.contents
        maintainer.refresh("snap")
        assert (99,) in snap.contents
        check_view_consistency(snap, maintainer._combined_instances())


class TestRandomizedStack:
    def test_long_random_run_stays_consistent(self):
        db = Database()
        db.create_relation("r", ["A", "B"], [(i, i % 4) for i in range(12)])
        db.create_relation("s", ["B", "C"], [(i % 4, i) for i in range(12)])
        # auto_verify re-derives every view (including stacked ones)
        # from scratch after each commit.
        maintainer = ViewMaintainer(db, auto_verify=True)
        maintainer.define_view(
            "l1", BaseRef("r").join(BaseRef("s")).project(["A", "C"])
        )
        maintainer.define_view("l2", BaseRef("l1").select("C >= 4"))
        maintainer.define_view("l3", BaseRef("l2").project(["A"]))
        rng = random.Random(7)
        run_random_transactions(db, rng, 50)
        # auto_verify already checked every commit; one more explicit
        # end-to-end pass for good measure.
        for name in ("l1", "l2", "l3"):
            check_view_consistency(
                maintainer.view(name), maintainer._combined_instances()
            )
