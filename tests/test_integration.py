"""End-to-end integration soak tests.

Long random workloads exercising every component together: multiple
views with mixed policies over one database, scenario databases, index
use, snapshots and the log, all cross-checked against full
re-evaluation at the end (and continuously for the immediate views).
"""

import random

import pytest

from repro.algebra.expressions import BaseRef
from repro.baselines.full_reevaluation import FullReevaluationMaintainer
from repro.core.consistency import check_view_consistency
from repro.core.maintainer import MaintenancePolicy, ViewMaintainer
from repro.engine.database import Database
from repro.engine.snapshots import SnapshotQueue
from repro.workloads.scenarios import alerter_scenario, sales_scenario

from tests.conftest import run_random_transactions


class TestMultiViewSoak:
    def test_many_views_one_database(self):
        db = Database()
        db.create_relation("r", ["A", "B"], [(i, i % 4) for i in range(12)])
        db.create_relation("s", ["B", "C"], [(i % 4, i) for i in range(12)])
        db.create_relation("t", ["C", "D"], [(i, i % 3) for i in range(12)])

        maintainer = ViewMaintainer(db)
        expressions = {
            "select_view": BaseRef("r").select("A <= 6 and B >= 1"),
            "project_view": BaseRef("r").project(["B"]),
            "join_view": BaseRef("r").join(BaseRef("s")),
            "chain_view": BaseRef("r").join(BaseRef("s")).join(BaseRef("t")),
            "spj_view": (
                BaseRef("r")
                .join(BaseRef("s"))
                .select("A < C + 2")
                .project(["A", "C"])
            ),
            "dnf_view": BaseRef("r").select("A < 2 or B > 2"),
        }
        views = {
            name: maintainer.define_view(name, expr)
            for name, expr in expressions.items()
        }
        deferred = maintainer.define_view(
            "deferred_chain",
            BaseRef("r").join(BaseRef("s")).project(["A", "C"]),
            policy=MaintenancePolicy.DEFERRED,
        )

        rng = random.Random(1234)
        for round_number in range(12):
            run_random_transactions(db, rng, 8, value_max=12)
            for view in views.values():
                check_view_consistency(view, db.instances())
            if round_number % 3 == 2:
                maintainer.refresh("deferred_chain")
                check_view_consistency(deferred, db.instances())
        maintainer.refresh("deferred_chain")
        check_view_consistency(deferred, db.instances())

    def test_differential_vs_baseline_long_run(self):
        db = Database()
        db.create_relation("r", ["A", "B"], [(i, i % 5) for i in range(20)])
        db.create_relation("s", ["B", "C"], [(i % 5, i) for i in range(20)])
        expr = BaseRef("r").join(BaseRef("s")).select("C >= 2").project(["A", "C"])
        differential = ViewMaintainer(db)
        baseline = FullReevaluationMaintainer(db)
        a = differential.define_view("a", expr)
        b = baseline.define_view("b", expr)
        rng = random.Random(555)
        run_random_transactions(db, rng, 120, value_max=25)
        assert a.contents == b.contents


class TestScenarioSoak:
    @pytest.mark.parametrize(
        "factory", [sales_scenario, alerter_scenario], ids=["sales", "alerter"]
    )
    def test_scenario_long_run(self, factory):
        scenario = factory()
        db = scenario.database
        maintainer = ViewMaintainer(db)
        view = maintainer.define_view(scenario.view_name, scenario.expression)
        rng = random.Random(9)
        run_random_transactions(db, rng, 60, value_max=400)
        check_view_consistency(view, db.instances())
        # The stats must account for every screened tuple.
        stats = maintainer.stats(scenario.view_name)
        assert stats.tuples_screened >= stats.tuples_irrelevant


class TestSnapshotQueueWithMaintainer:
    def test_external_snapshot_consumer_alongside_maintainer(self):
        """A SnapshotQueue and a ViewMaintainer observing the same
        commits must not interfere."""
        db = Database()
        db.create_relation("r", ["A", "B"], [(1, 1)])
        queue = SnapshotQueue(db)
        maintainer = ViewMaintainer(db)
        view = maintainer.define_view("v", BaseRef("r").select("B >= 1"))
        rng = random.Random(2)
        run_random_transactions(db, rng, 20)
        check_view_consistency(view, db.instances())
        # Applying the queue's composed deltas to the initial state
        # reproduces the live state.
        assert queue.pending_transaction_count() > 0


class TestLogReplayWithViews:
    def test_replayed_database_supports_same_views(self):
        db = Database()
        db.create_relation("r", ["A", "B"], [(i, i % 3) for i in range(8)])
        db.create_relation("s", ["B", "C"], [(i % 3, i) for i in range(8)])
        initial = db.clone_data()
        maintainer = ViewMaintainer(db)
        view = maintainer.define_view("v", BaseRef("r").join(BaseRef("s")))
        rng = random.Random(3)
        run_random_transactions(db, rng, 30)
        # Replay history into the initial copy and materialize there.
        db.log.replay(initial)
        replay_maintainer = ViewMaintainer(initial)
        replay_view = replay_maintainer.define_view(
            "v", BaseRef("r").join(BaseRef("s"))
        )
        assert replay_view.contents == view.contents


class TestErrorRecovery:
    def test_aborted_transaction_leaves_views_untouched(self):
        db = Database()
        db.create_relation("r", ["A", "B"], [(1, 1)])
        maintainer = ViewMaintainer(db)
        view = maintainer.define_view("v", BaseRef("r"))
        before = view.contents.copy()
        with pytest.raises(RuntimeError):
            with db.transact() as txn:
                txn.insert("r", (2, 2))
                raise RuntimeError("rollback")
        assert view.contents == before
        check_view_consistency(view, db.instances())

    def test_maintenance_continues_after_abort(self):
        db = Database()
        db.create_relation("r", ["A", "B"], [(1, 1)])
        maintainer = ViewMaintainer(db)
        view = maintainer.define_view("v", BaseRef("r"))
        with pytest.raises(RuntimeError), db.transact() as txn:
            txn.insert("r", (2, 2))
            raise RuntimeError
        with db.transact() as txn:
            txn.insert("r", (3, 3))
        assert (3, 3) in view.contents
        assert (2, 2) not in view.contents
