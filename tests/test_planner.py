"""Unit tests for the row planner: sharing, pushdown, index probes."""

import pytest

from repro.algebra.expressions import BaseRef, to_normal_form
from repro.algebra.relation import Delta, Relation, TaggedRelation
from repro.algebra.schema import RelationSchema
from repro.algebra.tags import Tag
from repro.core.differential import compute_view_delta
from repro.core.planner import RowPlanner, evaluate_normal_form
from repro.core.truthtable import DeltaRowChoice, enumerate_delta_rows
from repro.instrumentation import CostRecorder, recording


@pytest.fixture
def catalog():
    return {
        "r": RelationSchema(["A", "B"]),
        "s": RelationSchema(["B", "C"]),
        "t": RelationSchema(["C", "D"]),
    }


def _chain_instances(catalog, n=20):
    return {
        "r": Relation.from_rows(catalog["r"], [(i, i % 5) for i in range(n)]),
        "s": Relation.from_rows(catalog["s"], [(i % 5, i % 7) for i in range(n)]),
        "t": Relation.from_rows(catalog["t"], [(i % 7, i) for i in range(n)]),
    }


class TestEvaluateNormalForm:
    """The pipelined evaluator must agree with the naive tree walker."""

    @pytest.mark.parametrize(
        "make_expr",
        [
            lambda: BaseRef("r"),
            lambda: BaseRef("r").select("A < 10"),
            lambda: BaseRef("r").project(["B"]),
            lambda: BaseRef("r").join(BaseRef("s")),
            lambda: BaseRef("r").join(BaseRef("s")).join(BaseRef("t")),
            lambda: (
                BaseRef("r")
                .join(BaseRef("s"))
                .select("A <= C + 2 and B >= 1")
                .project(["A", "C"])
            ),
            lambda: BaseRef("r").select("A < 3 or B > 3"),
            lambda: BaseRef("r").join(BaseRef("s")).select("A < 2 or C > 5"),
        ],
    )
    def test_agrees_with_tree_evaluator(self, make_expr, catalog):
        from repro.algebra.evaluate import evaluate

        instances = _chain_instances(catalog)
        expr = make_expr()
        nf = to_normal_form(expr, catalog)
        assert evaluate_normal_form(nf, instances) == evaluate(expr, instances)

    def test_empty_relation(self, catalog):
        instances = _chain_instances(catalog)
        instances["s"] = Relation(catalog["s"])
        nf = to_normal_form(BaseRef("r").join(BaseRef("s")), catalog)
        assert len(evaluate_normal_form(nf, instances)) == 0


class TestSubexpressionSharing:
    def _run(self, share):
        catalog = {
            "r": RelationSchema(["A", "B"]),
            "s": RelationSchema(["B", "C"]),
            "t": RelationSchema(["C", "D"]),
        }
        instances = _chain_instances(catalog, n=30)
        nf = to_normal_form(
            BaseRef("r").join(BaseRef("s")).join(BaseRef("t")), catalog
        )
        deltas = {
            "r": Delta(catalog["r"], inserted=[(100, 0)]),
            "s": Delta(catalog["s"], inserted=[(0, 100)]),
            "t": Delta(catalog["t"], inserted=[(100, 100)]),
        }
        instances["r"].add((100, 0))
        instances["s"].add((0, 100))
        instances["t"].add((100, 100))
        recorder = CostRecorder()
        with recording(recorder):
            out = compute_view_delta(
                nf, instances, deltas, share_subexpressions=share
            )
        return out, recorder

    def test_sharing_gives_same_answer_with_memo_hits(self):
        shared, rec_shared = self._run(True)
        unshared, rec_unshared = self._run(False)
        assert shared == unshared
        assert rec_shared.get("subexpression_memo_hits") > 0
        assert rec_unshared.get("subexpression_memo_hits") == 0

    def test_sharing_reduces_join_probes(self):
        _, rec_shared = self._run(True)
        _, rec_unshared = self._run(False)
        assert rec_shared.get("join_probes") <= rec_unshared.get("join_probes")

    def test_2k_minus_1_rows_evaluated(self):
        _, recorder = self._run(True)
        assert recorder.get("delta_rows_evaluated") == 2**3 - 1


class TestEqualityLinkOffsets:
    def test_join_on_offset_equality(self, catalog):
        """x = y + c equality atoms must be honoured as shifted hash keys."""
        from repro.algebra.evaluate import evaluate

        expr = (
            BaseRef("r")
            .product(BaseRef("t"))
            .select("B = C + 2")
            .project(["A", "D"])
        )
        nf = to_normal_form(expr, catalog)
        instances = {
            "r": Relation.from_rows(catalog["r"], [(1, 5), (2, 7)]),
            "t": Relation.from_rows(catalog["t"], [(3, 30), (5, 50)]),
        }
        got = evaluate_normal_form(nf, instances)
        want = evaluate(expr, instances)
        assert got == want
        assert got.counts() == {(1, 30): 1, (2, 50): 1}


class TestIndexProbe:
    def test_index_probe_used_and_correct(self, catalog):
        nf = to_normal_form(BaseRef("r").join(BaseRef("s")), catalog)
        instances = _chain_instances(catalog)
        delta = Delta(catalog["r"], inserted=[(100, 2)])
        instances["r"].add((100, 2))

        probes = []

        def index_probe(position, link_attrs):
            occurrence = nf.occurrences[position]
            if occurrence.name != "s":
                return None
            probes.append((position, link_attrs))
            base_attr = tuple(occurrence.inverse[q] for q in link_attrs)
            positions = catalog["s"].positions(base_attr)

            def probe(key):
                for values, count in instances["s"].items():
                    if tuple(values[i] for i in positions) == key:
                        yield values, Tag.OLD, count

            return probe

        with_index = compute_view_delta(
            nf, instances, {"r": delta}, index_probe=index_probe
        )
        without = compute_view_delta(nf, instances, {"r": delta})
        assert with_index == without
        assert probes  # the hook was actually consulted

    def test_index_probe_only_for_old_operands(self, catalog):
        """DELTA operands must never be answered from an index."""
        nf = to_normal_form(BaseRef("r").join(BaseRef("s")), catalog)
        instances = _chain_instances(catalog)
        delta = Delta(catalog["s"], inserted=[(2, 100)])
        instances["s"].add((2, 100))
        seen_positions = []

        def index_probe(position, link_attrs):
            seen_positions.append(position)
            return None

        compute_view_delta(nf, instances, {"s": delta}, index_probe=index_probe)
        # Position 1 (s) is changed; its DELTA operand must not probe.
        # Its OLD operand may. Position 0 (r, unchanged old) may probe.
        assert all(p in (0, 1) for p in seen_positions)


class TestPlannerPlumbing:
    def test_evaluation_order_puts_deltas_first(self, catalog):
        nf = to_normal_form(
            BaseRef("r").join(BaseRef("s")).join(BaseRef("t")), catalog
        )
        planner = RowPlanner(nf, changed_positions=[2])
        assert planner.order[0] == 2

    def test_always_empty_condition_short_circuits(self, catalog):
        nf = to_normal_form(BaseRef("r").select("1 = 2"), catalog)
        planner = RowPlanner(nf, changed_positions=[0])
        tagged = TaggedRelation(
            nf.qualified_schema.project_schema(
                nf.occurrences[0].qualified_names()
            )
        )
        tagged.add((1, 2), Tag.INSERT)
        out = planner.evaluate_rows(
            enumerate_delta_rows(1, [0]),
            [{DeltaRowChoice.OLD: tagged, DeltaRowChoice.DELTA: tagged}],
        )
        assert out.is_empty()
