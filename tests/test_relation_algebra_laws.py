"""Property tests: algebraic laws of the counted-relation operations.

The §5 correctness arguments lean on union/difference behaving like a
commutative monoid with cancellation under counted semantics; these
tests pin those laws, plus the TaggedRelation → Delta collapse
invariants, over random inputs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.relation import Delta, Relation, TaggedRelation
from repro.algebra.schema import RelationSchema
from repro.algebra.tags import Tag

SCHEMA = RelationSchema(["A", "B"])

counted = st.dictionaries(
    st.tuples(
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=4),
    ),
    st.integers(min_value=1, max_value=3),
    max_size=8,
)


def _rel(counts):
    return Relation.from_counts(SCHEMA, counts) if counts else Relation(SCHEMA)


class TestUnionLaws:
    @settings(max_examples=200, deadline=None)
    @given(counted, counted)
    def test_commutative(self, a, b):
        assert _rel(a).union(_rel(b)) == _rel(b).union(_rel(a))

    @settings(max_examples=200, deadline=None)
    @given(counted, counted, counted)
    def test_associative(self, a, b, c):
        left = _rel(a).union(_rel(b)).union(_rel(c))
        right = _rel(a).union(_rel(b).union(_rel(c)))
        assert left == right

    @settings(max_examples=100, deadline=None)
    @given(counted)
    def test_empty_identity(self, a):
        assert _rel(a).union(Relation(SCHEMA)) == _rel(a)
        assert Relation(SCHEMA).union(_rel(a)) == _rel(a)

    @settings(max_examples=200, deadline=None)
    @given(counted, counted)
    def test_total_counts_add(self, a, b):
        combined = _rel(a).union(_rel(b))
        assert combined.total_count() == _rel(a).total_count() + _rel(b).total_count()


class TestDifferenceLaws:
    @settings(max_examples=200, deadline=None)
    @given(counted, counted)
    def test_union_then_difference_cancels(self, a, b):
        assert _rel(a).union(_rel(b)).difference(_rel(b)) == _rel(a)

    @settings(max_examples=100, deadline=None)
    @given(counted)
    def test_self_difference_is_empty(self, a):
        out = _rel(a).difference(_rel(a))
        assert len(out) == 0

    @settings(max_examples=100, deadline=None)
    @given(counted)
    def test_empty_difference_identity(self, a):
        assert _rel(a).difference(Relation(SCHEMA)) == _rel(a)


class TestTaggedCollapse:
    tagged_entries = st.lists(
        st.tuples(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=3),
            ),
            st.sampled_from([Tag.OLD, Tag.INSERT, Tag.DELETE]),
            st.integers(min_value=1, max_value=3),
        ),
        max_size=12,
    )

    @settings(max_examples=200, deadline=None)
    @given(tagged_entries)
    def test_to_delta_ignores_old_and_nets_counts(self, entries):
        tagged = TaggedRelation(SCHEMA)
        net: dict[tuple, int] = {}
        for values, tag, count in entries:
            tagged.add(values, tag, count)
            if tag is Tag.INSERT:
                net[values] = net.get(values, 0) + count
            elif tag is Tag.DELETE:
                net[values] = net.get(values, 0) - count
        delta = tagged.to_delta()
        for values, signed in net.items():
            if signed > 0:
                assert delta.inserted.get(values) == signed
            elif signed < 0:
                assert delta.deleted.get(values) == -signed
            else:
                assert values not in delta.inserted
                assert values not in delta.deleted

    @settings(max_examples=200, deadline=None)
    @given(tagged_entries)
    def test_to_delta_sides_disjoint(self, entries):
        tagged = TaggedRelation(SCHEMA)
        for values, tag, count in entries:
            tagged.add(values, tag, count)
        delta = tagged.to_delta()
        assert not (delta.inserted.keys() & delta.deleted.keys())

    @settings(max_examples=100, deadline=None)
    @given(tagged_entries)
    def test_merge_then_collapse_equals_collapse_of_concat(self, entries):
        half = len(entries) // 2
        first, second = TaggedRelation(SCHEMA), TaggedRelation(SCHEMA)
        for values, tag, count in entries[:half]:
            first.add(values, tag, count)
        for values, tag, count in entries[half:]:
            second.add(values, tag, count)
        merged = TaggedRelation(SCHEMA)
        merged.merge(first)
        merged.merge(second)
        everything = TaggedRelation(SCHEMA)
        for values, tag, count in entries:
            everything.add(values, tag, count)
        assert merged.to_delta() == everything.to_delta()


class TestDeltaApplication:
    @settings(max_examples=200, deadline=None)
    @given(counted, st.data())
    def test_apply_then_invert_restores(self, a, data):
        base = _rel(a)
        # Draw a valid delta for the state: delete a sub-multiset,
        # insert something disjoint from the remainder.
        deleted = {}
        for values, count in base.items():
            take = data.draw(st.integers(min_value=0, max_value=count))
            if take:
                deleted[values] = take
        inserted = {
            (9, 9): data.draw(st.integers(min_value=1, max_value=2))
        }
        delta = Delta.from_counts(SCHEMA, inserted, deleted)
        modified = base.copy()
        delta.apply_to(modified)
        inverse = Delta.from_counts(SCHEMA, deleted, inserted)
        inverse.apply_to(modified)
        assert modified == base
