"""Unit tests for the Database container and commit pipeline."""

import pytest

from repro.engine.database import Database
from repro.errors import SchemaError, UnknownRelationError


@pytest.fixture
def db():
    database = Database()
    database.create_relation("r", ["A", "B"], [(1, 2)])
    return database


class TestSchemaManagement:
    def test_create_and_lookup(self, db):
        assert (1, 2) in db.relation("r")
        assert db.relation_names() == ("r",)

    def test_duplicate_name_rejected(self, db):
        with pytest.raises(SchemaError):
            db.create_relation("r", ["X"])

    def test_duplicate_initial_row_rejected(self):
        db = Database()
        with pytest.raises(SchemaError):
            db.create_relation("r", ["A"], [(1,), (1,)])

    def test_unknown_relation(self, db):
        with pytest.raises(UnknownRelationError):
            db.relation("zzz")

    def test_drop_relation(self, db):
        db.drop_relation("r")
        assert db.relation_names() == ()
        with pytest.raises(UnknownRelationError):
            db.drop_relation("r")

    def test_drop_relation_removes_indexes(self, db):
        db.create_index("r", ["A"])
        db.drop_relation("r")
        assert db.indexes.lookup("r", ("A",)) is None

    def test_schema_catalog(self, db):
        catalog = db.schema_catalog()
        assert catalog["r"].names == ("A", "B")

    def test_instances_reflect_live_state(self, db):
        instances = db.instances()
        with db.transact() as txn:
            txn.insert("r", (3, 4))
        # instances maps to the live relation objects.
        assert (3, 4) in instances["r"]


class TestCommitPipeline:
    def test_hooks_called_with_deltas(self, db):
        seen = []
        db.add_commit_hook(lambda txn_id, deltas: seen.append((txn_id, deltas)))
        with db.transact() as txn:
            txn.insert("r", (3, 4))
        assert len(seen) == 1
        assert seen[0][1]["r"].inserted == {(3, 4): 1}

    def test_hooks_called_in_registration_order(self, db):
        order = []
        db.add_commit_hook(lambda *_: order.append("first"))
        db.add_commit_hook(lambda *_: order.append("second"))
        with db.transact() as txn:
            txn.insert("r", (3, 4))
        assert order == ["first", "second"]

    def test_hook_sees_post_state(self, db):
        observed = []
        db.add_commit_hook(
            lambda *_: observed.append(set(db.relation("r").value_tuples()))
        )
        with db.transact() as txn:
            txn.insert("r", (3, 4))
        assert (3, 4) in observed[0]

    def test_remove_hook(self, db):
        calls = []
        hook = lambda *_: calls.append(1)  # noqa: E731
        db.add_commit_hook(hook)
        db.remove_commit_hook(hook)
        with db.transact() as txn:
            txn.insert("r", (3, 4))
        assert calls == []

    def test_remove_unknown_hook_is_noop(self, db):
        db.remove_commit_hook(lambda *_: None)

    def test_empty_transaction_fires_hooks_with_empty_deltas(self, db):
        seen = []
        db.add_commit_hook(lambda txn_id, deltas: seen.append(deltas))
        with db.transact():
            pass
        assert seen == [{}]

    def test_log_records_commits(self, db):
        with db.transact() as txn:
            txn.insert("r", (3, 4))
        assert len(db.log) == 1

    def test_empty_commit_not_logged(self, db):
        with db.transact():
            pass
        assert len(db.log) == 0

    def test_indexes_maintained_through_commits(self, db):
        index = db.create_index("r", ["A"])
        with db.transact() as txn:
            txn.insert("r", (3, 4))
            txn.delete("r", (1, 2))
        assert index.probe((3,)) == {(3, 4)}
        assert index.probe((1,)) == frozenset()


class TestApplyHelper:
    def test_apply_inserts_and_deletes(self, db):
        deltas = db.apply(inserts={"r": [(3, 4)]}, deletes={"r": [(1, 2)]})
        assert (3, 4) in db.relation("r")
        assert (1, 2) not in db.relation("r")
        assert deltas["r"].inserted == {(3, 4): 1}

    def test_apply_empty(self, db):
        assert db.apply() == {}


class TestCloneData:
    def test_clone_is_deep_for_contents(self, db):
        clone = db.clone_data()
        with db.transact() as txn:
            txn.insert("r", (9, 9))
        assert (9, 9) not in clone.relation("r")

    def test_clone_has_no_hooks(self, db):
        calls = []
        db.add_commit_hook(lambda *_: calls.append(1))
        clone = db.clone_data()
        with clone.transact() as txn:
            txn.insert("r", (9, 9))
        assert calls == []


class TestDdlHooks:
    def test_create_and_drop_relation_events(self, db):
        events = []
        db.add_ddl_hook(lambda event, name: events.append((event, name)))
        db.create_relation("s", ["X"])
        db.drop_relation("s")
        assert ("create_relation", "s") in events
        assert ("drop_relation", "s") in events

    def test_index_events_via_facade(self, db):
        events = []
        db.add_ddl_hook(lambda event, name: events.append((event, name)))
        db.create_index("r", ["A"])
        db.drop_index("r", ["A"])
        assert events == [("create_index", "r"), ("drop_index", "r")]

    def test_index_events_via_manager_directly(self, db):
        events = []
        db.add_ddl_hook(lambda event, name: events.append((event, name)))
        db.indexes.create_index(db.relation("r"), "r", ["A"])
        db.indexes.drop_index("r", ["A"])
        assert events == [("create_index", "r"), ("drop_index", "r")]

    def test_no_event_for_noop_index_changes(self, db):
        events = []
        db.add_ddl_hook(lambda event, name: events.append((event, name)))
        db.create_index("r", ["A"])
        db.create_index("r", ["A"])  # already exists
        db.drop_index("r", ["A"])
        assert not db.drop_index("r", ["A"])  # already gone
        assert events == [("create_index", "r"), ("drop_index", "r")]

    def test_drop_relation_reports_its_index_drops(self, db):
        events = []
        db.create_index("r", ["A"])
        db.add_ddl_hook(lambda event, name: events.append((event, name)))
        db.drop_relation("r")
        assert ("drop_index", "r") in events
        assert events[-1] == ("drop_relation", "r")

    def test_remove_ddl_hook(self, db):
        events = []
        hook = lambda event, name: events.append(event)
        db.add_ddl_hook(hook)
        db.remove_ddl_hook(hook)
        db.remove_ddl_hook(hook)  # no-op when absent
        db.create_index("r", ["A"])
        assert events == []
