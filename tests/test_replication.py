"""Tests for the durability & replication subsystem.

Covers the WAL codec and segment mechanics, the torn-tail/corruption
distinction, checkpointing, the kill-and-recover acceptance round-trip
(base relations plus immediate *and* deferred views byte-for-byte), the
changefeed follower, the CLI verbs, and property tests showing that
snapshot + WAL replay reproduces every relation and every view exactly
— multiplicity counters included.
"""

import json
import os
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BaseRef,
    Database,
    DurabilityManager,
    Follower,
    MaintenancePolicy,
    Recovery,
    ReplicationError,
    ViewMaintainer,
    check_view_consistency,
    recover,
)
from repro.instrumentation import CostRecorder, recording
from repro.replication.checkpoints import (
    Checkpoint,
    latest_checkpoint_path,
    write_checkpoint,
)
from repro.replication.wal import (
    WalCorruptionError,
    WalReader,
    WalWriter,
    decode_line,
    encode_record,
    segment_paths,
)

VIEW_EXPR = (
    BaseRef("r")
    .join(BaseRef("s"))
    .select("A < 10 and B = C")
    .project(["A", "D"])
)
DEFERRED_EXPR = BaseRef("r").select("A >= 5").project(["B"])


def make_leader(directory, **wal_options):
    db = Database()
    db.create_relation("r", ["A", "B"], [(1, 2), (5, 10), (7, 10)])
    db.create_relation("s", ["C", "D"], [(2, 20), (10, 30)])
    durability = DurabilityManager(db, directory, **wal_options)
    maintainer = ViewMaintainer(db)
    maintainer.define_view("v", VIEW_EXPR)
    maintainer.define_view("d", DEFERRED_EXPR, policy=MaintenancePolicy.DEFERRED)
    durability.checkpoint(maintainer)
    return db, durability, maintainer


def churn(db, transactions, seed=0):
    rng = random.Random(seed)
    for _ in range(transactions):
        with db.transact() as txn:
            a = rng.randrange(12)
            txn.insert("r", (a, rng.randrange(12)))
            if rng.random() < 0.4:
                txn.insert("s", (rng.randrange(12), rng.randrange(40)))


# ----------------------------------------------------------------------
# Record codec
# ----------------------------------------------------------------------

class TestRecordCodec:
    def test_round_trip(self):
        doc = {"r": {"inserted": [[1, 2]], "deleted": []}}
        record = decode_line(encode_record(7, 12, doc).rstrip(b"\n"))
        assert record.sequence == 7
        assert record.txn_id == 12
        assert record.deltas_doc == doc

    def test_flipped_byte_fails_checksum(self):
        line = encode_record(1, 1, {"r": {"inserted": [[3, 4]], "deleted": []}})
        damaged = line.replace(b"[3,4]", b"[3,5]")
        assert decode_line(damaged.rstrip(b"\n")) is None

    def test_truncated_line_is_damage(self):
        line = encode_record(1, 1, {})
        assert decode_line(line[: len(line) // 2]) is None

    def test_non_record_json_is_damage(self):
        assert decode_line(b'{"hello": "world"}') is None

    def test_encoding_is_deterministic(self):
        doc = {"r": {"inserted": [[1, 2], [3, 4]], "deleted": [[5, 6]]}}
        assert encode_record(3, 9, doc) == encode_record(3, 9, doc)


# ----------------------------------------------------------------------
# Writer / reader mechanics
# ----------------------------------------------------------------------

class TestWalMechanics:
    def test_append_read_round_trip(self, tmp_path):
        directory = str(tmp_path)
        with WalWriter(directory) as writer:
            for txn in range(1, 6):
                doc = {"r": {"inserted": [[txn, txn]], "deleted": []}}
                assert writer.append(txn, doc) == txn
        records = list(WalReader(directory).records())
        assert [r.sequence for r in records] == [1, 2, 3, 4, 5]
        assert [r.txn_id for r in records] == [1, 2, 3, 4, 5]

    def test_records_after_cursor(self, tmp_path):
        directory = str(tmp_path)
        with WalWriter(directory) as writer:
            for txn in range(1, 6):
                writer.append(txn, {})
        tail = [r.sequence for r in WalReader(directory).records(after=3)]
        assert tail == [4, 5]

    def test_rotation_creates_segments(self, tmp_path):
        directory = str(tmp_path)
        with WalWriter(directory, segment_bytes=200) as writer:
            for txn in range(1, 11):
                writer.append(txn, {"r": {"inserted": [[txn, 0]], "deleted": []}})
        segments = segment_paths(directory)
        assert len(segments) > 1
        # Segment names bound their contents: each starts at its first seq.
        assert segments[0][0] == 1
        assert [r.sequence for r in WalReader(directory).records()] == list(
            range(1, 11)
        )

    def test_reopen_resumes_sequence(self, tmp_path):
        directory = str(tmp_path)
        with WalWriter(directory) as writer:
            writer.append(1, {})
            writer.append(2, {})
        with WalWriter(directory) as writer:
            assert writer.last_sequence == 2
            assert writer.append(3, {}) == 3
        assert WalReader(directory).last_sequence() == 3

    def test_prune_removes_covered_segments(self, tmp_path):
        directory = str(tmp_path)
        with WalWriter(directory, segment_bytes=200) as writer:
            for txn in range(1, 11):
                writer.append(txn, {"r": {"inserted": [[txn, 0]], "deleted": []}})
            before = len(segment_paths(directory))
            removed = writer.prune_through(writer.last_sequence)
            assert removed == before - 1  # the active segment survives
            # The surviving tail still reads cleanly from the cursor.
            assert list(WalReader(directory).records(after=10)) == []

    def test_bad_sync_mode_rejected(self, tmp_path):
        with pytest.raises(ReplicationError):
            WalWriter(str(tmp_path), sync="sometimes")

    def test_missing_directory_rejected_by_reader(self, tmp_path):
        with pytest.raises(ReplicationError):
            WalReader(str(tmp_path / "nope"))

    def test_wal_counters_charged(self, tmp_path):
        recorder = CostRecorder()
        with recording(recorder):
            with WalWriter(str(tmp_path)) as writer:
                writer.append(1, {})
                writer.append(2, {})
            list(WalReader(str(tmp_path)).records())
        assert recorder.get("wal_records_appended") == 2
        assert recorder.get("wal_records_read") == 2
        assert recorder.get("wal_fsyncs") >= 2
        assert recorder.get("wal_bytes_written") > 0


# ----------------------------------------------------------------------
# Torn tails vs. corruption
# ----------------------------------------------------------------------

def _only_segment(directory):
    (pair,) = segment_paths(directory)
    return pair[1]


class TestTornTail:
    def write_log(self, directory, n=3):
        with WalWriter(directory) as writer:
            for txn in range(1, n + 1):
                writer.append(txn, {"r": {"inserted": [[txn, txn]], "deleted": []}})

    def test_reader_stops_at_torn_tail(self, tmp_path):
        directory = str(tmp_path)
        self.write_log(directory)
        path = _only_segment(directory)
        with open(path, "ab") as stream:
            stream.write(b'{"body": {"seq": 4, "txn"')  # crash mid-append
        reader = WalReader(directory)
        assert [r.sequence for r in reader.records()] == [1, 2, 3]
        assert reader.tail_damage is not None
        assert reader.tail_damage.path == path

    def test_writer_truncates_torn_tail(self, tmp_path):
        directory = str(tmp_path)
        self.write_log(directory)
        path = _only_segment(directory)
        clean_size = os.path.getsize(path)
        with open(path, "ab") as stream:
            stream.write(b"garbage that never became a record")
        with WalWriter(directory) as writer:
            assert writer.last_sequence == 3
            assert os.path.getsize(path) == clean_size
            assert writer.append(4, {}) == 4
        assert WalReader(directory).last_sequence() == 4

    def test_interior_damage_raises(self, tmp_path):
        directory = str(tmp_path)
        self.write_log(directory)
        path = _only_segment(directory)
        lines = open(path, "rb").read().splitlines(keepends=True)
        lines[1] = lines[1][:10] + b"X" + lines[1][11:]  # damage record 2 of 3
        with open(path, "wb") as stream:
            stream.writelines(lines)
        with pytest.raises(WalCorruptionError):
            list(WalReader(directory).records())
        with pytest.raises(WalCorruptionError):
            WalWriter(directory)  # open-time scan must refuse too

    def test_sequence_gap_raises(self, tmp_path):
        directory = str(tmp_path)
        path = os.path.join(directory, "wal-0000000000000001.jsonl")
        with open(path, "wb") as stream:
            stream.write(encode_record(1, 1, {}))
            stream.write(encode_record(3, 3, {}))  # 2 is missing
        with pytest.raises(WalCorruptionError):
            list(WalReader(directory).records())

    def test_writer_repairs_sheared_final_newline(self, tmp_path):
        # Found by the simulation harness (a crash cutting exactly one
        # byte): the torn write can shear just the terminating newline
        # off the final record, leaving its JSON intact.  The reader
        # still decodes it, so tail recovery keeps it — and a naive
        # append would weld the next record onto the same line, which
        # later reads as mid-log corruption.  The writer must restore
        # the terminator before appending.
        directory = str(tmp_path)
        self.write_log(directory)
        path = _only_segment(directory)
        with open(path, "r+b") as stream:
            stream.truncate(os.path.getsize(path) - 1)  # shear the "\n"
        with WalWriter(directory) as writer:
            assert writer.last_sequence == 3  # record 3 is intact
            assert writer.append(4, {}) == 4
        assert [r.sequence for r in WalReader(directory).records()] == [1, 2, 3, 4]


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------

class TestCheckpoints:
    def test_round_trip_with_views(self, tmp_path):
        directory = str(tmp_path)
        db, durability, maintainer = make_leader(directory)
        path = latest_checkpoint_path(directory)
        checkpoint = Checkpoint.load(path)
        assert checkpoint.view_names() == ("d", "v")
        assert checkpoint.view_policy("d") == "deferred"
        rebuilt = checkpoint.build_database()
        for name in db.relation_names():
            assert rebuilt.relation(name) == db.relation(name)
        assert checkpoint.view_contents("v") == maintainer.view("v").contents

    def test_newest_checkpoint_wins(self, tmp_path):
        directory = str(tmp_path)
        db, durability, maintainer = make_leader(directory)
        churn(db, 3)
        durability.checkpoint(maintainer)
        assert Checkpoint.load(latest_checkpoint_path(directory)).wal_sequence == 3

    def test_checkpoint_without_maintainer_omits_views(self, tmp_path):
        directory = str(tmp_path)
        db = Database()
        db.create_relation("r", ["A", "B"], [(1, 2)])
        path = write_checkpoint(directory, db, 0)
        checkpoint = Checkpoint.load(path)
        assert checkpoint.view_names() == ()
        assert checkpoint.view_contents("v") is None

    def test_wrong_format_rejected(self, tmp_path):
        with pytest.raises(ReplicationError):
            Checkpoint({"format": 999})

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ReplicationError):
            latest_checkpoint_path(str(tmp_path / "nope"))


# ----------------------------------------------------------------------
# Kill-and-recover round trip (the acceptance criterion)
# ----------------------------------------------------------------------

class TestCrashRecovery:
    def test_recovery_matches_pre_crash_state(self, tmp_path):
        directory = str(tmp_path)
        db, durability, maintainer = make_leader(directory)
        churn(db, 8, seed=1)
        durability.checkpoint(maintainer)  # mid-stream checkpoint + prune
        churn(db, 7, seed=2)
        maintainer.refresh("d")
        expected_relations = {n: db.relation(n) for n in db.relation_names()}
        expected_v = maintainer.view("v").contents
        expected_d = maintainer.view("d").contents
        del db, durability, maintainer  # crash: nothing is closed

        def restore(recovery, fresh):
            recovery.restore_view(fresh, "v", VIEW_EXPR)
            recovery.restore_view(fresh, "d", DEFERRED_EXPR)

        recovery, recovered = recover(directory, restore)
        assert recovery.tail_damage is None
        for name, relation in expected_relations.items():
            assert recovery.database.relation(name) == relation
        assert recovered.view("v").contents == expected_v
        # The deferred view's backlog re-accumulated during replay.
        recovered.refresh("d")
        assert recovered.view("d").contents == expected_d
        check_view_consistency(recovered.view("v"), recovery.database.instances())

    def test_recovered_views_catch_up_differentially(self, tmp_path):
        directory = str(tmp_path)
        db, durability, maintainer = make_leader(directory)
        churn(db, 6, seed=3)
        del db, durability, maintainer

        recovery = Recovery(directory)
        fresh = ViewMaintainer(recovery.database)
        recovery.restore_view(fresh, "v", VIEW_EXPR)
        assert recovery.replay() == 6
        stats = fresh.stats("v")
        # Replay went through the maintenance pipeline, not re-evaluation:
        # every replayed transaction was seen and screened.
        assert stats.transactions_seen == 6
        assert stats.tuples_screened > 0

    def test_restored_policy_defaults_from_checkpoint(self, tmp_path):
        directory = str(tmp_path)
        db, durability, maintainer = make_leader(directory)
        del db, durability, maintainer
        recovery = Recovery(directory)
        fresh = ViewMaintainer(recovery.database)
        recovery.restore_view(fresh, "d", DEFERRED_EXPR)
        assert fresh.policy("d") is MaintenancePolicy.DEFERRED

    def test_recovery_requires_checkpoint(self, tmp_path):
        directory = str(tmp_path)
        with WalWriter(directory) as writer:
            writer.append(1, {})
        with pytest.raises(ReplicationError, match="checkpoint"):
            Recovery(directory)

    def test_recovery_tolerates_torn_tail(self, tmp_path):
        directory = str(tmp_path)
        db, durability, maintainer = make_leader(directory)
        churn(db, 4, seed=4)
        del db, durability, maintainer
        (_, path) = segment_paths(directory)[-1]
        with open(path, "ab") as stream:
            stream.write(b'{"body": {"seq":')
        recovery, recovered = recover(
            directory, lambda rec, m: rec.restore_view(m, "v", VIEW_EXPR)
        )
        assert recovery.tail_damage is not None
        assert recovery.last_sequence == 4
        check_view_consistency(recovered.view("v"), recovery.database.instances())

    def test_resumed_leader_appends_after_recovery(self, tmp_path):
        directory = str(tmp_path)
        db, durability, maintainer = make_leader(directory)
        churn(db, 3, seed=5)
        del db, durability, maintainer

        recovery, recovered = recover(
            directory, lambda rec, m: rec.restore_view(m, "v", VIEW_EXPR)
        )
        resumed = DurabilityManager(recovery.database, directory)
        assert resumed.position == 3
        with recovery.database.transact() as txn:
            txn.insert("r", (2, 2))
        assert resumed.position == 4
        # Transaction ids keep advancing past everything ever committed.
        assert recovery.database.next_txn_id > 4
        resumed.close()


# ----------------------------------------------------------------------
# Followers
# ----------------------------------------------------------------------

class TestFollower:
    def test_follower_converges_with_own_view(self, tmp_path):
        directory = str(tmp_path)
        db, durability, maintainer = make_leader(directory)

        follower = Follower(directory)
        follower.define_view("mine", BaseRef("s").select("D > 20").project(["C"]))
        churn(db, 10, seed=6)
        assert follower.lag() == 10
        assert follower.poll() == 10
        assert follower.lag() == 0
        for name in db.relation_names():
            assert follower.database.relation(name) == db.relation(name)
        check_view_consistency(follower.view("mine"), follower.database.instances())

    def test_follower_matches_leader_definition(self, tmp_path):
        directory = str(tmp_path)
        db, durability, maintainer = make_leader(directory)
        follower = Follower(directory)
        follower.define_view("v2", VIEW_EXPR)
        churn(db, 8, seed=7)
        follower.poll()
        assert follower.view("v2").contents == maintainer.view("v").contents

    def test_poll_is_incremental(self, tmp_path):
        directory = str(tmp_path)
        db, durability, maintainer = make_leader(directory)
        follower = Follower(directory)
        churn(db, 5, seed=8)
        assert follower.poll(max_records=2) == 2
        assert follower.position == 2
        assert follower.poll() == 3
        churn(db, 2, seed=9)
        assert follower.poll() == 2
        assert follower.poll() == 0

    def test_follower_requires_checkpoint(self, tmp_path):
        directory = str(tmp_path)
        with WalWriter(directory) as writer:
            writer.append(1, {})
        with pytest.raises(ReplicationError, match="checkpoint"):
            Follower(directory)


# ----------------------------------------------------------------------
# CLI verbs
# ----------------------------------------------------------------------

class TestCliVerbs:
    def test_recover_verb(self, tmp_path, capsys):
        from repro.cli import main

        directory = str(tmp_path)
        db, durability, maintainer = make_leader(directory)
        for a in (20, 21, 22, 23):
            with db.transact() as txn:
                txn.insert("r", (a, a))
        assert main(["recover", directory]) == 0
        out = capsys.readouterr().out
        assert "checkpoint" in out
        assert "replayed 4" in out

    def test_follow_verb(self, tmp_path, capsys):
        from repro.cli import main

        directory = str(tmp_path)
        db, durability, maintainer = make_leader(directory)
        for a in (20, 21, 22):
            with db.transact() as txn:
                txn.insert("r", (a, a))
        assert main(["follow", directory, "--once"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("seq=1 ")

    def test_follow_from_cursor(self, tmp_path, capsys):
        from repro.cli import main

        directory = str(tmp_path)
        db, durability, maintainer = make_leader(directory)
        for a in (20, 21, 22):
            with db.transact() as txn:
                txn.insert("r", (a, a))
        assert main(["follow", directory, "--once", "--from", "2"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 1
        assert lines[0].startswith("seq=3 ")

    def test_recover_missing_directory_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["recover", str(tmp_path / "nope")]) == 1
        assert "error:" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Satellite regressions
# ----------------------------------------------------------------------

class TestSatelliteRegressions:
    def test_drop_relation_with_multiple_indexes(self):
        db = Database()
        db.create_relation("r", ["A", "B"], [(1, 2)])
        db.create_index("r", ["A"])
        db.create_index("r", ["B"])
        db.create_index("r", ["A", "B"])
        db.drop_relation("r")
        assert "r" not in db.relation_names()
        assert db.indexes.indexes_on("r") == ()

    def test_begin_pins_and_advances_txn_ids(self):
        db = Database()
        db.create_relation("r", ["A"], [])
        with db.transact(txn_id=7) as txn:
            txn.insert("r", (1,))
        assert db.next_txn_id == 8
        # Out-of-order replay ids never move the counter backwards.
        with db.transact(txn_id=3) as txn:
            txn.insert("r", (2,))
        assert db.next_txn_id == 8
        with db.transact() as txn:  # normal allocation resumes
            txn.insert("r", (3,))
        assert db.next_txn_id == 9


# ----------------------------------------------------------------------
# Property tests: replay reproduces everything byte-for-byte
# ----------------------------------------------------------------------

ops = st.sampled_from(["insert_r", "insert_s", "delete_r", "modify_r"])
txn_scripts = st.lists(
    st.tuples(ops, st.integers(0, 9), st.integers(0, 9)), min_size=1, max_size=4
)


def run_script(db, scripts):
    for script in scripts:
        with db.transact() as txn:
            for op, a, b in script:
                if op == "insert_r":
                    txn.insert("r", (a, b))
                elif op == "insert_s":
                    txn.insert("s", (a, b))
                elif op == "delete_r":
                    if (a, b) in db.relation("r"):
                        txn.delete("r", (a, b))
                elif op == "modify_r":
                    if (a, b) in db.relation("r"):
                        txn.update("r", (a, b), (b, a))


class TestReplayProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(txn_scripts, max_size=8))
    def test_snapshot_plus_replay_reproduces_all_state(self, scripts):
        import tempfile

        with tempfile.TemporaryDirectory() as directory:
            db, durability, maintainer = make_leader(directory)
            run_script(db, scripts)
            maintainer.refresh("d")
            expected = {n: db.relation(n) for n in db.relation_names()}
            expected_views = {
                "v": maintainer.view("v").contents,
                "d": maintainer.view("d").contents,
            }
            del db, durability, maintainer

            def restore(recovery, fresh):
                recovery.restore_view(fresh, "v", VIEW_EXPR)
                recovery.restore_view(fresh, "d", DEFERRED_EXPR)

            recovery, recovered = recover(directory, restore)
            recovered.refresh("d")
            for name, relation in expected.items():
                assert recovery.database.relation(name) == relation
            for name, contents in expected_views.items():
                got = recovered.view(name).contents
                assert got == contents
                # Byte-for-byte includes the projection multiplicities.
                assert got.counts() == contents.counts()

    @settings(max_examples=25, deadline=None)
    @given(st.lists(txn_scripts, min_size=1, max_size=5), st.data())
    def test_arbitrary_tail_truncation_never_crashes(self, scripts, data):
        import tempfile

        with tempfile.TemporaryDirectory() as directory:
            db, durability, maintainer = make_leader(directory)
            run_script(db, scripts)
            del db, durability, maintainer
            segments = segment_paths(directory)
            if not segments:  # every transaction was a net no-op
                return
            (_, path) = segments[-1]
            size = os.path.getsize(path)
            cut = data.draw(st.integers(min_value=0, max_value=size))
            with open(path, "r+b") as stream:
                stream.truncate(cut)
            # A crash can only lose a suffix: recovery must come up on
            # the longest intact prefix, never raise.
            recovery, recovered = recover(
                directory, lambda rec, m: rec.restore_view(m, "v", VIEW_EXPR)
            )
            assert recovery.last_sequence <= len(scripts)
            check_view_consistency(
                recovered.view("v"), recovery.database.instances()
            )


class TestCrashPointMatrix:
    """Every record boundary of a 50-commit log is a crash point.

    Generalizes the ad-hoc tail-truncation cases above: the log is
    written into a single segment, then for *each* record boundary a
    copy of the directory is truncated at exactly that boundary and
    recovered.  Recovery must converge to the state an incremental
    oracle replay reaches after the same number of records — base
    relations byte-for-byte and the restored view consistent — at
    every one of the ~50 crash points, not just the handful an ad-hoc
    test picks.
    """

    def test_recovery_at_every_record_boundary(self, tmp_path):
        import shutil

        from repro.engine.log import replay_records
        from repro.replication.recovery import decode_wal_record

        directory = str(tmp_path / "leader")
        os.makedirs(directory)
        db, durability, maintainer = make_leader(
            directory, segment_bytes=1 << 20
        )
        rng = random.Random(42)
        for _ in range(50):
            with db.transact() as txn:
                for _ in range(rng.randint(1, 3)):
                    name = rng.choice(["r", "s"])
                    row = (rng.randrange(8), rng.randrange(8))
                    if rng.random() < 0.7:
                        txn.insert(name, row)
                    else:
                        txn.delete(name, row)
        segments = segment_paths(directory)
        assert len(segments) == 1, "matrix assumes a single segment"
        _, segment = segments[0]
        with open(segment, "rb") as stream:
            payload = stream.read()
        boundaries = [0] + [
            index + 1 for index, byte in enumerate(payload) if byte == 0x0A
        ]

        # The expected state after k records, built by an incremental
        # oracle replay with no maintainer involved.
        records = list(WalReader(directory).records())
        assert len(boundaries) == len(records) + 1

        def snapshot(database):
            return {
                name: dict(database.relation(name).counts())
                for name in database.relation_names()
            }

        checkpoint = Checkpoint.load(latest_checkpoint_path(directory))
        oracle_db = checkpoint.build_database()
        oracle_db.log.advance_sequence(checkpoint.wal_sequence + 1)
        expected = [snapshot(oracle_db)]
        for record in records:
            replay_records(
                oracle_db,
                [decode_wal_record(oracle_db, record)],
                preserve_txn_ids=True,
            )
            expected.append(snapshot(oracle_db))

        for k, offset in enumerate(boundaries):
            scratch = str(tmp_path / f"crash-{k}")
            shutil.copytree(directory, scratch)
            copied_segment = os.path.join(scratch, os.path.basename(segment))
            with open(copied_segment, "r+b") as stream:
                stream.truncate(offset)
            recovery, recovered = recover(
                scratch, lambda rec, m: rec.restore_view(m, "v", VIEW_EXPR)
            )
            assert snapshot(recovery.database) == expected[k], (
                f"crash at record boundary {k} diverged"
            )
            assert recovery.last_sequence == (
                records[k - 1].sequence if k else checkpoint.wal_sequence
            )
            check_view_consistency(
                recovered.view("v"), recovery.database.instances()
            )
