"""Unit and property tests for Section 5.2 multiplicity counting."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.evaluate import project_relation
from repro.algebra.relation import Delta, Relation
from repro.algebra.schema import RelationSchema
from repro.core.counting import (
    counted_projection_distributes,
    maintain_project_view,
    project_delta,
)
from repro.errors import MaintenanceError


@pytest.fixture
def schema():
    return RelationSchema(["A", "B"])


class TestExample51:
    """The paper's Example 5.1: r = {(1,10), (2,10), (3,20)}, V = π_B(r)."""

    def _view(self, schema):
        r = Relation.from_rows(schema, [(1, 10), (2, 10), (3, 20)])
        return project_relation(r, ["B"])

    def test_initial_counts(self, schema):
        view = self._view(schema)
        assert view.count_of((10,)) == 2
        assert view.count_of((20,)) == 1

    def test_easy_deletion(self, schema):
        # delete(R, {(3,20)}): view loses 20.
        view = self._view(schema)
        maintain_project_view(view, Delta(schema, deleted=[(3, 20)]), ["B"])
        assert (20,) not in view
        assert view.count_of((10,)) == 2

    def test_hard_deletion_kept_by_counter(self, schema):
        # delete(R, {(1,10)}): naive set semantics would wrongly drop
        # 10 from the view; the counter keeps it (count 2 -> 1).
        view = self._view(schema)
        maintain_project_view(view, Delta(schema, deleted=[(1, 10)]), ["B"])
        assert view.count_of((10,)) == 1

    def test_second_deletion_removes(self, schema):
        view = self._view(schema)
        maintain_project_view(view, Delta(schema, deleted=[(1, 10)]), ["B"])
        maintain_project_view(view, Delta(schema, deleted=[(2, 10)]), ["B"])
        assert (10,) not in view

    def test_insert_increments(self, schema):
        view = self._view(schema)
        maintain_project_view(view, Delta(schema, inserted=[(9, 10)]), ["B"])
        assert view.count_of((10,)) == 3

    def test_schema_mismatch_rejected(self, schema):
        view = self._view(schema)
        with pytest.raises(MaintenanceError):
            maintain_project_view(view, Delta(schema), ["A"])


class TestProjectDelta:
    def test_counts_aggregate(self, schema):
        delta = Delta(schema, inserted=[(1, 10), (2, 10)], deleted=[(3, 20)])
        ins, dels = project_delta(delta, ["B"])
        assert ins == {(10,): 2}
        assert dels == {(20,): 1}


class TestDistributivity:
    """π_X(r1 − r2) = π_X(r1) − π_X(r2) under counted semantics — the
    identity the §5.2 redefinition restores."""

    def test_paper_counterexample_now_holds(self, schema):
        r1 = Relation.from_rows(schema, [(1, 10), (2, 10), (3, 20)])
        r2 = Relation.from_rows(schema, [(1, 10)])
        assert counted_projection_distributes(r1, r2, ["B"])

    @settings(max_examples=200, deadline=None)
    @given(st.data())
    def test_random_counted_relations(self, data):
        schema = RelationSchema(["A", "B"])
        rows = data.draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=4),
                    st.integers(min_value=0, max_value=4),
                ),
                min_size=0,
                max_size=12,
            )
        )
        r1 = Relation(schema)
        for row in rows:
            r1.add(row)
        # r2: a random counted sub-multiset of r1.
        r2 = Relation(schema)
        for values, count in r1.items():
            take = data.draw(st.integers(min_value=0, max_value=count))
            if take:
                r2.add(values, count=take)
        assert counted_projection_distributes(r1, r2, ["B"])

    def test_view_counts_match_recomputation_under_updates(self, schema):
        """Differentially maintained project-view counts stay equal to
        the from-scratch projection across a random update stream."""
        rng = random.Random(77)
        base = Relation(schema)
        for _ in range(10):
            row = (rng.randint(0, 5), rng.randint(0, 3))
            if row not in base:
                base.add(row)
        view = project_relation(base, ["B"])
        for _ in range(60):
            current = set(base.value_tuples())
            row = (rng.randint(0, 5), rng.randint(0, 3))
            if row in current:
                delta = Delta(schema, deleted=[row])
                base.discard(row)
            else:
                delta = Delta(schema, inserted=[row])
                base.add(row)
            maintain_project_view(view, delta, ["B"])
            assert view == project_relation(base, ["B"])
