"""Unit tests for the order-flow macro workload."""

import pytest

from repro.core.consistency import check_view_consistency
from repro.core.maintainer import ViewMaintainer
from repro.errors import ReproError
from repro.workloads.orderflow import OrderFlow


class TestSchema:
    def test_tables_populated(self):
        flow = OrderFlow(customers=20, products=10, lineitems=50)
        db = flow.database
        assert len(db.relation("customer")) == 20
        assert len(db.relation("product")) == 10
        assert len(db.relation("lineitem")) == 50

    def test_deterministic(self):
        a = OrderFlow(customers=20, products=10, lineitems=50, seed=3)
        b = OrderFlow(customers=20, products=10, lineitems=50, seed=3)
        assert a.database.relation("lineitem") == b.database.relation("lineitem")

    def test_invalid_sizes(self):
        with pytest.raises(ReproError):
            OrderFlow(customers=0)


class TestViews:
    def test_definitions_register_in_order(self):
        flow = OrderFlow(customers=20, products=10, lineitems=50)
        maintainer = ViewMaintainer(flow.database)
        for name, expression in flow.view_definitions().items():
            maintainer.define_view(name, expression)
        assert set(maintainer.view_names()) == {
            "open_lines",
            "open_premium",
            "pricey_open",
            "region_activity",
        }

    def test_open_premium_is_stacked(self):
        flow = OrderFlow(customers=20, products=10, lineitems=50)
        maintainer = ViewMaintainer(flow.database)
        for name, expression in flow.view_definitions().items():
            maintainer.define_view(name, expression)
        deps = maintainer._dependencies["open_premium"]
        assert "open_lines" in deps


class TestStream:
    def test_transactions_yield_per_commit(self):
        flow = OrderFlow(customers=20, products=10, lineitems=50)
        count = sum(1 for _ in flow.transactions(15))
        assert count == 15

    def test_views_stay_consistent_through_stream(self):
        flow = OrderFlow(customers=15, products=8, lineitems=40)
        maintainer = ViewMaintainer(flow.database, auto_verify=False)
        for name, expression in flow.view_definitions().items():
            maintainer.define_view(name, expression)
        for i, _ in enumerate(flow.transactions(40)):
            if i % 10 == 9:
                for name in maintainer.view_names():
                    check_view_consistency(
                        maintainer.view(name),
                        maintainer._combined_instances(),
                    )

    def test_line_ids_never_collide(self):
        flow = OrderFlow(customers=15, products=8, lineitems=40)
        for _ in flow.transactions(30):
            pass
        lineitem = flow.database.relation("lineitem")
        ids = [row[0] for row in lineitem.value_tuples()]
        assert len(ids) == len(set(ids))
