"""Unit tests for integrity-assertion monitoring ([HS78] extension)."""

import pytest

from repro.algebra.expressions import BaseRef
from repro.engine.database import Database
from repro.errors import MaintenanceError
from repro.extensions.assertions import AssertionMonitor, IntegrityViolation


@pytest.fixture
def db():
    database = Database()
    # accounts(acct, balance); the invariant: no negative balances.
    database.create_relation("accounts", ["acct", "balance"], [(1, 100), (2, 0)])
    # orders(order_id, acct): every order's account must be "active"
    # (balance >= 1) — modelled below as a join assertion.
    database.create_relation("orders", ["order_id", "acct"], [(10, 1)])
    return database


@pytest.fixture
def monitor(db):
    return AssertionMonitor(db)


NEGATIVE_BALANCE = BaseRef("accounts").select("balance < 0")


class TestDeclaration:
    def test_declare_compiles(self, monitor):
        assertion = monitor.declare("non_negative", NEGATIVE_BALANCE)
        assert assertion.relation_names == {"accounts"}
        assert monitor.assertion_names() == ("non_negative",)

    def test_declare_rejects_currently_violated(self, db, monitor):
        with db.transact() as txn:
            txn.insert("accounts", (3, -5))
        with pytest.raises(IntegrityViolation):
            monitor.declare("non_negative", NEGATIVE_BALANCE)

    def test_duplicate_name_rejected(self, monitor):
        monitor.declare("a", NEGATIVE_BALANCE)
        with pytest.raises(MaintenanceError):
            monitor.declare("a", NEGATIVE_BALANCE)

    def test_drop(self, monitor):
        monitor.declare("a", NEGATIVE_BALANCE)
        monitor.drop("a")
        assert monitor.assertion_names() == ()
        with pytest.raises(MaintenanceError):
            monitor.drop("a")


class TestPreCommitValidation:
    def test_valid_transaction_passes(self, db, monitor):
        monitor.declare("non_negative", NEGATIVE_BALANCE)
        txn = db.begin()
        txn.insert("accounts", (3, 50))
        monitor.validate_transaction(txn)  # must not raise
        txn.commit()

    def test_violating_insert_rejected_before_commit(self, db, monitor):
        monitor.declare("non_negative", NEGATIVE_BALANCE)
        txn = db.begin()
        txn.insert("accounts", (3, -1))
        with pytest.raises(IntegrityViolation) as exc:
            monitor.validate_transaction(txn)
        assert (3, -1) in exc.value.witnesses
        txn.abort()
        assert (3, -1) not in db.relation("accounts")

    def test_update_into_violation_detected(self, db, monitor):
        monitor.declare("non_negative", NEGATIVE_BALANCE)
        txn = db.begin()
        txn.update("accounts", (1, 100), (1, -100))
        with pytest.raises(IntegrityViolation):
            monitor.validate_transaction(txn)

    def test_validation_is_side_effect_free(self, db, monitor):
        monitor.declare("non_negative", NEGATIVE_BALANCE)
        before = db.relation("accounts").copy()
        txn = db.begin()
        txn.insert("accounts", (3, -1))
        with pytest.raises(IntegrityViolation):
            monitor.validate_transaction(txn)
        assert db.relation("accounts") == before

    def test_screened_updates_skip_evaluation(self, db, monitor):
        """Updates the §4 filter proves irrelevant to the error
        predicate cost nothing — the [HS78] compile-time payoff."""
        from repro.instrumentation import CostRecorder, recording

        monitor.declare("non_negative", NEGATIVE_BALANCE)
        txn = db.begin()
        txn.insert("accounts", (3, 700))  # balance < 0 unsatisfiable
        recorder = CostRecorder()
        with recording(recorder):
            monitor.validate_transaction(txn)
        assert recorder.get("assertion_checks_screened") == 1
        assert recorder.get("differential_updates") == 0

    def test_join_assertion(self, db, monitor):
        """An assertion spanning two relations: no order may reference
        an account with zero balance."""
        predicate = (
            BaseRef("orders")
            .join(BaseRef("accounts"))
            .select("balance <= 0")
        )
        monitor.declare("orders_active_accounts", predicate)
        txn = db.begin()
        txn.insert("orders", (11, 2))  # account 2 has balance 0
        with pytest.raises(IntegrityViolation):
            monitor.validate_transaction(txn)

    def test_join_assertion_other_side(self, db, monitor):
        predicate = (
            BaseRef("orders")
            .join(BaseRef("accounts"))
            .select("balance <= 0")
        )
        monitor.declare("orders_active_accounts", predicate)
        # Draining account 1 to zero while it has an order violates too.
        txn = db.begin()
        txn.update("accounts", (1, 100), (1, 0))
        with pytest.raises(IntegrityViolation):
            monitor.validate_transaction(txn)

    def test_read_only_transaction_passes(self, db, monitor):
        monitor.declare("non_negative", NEGATIVE_BALANCE)
        txn = db.begin()
        monitor.validate_transaction(txn)
        txn.commit()


class TestPostCommitMonitoring:
    def test_monitor_records_violations(self, db, monitor):
        monitor.declare("non_negative", NEGATIVE_BALANCE)
        monitor.attach()
        with db.transact() as txn:
            txn.insert("accounts", (3, -7))
        assert len(monitor.observed_violations) == 1
        txn_id, name, witnesses = monitor.observed_violations[0]
        assert name == "non_negative"
        assert witnesses == [(3, -7)]

    def test_monitor_quiet_on_clean_commits(self, db, monitor):
        monitor.declare("non_negative", NEGATIVE_BALANCE)
        monitor.attach()
        with db.transact() as txn:
            txn.insert("accounts", (3, 7))
        assert monitor.observed_violations == []

    def test_detach(self, db, monitor):
        monitor.declare("non_negative", NEGATIVE_BALANCE)
        monitor.attach()
        monitor.detach()
        with db.transact() as txn:
            txn.insert("accounts", (3, -7))
        assert monitor.observed_violations == []
