"""The static view analyzer: paper-grounded verdicts, end to end.

Covers every finding class on concrete views (the paper's Example 4.1
and the Theorem 4.2 simultaneous-substitution setting among them),
strict registration, determinism of the rendered reports, the CLI
``analyze`` verb, plan-cache invalidation on constraint DDL, and a
Hypothesis property tying the static-irrelevance verdict to the
runtime per-tuple screen it replaces.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.conditions import Atom, Condition, Conjunction
from repro.algebra.expressions import BaseRef, to_normal_form
from repro.analysis import (
    CODE_SEVERITIES,
    F_DEAD_DISJUNCT,
    F_DEAD_TRUTH_ROWS,
    F_DUPLICATE_VIEW,
    F_LOOSE_BOUND,
    F_REDUNDANT_ATOM,
    F_STATIC_IRRELEVANCE,
    F_SUBSUMED_VIEW,
    F_UNBOUND_OLD_OPERAND,
    F_UNSATISFIABLE_CONDITION,
    Finding,
    Severity,
    analyze_definition,
)
from repro.cli import ShellError, run_analyze
from repro.core.irrelevance import RelevanceFilter, is_statically_irrelevant
from repro.core.maintainer import ViewMaintainer
from repro.engine.database import Database
from repro.errors import (
    ConstraintError,
    ConstraintViolationError,
    StrictAnalysisError,
    UnknownViewError,
)
from repro.instrumentation import CostRecorder, recording
from repro.workloads.scenarios import example_4_1
from tests.strategies import SPJ_TABLES, spj_expressions

EXAMPLES_SPEC = Path(__file__).resolve().parent.parent / "examples" / "analyze_views.txt"


def codes(findings) -> set[str]:
    return {f.code for f in findings}


def example_4_1_expression():
    return (
        BaseRef("r")
        .product(BaseRef("s"))
        .select("A < 10 and C > 5 and B = C")
        .project(["A", "D"])
    )


class TestExample41:
    """Section 4, Example 4.1 through the static analyzer."""

    def test_paper_view_is_satisfiable_with_no_errors(self):
        scenario = example_4_1()
        maintainer = ViewMaintainer(scenario.database)
        view = maintainer.define_view("u", scenario.expression)
        findings = analyze_definition(view.definition)
        assert all(f.severity is not Severity.ERROR for f in findings)
        assert F_UNSATISFIABLE_CONDITION not in codes(findings)
        assert F_REDUNDANT_ATOM not in codes(findings)
        assert F_DEAD_DISJUNCT not in codes(findings)

    def test_join_equality_propagates_an_unwritten_bound(self):
        # B = C and C > 5 entail B >= 6, but no screen states a bound
        # on B — exactly the implied-bound-tightening diagnostic.
        scenario = example_4_1()
        maintainer = ViewMaintainer(scenario.database)
        view = maintainer.define_view("u", scenario.expression)
        loose = [
            f
            for f in analyze_definition(view.definition)
            if f.code == F_LOOSE_BOUND
        ]
        assert loose, "expected a loose_bound finding for B"
        assert any("B lower" in f.subject for f in loose)
        assert all(f.severity is Severity.INFO for f in loose)

    def test_constraint_makes_r_statically_irrelevant(self):
        # Example 4.1's irrelevant insertion (11, 10) generalized: once
        # A >= 10 is a declared invariant of r, *every* legal update to
        # r is irrelevant (C ∧ K_r is unsatisfiable), so the compiled
        # plan drops r's screening entirely.
        db = Database()
        db.create_relation("r", ["A", "B"], [(12, 15)])
        db.create_relation("s", ["C", "D"], [(2, 10), (10, 20)])
        db.declare_constraint("r", "A >= 10")
        maintainer = ViewMaintainer(db)
        view = maintainer.define_view("u", example_4_1_expression())
        report = maintainer.analyze()
        found = codes(report.for_view("u"))
        assert F_STATIC_IRRELEVANCE in found
        assert F_DEAD_TRUTH_ROWS in found
        irrelevance = [
            f for f in report.for_view("u") if f.code == F_STATIC_IRRELEVANCE
        ]
        assert [f.subject for f in irrelevance] == ["r"]

        plan = maintainer.compiled_plan("u")
        assert plan is not None
        assert plan.static_irrelevant == frozenset({"r"})

        # Acceptance criterion: a legal update to r executes *zero*
        # per-tuple screening — the whole delta is statically dropped.
        recorder = CostRecorder()
        with recording(recorder):
            with db.transact() as txn:
                txn.insert("r", (11, 10))
        assert recorder.get("filter_tuples_checked") == 0
        assert recorder.get("static_tuples_dropped") == 1
        assert maintainer.stats("u").tuples_static_dropped == 1
        assert view.contents.counts() == {}

        # Updates to the unconstrained relation still screen per tuple.
        recorder = CostRecorder()
        with recording(recorder):
            with db.transact() as txn:
                txn.insert("s", (3, 4))
        assert recorder.get("filter_tuples_checked") >= 1


class TestExample42Simultaneous:
    """The Theorem 4.2 setting: every operand statically constrained."""

    @pytest.fixture
    def maintainer(self):
        db = Database()
        db.create_relation("r", ["A", "B"], [(12, 15)])
        db.create_relation("s", ["C", "D"], [(3, 10)])
        db.declare_constraint("r", "A >= 10")
        db.declare_constraint("s", "C <= 5")
        maintainer = ViewMaintainer(db)
        maintainer.define_view("u", example_4_1_expression())
        return maintainer

    def test_both_relations_proved_irrelevant(self, maintainer):
        report = maintainer.analyze()
        irrelevance = sorted(
            f.subject
            for f in report.for_view("u")
            if f.code == F_STATIC_IRRELEVANCE
        )
        assert irrelevance == ["r", "s"]
        plan = maintainer.compiled_plan("u")
        assert plan.static_irrelevant == frozenset({"r", "s"})
        # Every truth-table row needing a delta is dead: 2^2 - 1 = 3.
        dead = [
            f for f in report.for_view("u") if f.code == F_DEAD_TRUTH_ROWS
        ]
        assert len(dead) == 1
        assert "3" in dead[0].message

    def test_constrained_emptiness_is_not_unsatisfiability(self, maintainer):
        # The condition itself is satisfiable — only *legal* states
        # never feed the view — so check (a) must not fire.
        report = maintainer.analyze()
        assert F_UNSATISFIABLE_CONDITION not in codes(report.findings)

    def test_simultaneous_legal_updates_screen_nothing(self, maintainer):
        db = maintainer.database
        view = maintainer.view("u")
        before = view.contents.counts()
        recorder = CostRecorder()
        with recording(recorder):
            with db.transact() as txn:
                txn.insert("r", (11, 10))
                txn.insert("s", (4, 9))
        assert recorder.get("filter_tuples_checked") == 0
        assert recorder.get("static_tuples_dropped") == 2
        assert view.contents.counts() == before


class TestFindingClasses:
    """Each diagnostic class fires on a minimal dedicated view."""

    @pytest.fixture
    def db(self):
        db = Database()
        db.create_relation("r", ["A", "B"], [])
        db.create_relation("s", ["C", "D"], [])
        return db

    def test_unsatisfiable_condition_is_the_sole_error(self, db):
        maintainer = ViewMaintainer(db)
        view = maintainer.define_view("v", BaseRef("r").select("A < 5 and A > 7"))
        findings = analyze_definition(view.definition)
        assert [f.code for f in findings] == [F_UNSATISFIABLE_CONDITION]
        assert findings[0].severity is Severity.ERROR

    def test_dead_disjunct(self, db):
        maintainer = ViewMaintainer(db)
        view = maintainer.define_view(
            "v", BaseRef("r").select("B > 0 or (A < 3 and A > 7)")
        )
        findings = analyze_definition(view.definition)
        dead = [f for f in findings if f.code == F_DEAD_DISJUNCT]
        assert len(dead) == 1
        assert F_UNSATISFIABLE_CONDITION not in codes(findings)

    def test_redundant_atom(self, db):
        maintainer = ViewMaintainer(db)
        view = maintainer.define_view("v", BaseRef("r").select("A < 5 and A < 10"))
        redundant = [
            f
            for f in analyze_definition(view.definition)
            if f.code == F_REDUNDANT_ATOM
        ]
        assert len(redundant) == 1
        assert "A < 10" in redundant[0].message

    def test_loose_bound_reports_the_entailed_constant(self, db):
        maintainer = ViewMaintainer(db)
        view = maintainer.define_view(
            "v", BaseRef("r").select("A <= 100 and B <= A - 30")
        )
        loose = [
            f
            for f in analyze_definition(view.definition)
            if f.code == F_LOOSE_BOUND and "B upper" in f.subject
        ]
        assert len(loose) == 1
        assert "70" in loose[0].message

    def test_duplicate_and_subsumed_views(self, db):
        maintainer = ViewMaintainer(db)
        # A > 4 iff A >= 5 over the integers: provably the same view.
        maintainer.define_view("a", BaseRef("r").select("A > 4").project(["A"]))
        maintainer.define_view("b", BaseRef("r").select("A >= 5").project(["A"]))
        # Strictly tighter condition, same columns: subsumed by both.
        maintainer.define_view("c", BaseRef("r").select("A > 9").project(["A"]))
        report = maintainer.analyze()
        duplicates = [f for f in report.findings if f.code == F_DUPLICATE_VIEW]
        assert [(f.view, f.subject) for f in duplicates] == [("a", "b")]
        subsumed = {
            (f.view, f.subject)
            for f in report.findings
            if f.code == F_SUBSUMED_VIEW
        }
        assert ("c", "a") in subsumed
        assert ("c", "b") in subsumed

    def test_unbound_old_operand_on_a_linkless_join(self, db):
        maintainer = ViewMaintainer(db)
        view = maintainer.define_view(
            "v", BaseRef("r").join(BaseRef("s")).select("A < 5")
        )
        plan = maintainer.compiled_plan("v")
        findings = analyze_definition(view.definition, plan=plan)
        unbound = [f for f in findings if f.code == F_UNBOUND_OLD_OPERAND]
        assert unbound, "a join with no equality links must flag both operands"

    def test_closed_vocabulary(self):
        with pytest.raises(ValueError):
            Finding("not_a_code", "v", "s", "m")
        assert all(code == code.lower() for code in CODE_SEVERITIES)


class TestStrictMode:
    def test_strict_rejects_unsatisfiable_definitions(self):
        db = Database()
        db.create_relation("r", ["A", "B"], [(1, 1)])
        maintainer = ViewMaintainer(db)
        with pytest.raises(StrictAnalysisError) as excinfo:
            maintainer.define_view(
                "bad", BaseRef("r").select("A < 5 and A > 7"), strict=True
            )
        assert excinfo.value.view_name == "bad"
        assert [f.code for f in excinfo.value.findings] == [
            F_UNSATISFIABLE_CONDITION
        ]
        # Nothing was registered or materialized.
        with pytest.raises(UnknownViewError):
            maintainer.view("bad")
        assert maintainer.view_names() == ()

    def test_strict_passes_warn_level_findings(self):
        db = Database()
        db.create_relation("r", ["A", "B"], [(1, 1)])
        maintainer = ViewMaintainer(db, strict=True)
        view = maintainer.define_view("v", BaseRef("r").select("A < 5 and A < 10"))
        assert view.contents.counts() == {(1, 1): 1}


class TestConstraintEnforcement:
    def test_declaring_over_violating_rows_is_rejected(self):
        db = Database()
        db.create_relation("r", ["A", "B"], [(1, 2), (50, 60)])
        with pytest.raises(ConstraintError):
            db.declare_constraint("r", "A < 10")
        assert db.constraints.get("r") is None

    def test_violating_insert_aborts_cleanly(self):
        db = Database()
        db.create_relation("r", ["A", "B"], [(1, 2)])
        db.declare_constraint("r", "A < 10")
        with pytest.raises(ConstraintViolationError):
            with db.transact() as txn:
                txn.insert("r", (99, 1))
        assert db.relation("r").counts() == {(1, 2): 1}
        with db.transact() as txn:
            txn.insert("r", (5, 5))
        assert (5, 5) in db.relation("r")


class TestPlanCacheIntegration:
    def test_constraint_ddl_invalidates_static_proofs(self):
        db = Database()
        db.create_relation("r", ["A", "B"], [(12, 15)])
        db.create_relation("s", ["C", "D"], [(2, 10)])
        maintainer = ViewMaintainer(db)
        maintainer.define_view("u", example_4_1_expression())
        plan = maintainer.compiled_plan("u")
        assert plan is not None
        assert plan.static_irrelevant == frozenset()

        # Declaring the constraint fires a DDL event: the cached plan
        # (whose proofs assumed no invariant on r) must be dropped.
        db.declare_constraint("r", "A >= 10")
        assert maintainer.compiled_plan("u") is None

        with db.transact() as txn:
            txn.insert("s", (3, 4))
        replan = maintainer.compiled_plan("u")
        assert replan is not None
        assert replan is not plan
        assert replan.static_irrelevant == frozenset({"r"})

        # Dropping the constraint removes the premise — and the plan.
        db.drop_constraint("r")
        assert maintainer.compiled_plan("u") is None
        with db.transact() as txn:
            txn.insert("s", (4, 5))
        assert maintainer.compiled_plan("u").static_irrelevant == frozenset()


class TestDeterminism:
    def test_report_rendering_is_stable(self):
        db = Database()
        db.create_relation("r", ["A", "B"], [(1, 1)])
        db.declare_constraint("r", "A <= 20")
        maintainer = ViewMaintainer(db)
        maintainer.define_view("v", BaseRef("r").select("A > 50 and A > 10"))
        maintainer.define_view("w", BaseRef("r").select("A > 50"))
        first = maintainer.analyze()
        second = maintainer.analyze()
        assert first.format() == second.format()
        assert first.as_json() == second.as_json()
        assert json.loads(first.as_json())["counts"] == {
            "error": 0,
            "warn": first.count(Severity.WARN),
            "info": first.count(Severity.INFO),
        }

    def test_examples_catalog_is_byte_identical_across_runs(self):
        runs = []
        for _ in range(2):
            lines: list[str] = []
            code = run_analyze([str(EXAMPLES_SPEC)], emit=lines.append)
            runs.append((code, "\n".join(lines)))
        assert runs[0] == runs[1]
        assert runs[0][0] == 0, "the shipped examples must stay ERROR-free"
        assert "statically_irrelevant_relation" in runs[0][1]


class TestCliAnalyze:
    def test_exit_1_on_error_findings(self, tmp_path):
        spec = tmp_path / "bad.txt"
        spec.write_text(
            "create table r (A, B)\n"
            "create view empty as r where A < 3 and A > 7 select A\n"
        )
        lines: list[str] = []
        assert run_analyze([str(spec)], emit=lines.append) == 1
        assert "unsatisfiable_condition" in lines[0]

    def test_json_report_is_valid_and_counted(self, tmp_path):
        spec = tmp_path / "ok.txt"
        spec.write_text(
            "create table r (A, B)\n"
            "# comments and blanks are skipped\n"
            "\n"
            "-- like this one too\n"
            "create view v as r where A < 5 and A < 9 select A\n"
        )
        lines: list[str] = []
        assert run_analyze([str(spec)], as_json=True, emit=lines.append) == 0
        doc = json.loads(lines[0])
        assert doc["views"] == ["v"]
        assert doc["counts"]["warn"] == len(
            [f for f in doc["findings"] if f["severity"] == "warn"]
        )

    def test_source_flag_appends_generated_kernels(self, tmp_path):
        spec = tmp_path / "ok.txt"
        spec.write_text(
            "create table r (A, B)\n"
            "create view v as r where A < 5 select A\n"
        )
        lines: list[str] = []
        assert (
            run_analyze([str(spec)], show_source=True, emit=lines.append)
            == 0
        )
        text = "\n".join(lines)
        assert "kernel source for view 'v'" in text
        assert "def screen_kernel" in text

    def test_errors_carry_file_and_line(self, tmp_path):
        spec = tmp_path / "broken.txt"
        spec.write_text("create table r (A, B)\nnot a command\n")
        with pytest.raises(ShellError, match=r"broken\.txt:2"):
            run_analyze([str(spec)])

    def test_unreadable_file_is_a_shell_error(self, tmp_path):
        with pytest.raises(ShellError, match="cannot read"):
            run_analyze([str(tmp_path / "missing.txt")])


constraint_atoms = st.tuples(
    st.sampled_from(["<", "<=", "=", ">=", ">"]),
    st.integers(min_value=0, max_value=6),
)


@given(expression=spj_expressions(), data=st.data())
@settings(max_examples=60, deadline=None)
def test_static_irrelevance_agrees_with_runtime_screening(expression, data):
    """A statically-irrelevant verdict is sound against Algorithm 4.1.

    Whenever the analyzer's Theorem 4.1 proof says no legal update to R
    can affect the view, the runtime per-tuple screen must agree on
    every constraint-satisfying tuple — the verdict licenses skipping
    that screen entirely, so a single disagreement would be a missed
    view update.
    """
    db = Database()
    for name, attrs in sorted(SPJ_TABLES.items()):
        db.create_relation(name, list(attrs), [])
    nf = to_normal_form(expression, db.schema_catalog())
    if not nf.relation_names:
        return
    relation = data.draw(st.sampled_from(sorted(set(nf.relation_names))))
    attrs = SPJ_TABLES[relation]
    attr = data.draw(st.sampled_from(sorted(attrs)))
    op, bound = data.draw(constraint_atoms)
    constraint = Condition([Conjunction([Atom(attr, op, bound)])])

    verdict = is_statically_irrelevant(nf, relation, constraint)
    rows = data.draw(
        st.lists(
            st.tuples(*[st.integers(min_value=-2, max_value=8)] * len(attrs)),
            min_size=1,
            max_size=8,
        )
    )
    legal = [
        row
        for row in rows
        if constraint.evaluate(dict(zip(attrs, row)))
    ]
    if not verdict or not legal:
        return
    screen = RelevanceFilter(nf, relation, db.relation(relation).schema)
    for row in legal:
        assert not screen.is_relevant(row), (
            f"static proof said no legal {relation} update matters, but "
            f"{row} screened as relevant under {constraint}"
        )
