"""Tests for the generated batch kernels (``repro.core.codegen``).

The codegen contract has four legs, each pinned here:

* **equivalence** — a maintainer running the generated kernels and one
  running the per-tuple interpreter agree byte-for-byte on view
  contents *and* on every abstract work counter, over random legal
  update streams covering every truth-table shape the views produce
  (single-relation, two- and three-way joins, counted projections,
  disjunctions needing the final DNF re-check);
* **determinism** — compiling the same view twice emits byte-identical
  kernel source (replicas must agree on the code they run, not just
  its results);
* **invalidation** — a static-irrelevance proof baked into generated
  screen source cannot survive ``declare_constraint`` /
  ``drop_constraint``: the DDL drops the compiled kernels with the
  plan, and the recompiled source changes behavior immediately;
* **fallback** — views exceeding the codegen size caps fall back to
  the interpreter, charging ``codegen_fallback_tuples``, with
  identical results.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.codegen as codegen
from repro import BaseRef, Database, ViewMaintainer
from repro.algebra.relation import Delta
from repro.core.codegen import CODEGEN_VERSION, DeltaBatch, plan_fingerprint
from repro.instrumentation import CostRecorder, recording

# ----------------------------------------------------------------------
# Shared fixtures: three base relations and view shapes spanning the
# truth-table space (k = 1 .. 3 changed operands, all Section 5 cases).
# ----------------------------------------------------------------------
VIEW_SHAPES = {
    "join2": BaseRef("r")
    .product(BaseRef("s"))
    .select("A < 10 and C > 5 and B = C")
    .project(["A", "D"]),
    "join3": BaseRef("r")
    .product(BaseRef("s"))
    .product(BaseRef("t"))
    .select("B = C and D = E"),
    "proj": BaseRef("r").project(["B"]),
    "disj": BaseRef("r").select("A < 3 or B > 6"),
}

#: Work counters both execution modes must charge identically.
PARITY_COUNTERS = (
    "tuples_scanned",
    "join_probes",
    "index_probes",
    "tuples_emitted",
    "tuples_ignored",
    "truth_table_rows",
    "delta_rows_evaluated",
    "subexpression_memo_hits",
    "filter_tuples_checked",
    "filter_ground_evals",
    "filter_bound_probes",
    "static_tuples_dropped",
    "differential_updates",
)


def _fresh_database():
    db = Database()
    db.create_relation("r", ["A", "B"], [(1, 6), (2, 7), (9, 9)])
    db.create_relation("s", ["C", "D"], [(6, 1), (7, 2), (9, 5)])
    db.create_relation("t", ["E", "F"], [(1, 0), (5, 3)])
    return db


def _run_stream(stream, **maintainer_options):
    """Build the shared catalog, replay ``stream``, return the evidence.

    ``stream`` is a list of transactions; each transaction is a list of
    ``(relation, row, delete?)`` operations.  Deletes target a live row
    (chosen by index) so every stream is legal by construction.
    """
    db = _fresh_database()
    maintainer = ViewMaintainer(db, **maintainer_options)
    for name, expression in VIEW_SHAPES.items():
        maintainer.define_view(name, expression)
    live = {
        name: sorted(db.relation(name).value_tuples())
        for name in ("r", "s", "t")
    }
    recorder = CostRecorder()
    with recording(recorder):
        for txn_ops in stream:
            with db.transact() as txn:
                staged = {name: list(rows) for name, rows in live.items()}
                for name, row, delete in txn_ops:
                    if delete:
                        if not staged[name]:
                            continue
                        victim = staged[name].pop(
                            row[0] % len(staged[name])
                        )
                        txn.delete(name, victim)
                    elif row not in staged[name]:
                        txn.insert(name, row)
                        staged[name].append(row)
                live = {
                    name: sorted(rows) for name, rows in staged.items()
                }
    maintainer.verify_all()
    contents = {
        name: dict(maintainer.view(name).contents.counts())
        for name in VIEW_SHAPES
    }
    return maintainer, recorder.snapshot(), contents


def _assert_parity(stream, **options):
    """Codegen and interpreter agree on contents and on all counters."""
    m_gen, c_gen, v_gen = _run_stream(stream, use_codegen=True, **options)
    m_int, c_int, v_int = _run_stream(stream, use_codegen=False, **options)
    assert v_gen == v_int
    for name in PARITY_COUNTERS:
        assert c_gen.get(name, 0) == c_int.get(name, 0), (
            name,
            c_gen.get(name, 0),
            c_int.get(name, 0),
        )
    assert m_gen.codegen_stats().plans_compiled > 0
    assert m_int.codegen_stats().plans_compiled == 0
    assert "codegen_plans_compiled" not in c_int


rows_st = st.tuples(
    st.integers(min_value=-3, max_value=12),
    st.integers(min_value=-3, max_value=12),
)
operation_st = st.tuples(
    st.sampled_from(["r", "r", "s", "t"]), rows_st, st.booleans()
)
#: Transactions of 1-3 operations: multi-relation transactions produce
#: the k >= 2 truth-table shapes.
stream_st = st.lists(
    st.lists(operation_st, min_size=1, max_size=3),
    min_size=1,
    max_size=8,
)


class TestEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(stream=stream_st)
    def test_codegen_matches_interpreter_on_random_streams(self, stream):
        _assert_parity(stream)

    def test_parity_holds_under_every_ablation(self):
        rng = random.Random(17)
        stream = [
            [
                (
                    rng.choice(["r", "r", "s", "t"]),
                    (rng.randint(-3, 12), rng.randint(-3, 12)),
                    rng.random() < 0.3,
                )
                for _ in range(rng.randint(1, 3))
            ]
            for _ in range(25)
        ]
        for options in (
            {},
            {"share_subexpressions": False},
            {"use_indexes": False},
            {"use_relevance_filter": False},
        ):
            _assert_parity(stream, **options)


class TestSourceDeterminism:
    def _kernel_sources(self):
        db = _fresh_database()
        maintainer = ViewMaintainer(db)
        for name, expression in VIEW_SHAPES.items():
            maintainer.define_view(name, expression)
        return {
            name: maintainer.kernel_source(name) for name in VIEW_SHAPES
        }

    def test_two_compiles_emit_byte_identical_source(self):
        assert self._kernel_sources() == self._kernel_sources()

    def test_source_names_view_and_version(self):
        source = self._kernel_sources()["join2"]
        assert "'join2'" in source
        assert f"codegen v{CODEGEN_VERSION}" in source

    def test_fingerprint_separates_execution_modes(self):
        db = _fresh_database()
        maintainer = ViewMaintainer(db)
        maintainer.define_view("v", VIEW_SHAPES["join2"])
        nf = maintainer.view("v").definition.normal_form
        assert plan_fingerprint(nf, True) != plan_fingerprint(nf, False)
        assert plan_fingerprint(nf, True) == (
            maintainer.expected_plan_fingerprint("v")
        )


class TestConstraintDDL:
    """A baked static-irrelevance proof must die with constraint DDL."""

    def _maintainer(self):
        db = Database()
        db.create_relation("r", ["A", "B"], [(20, 1), (30, 2)])
        db.declare_constraint("r", "A >= 20")
        maintainer = ViewMaintainer(db)
        maintainer.define_view("v", BaseRef("r").select("A < 10"))
        return db, maintainer

    def test_stale_proof_cannot_survive_drop_constraint(self):
        db, maintainer = self._maintainer()
        # Under the constraint, every r-update is provably irrelevant:
        # the generated screen is a stub that drops the whole batch.
        assert "statically irrelevant" in maintainer.kernel_source("v")
        with db.transact() as txn:
            txn.insert("r", (25, 3))
        assert dict(maintainer.view("v").contents.counts()) == {}

        db.drop_constraint("r")
        # The plan — kernels included — was invalidated: the recompiled
        # source screens per-tuple again and maintenance sees the row.
        assert "statically irrelevant" not in maintainer.kernel_source("v")
        with db.transact() as txn:
            txn.insert("r", (5, 4))
        assert dict(maintainer.view("v").contents.counts()) == {(5, 4): 1}
        maintainer.verify_all()

    def test_declare_constraint_recompiles_to_the_stub(self):
        db = Database()
        db.create_relation("r", ["A", "B"], [(20, 1)])
        maintainer = ViewMaintainer(db)
        maintainer.define_view("v", BaseRef("r").select("A < 10"))
        assert "statically irrelevant" not in maintainer.kernel_source("v")
        db.declare_constraint("r", "A >= 20")
        assert "statically irrelevant" in maintainer.kernel_source("v")
        maintainer.verify_all()


class TestFallback:
    def test_oversized_shape_falls_back_to_interpreter(self, monkeypatch):
        monkeypatch.setattr(codegen, "MAX_CODEGEN_ROWS", 0)
        stream = [
            [("r", (1, 6), False), ("s", (8, 8), False)],
            [("r", (2, 7), True)],
        ]
        m_gen, c_gen, v_gen = _run_stream(stream, use_codegen=True)
        assert c_gen.get("codegen_fallback_tuples", 0) > 0
        assert m_gen.codegen_stats().fallback_tuples > 0
        monkeypatch.undo()
        _, c_int, v_int = _run_stream(stream, use_codegen=False)
        assert v_gen == v_int
        assert "codegen_fallback_tuples" not in c_int

    def test_wide_views_fall_back_at_registration(self, monkeypatch):
        monkeypatch.setattr(codegen, "MAX_CODEGEN_OPERANDS", 1)
        stream = [[("r", (1, 6), False), ("s", (8, 8), False)]]
        m_gen, c_gen, v_gen = _run_stream(stream, use_codegen=True)
        monkeypatch.undo()
        _, _, v_int = _run_stream(stream, use_codegen=False)
        assert v_gen == v_int
        # The joins exceeded the cap; the single-operand views did not.
        assert c_gen.get("codegen_fallback_tuples", 0) > 0
        assert m_gen.codegen_stats().plans_compiled > 0


class TestDeltaBatch:
    def _delta(self, db):
        schema = db.relation("r").schema
        return Delta.from_counts(
            schema,
            {(1, 6): 2, (2, 7): 1},
            {(9, 9): 1},
        )

    def test_full_mask_round_trips(self):
        delta = self._delta(_fresh_database())
        batch = DeltaBatch.from_delta(delta)
        assert len(batch) == 3
        assert batch.n_inserted == 2
        assert batch.columns[0] == [1, 2, 9]
        assert batch.columns[1] == [6, 7, 9]
        out = batch.to_delta(bytearray([1] * len(batch)))
        assert out.inserted == delta.inserted
        assert out.deleted == delta.deleted

    def test_partial_mask_keeps_counts_and_sides(self):
        delta = self._delta(_fresh_database())
        batch = DeltaBatch.from_delta(delta)
        mask = bytearray(len(batch))
        mask[0] = 1  # one insert
        mask[2] = 1  # the delete
        out = batch.to_delta(mask)
        assert out.inserted == {(1, 6): 2}
        assert out.deleted == {(9, 9): 1}


class TestStatsSurface:
    def test_codegen_stats_as_dict_keys(self):
        _, counters, _ = _run_stream([[("r", (1, 6), False)]])
        db = _fresh_database()
        maintainer = ViewMaintainer(db)
        maintainer.define_view("v", VIEW_SHAPES["join2"])
        stats = maintainer.codegen_stats().as_dict()
        assert set(stats) == {
            "codegen_plans_compiled",
            "codegen_batch_rows",
            "codegen_fallback_tuples",
        }
        assert stats["codegen_plans_compiled"] > 0

    def test_counters_reach_the_recorder(self):
        _, counters, _ = _run_stream(
            [[("r", (1, 6), False)], [("s", (8, 8), False)]],
            use_codegen=True,
        )
        assert counters.get("codegen_plans_compiled", 0) > 0
        assert counters.get("codegen_batch_rows", 0) > 0

    def test_unknown_view_kernel_source_fails_loudly(self):
        maintainer = ViewMaintainer(_fresh_database())
        with pytest.raises(Exception):
            maintainer.kernel_source("nope")
