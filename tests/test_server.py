"""Tests for the network view-server (repro.server).

Covers the wire protocol codecs, the changefeed retention window, the
end-to-end serve path (txn through the normal commit pipeline, query
answered byte-for-byte from stored view contents, subscription events),
concurrent client load, fan-out equivalence with a direct Follower,
backpressure (slow-subscriber disconnect), admission control and
graceful shutdown.
"""

from __future__ import annotations

import asyncio
import io
import random
import socket
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.expressions import BaseRef
from repro.core.maintainer import ViewMaintainer
from repro.engine.database import Database
from repro.engine.persistence import delta_to_document, relation_to_document
from repro.instrumentation import CostRecorder
from repro.replication.durability import DurabilityManager
from repro.replication.follower import Follower
from repro.server import (
    ServerConfig,
    ServerError,
    ServerHandle,
    ViewClient,
    ViewServer,
    protocol,
)
from repro.server.protocol import ProtocolError
from repro.server.server import Changefeed
from repro.server.session import Session

HOT = BaseRef("r").join(BaseRef("s")).select("C > 4").project(["A", "C"])


def make_database():
    db = Database()
    db.create_relation("r", ["A", "B"], [(1, 10), (2, 20)])
    db.create_relation("s", ["B", "C"], [(10, 5), (20, 6)])
    return db


@pytest.fixture
def served():
    """A running server over (r ⋈ s) with view ``hot``; yields a bundle."""
    db = make_database()
    maintainer = ViewMaintainer(db)
    maintainer.define_view("hot", HOT)
    server = ViewServer(db, maintainer, ServerConfig())
    with ServerHandle(server) as handle:
        yield handle, server, db, maintainer


def connect(handle, **kwargs) -> ViewClient:
    return ViewClient(port=handle.port, timeout=10.0, **kwargs)


# ----------------------------------------------------------------------
# Protocol codecs
# ----------------------------------------------------------------------
class TestProtocol:
    def test_frame_roundtrip(self):
        doc = {"id": 1, "op": "ping", "nested": {"a": [1, 2]}}
        framed = protocol.encode_frame(doc)
        stream = io.BytesIO(framed)
        assert protocol.read_frame_blocking(stream, 1 << 20) == doc

    def test_clean_eof_returns_none(self):
        assert protocol.read_frame_blocking(io.BytesIO(b""), 1 << 20) is None

    def test_truncated_header(self):
        with pytest.raises(ProtocolError) as exc:
            protocol.read_frame_blocking(io.BytesIO(b"\x00\x00"), 1 << 20)
        assert exc.value.code == protocol.E_BAD_FRAME

    def test_truncated_payload(self):
        framed = protocol.encode_frame({"id": 1})[:-2]
        with pytest.raises(ProtocolError):
            protocol.read_frame_blocking(io.BytesIO(framed), 1 << 20)

    def test_oversized_frame_rejected(self):
        framed = protocol.encode_frame({"id": 1, "blob": "x" * 100})
        with pytest.raises(ProtocolError) as exc:
            protocol.read_frame_blocking(io.BytesIO(framed), 16)
        assert exc.value.code == protocol.E_BAD_FRAME

    def test_non_json_payload(self):
        with pytest.raises(ProtocolError):
            protocol.decode_payload(b"\xff\xfe not json")

    def test_non_object_payload(self):
        with pytest.raises(ProtocolError):
            protocol.decode_payload(b"[1, 2, 3]")

    def test_request_field_missing_required(self):
        with pytest.raises(ProtocolError) as exc:
            protocol.request_field({"op": "query"}, "target", str)
        assert exc.value.code == protocol.E_BAD_REQUEST

    def test_request_field_wrong_type(self):
        with pytest.raises(ProtocolError):
            protocol.request_field({"target": 7}, "target", str)

    def test_request_field_bool_is_not_int(self):
        with pytest.raises(ProtocolError):
            protocol.request_field({"from": True}, "from", int)

    def test_request_field_optional_absent(self):
        assert protocol.request_field({}, "where", str, required=False) is None


# ----------------------------------------------------------------------
# Framing properties
# ----------------------------------------------------------------------

#: JSON documents of the shape the protocol actually carries: string
#: keys, scalar/list/object values, small enough to frame thousands of
#: examples quickly.
_json_values = st.recursive(
    st.none() | st.booleans() | st.integers(-1000, 1000) | st.text(max_size=8),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=4), children, max_size=3),
    max_leaves=8,
)
json_documents = st.dictionaries(st.text(max_size=6), _json_values, max_size=4)


class _ChoppyStream:
    """A binary stream that serves reads in adversarial chunk sizes.

    Models a TCP receiver seeing arbitrary segmentation: each ``read``
    returns between 1 byte and the full request, decided by ``rng``.
    """

    def __init__(self, data: bytes, rng) -> None:
        self._data = data
        self._pos = 0
        self._rng = rng

    def read(self, count: int) -> bytes:
        if self._pos >= len(self._data):
            return b""
        step = self._rng.randint(1, max(1, count))
        chunk = self._data[self._pos : self._pos + min(step, count)]
        self._pos += len(chunk)
        return chunk


def _drain_blocking(stream, max_frame_bytes=1 << 20):
    """Read frames to EOF; (outcome, docs-recovered-before-it)."""
    out = []
    try:
        while (doc := protocol.read_frame_blocking(stream, max_frame_bytes)) is not None:
            out.append(doc)
        return ("eof", out)
    except ProtocolError as exc:
        return (exc.code, out)


def _drain_async(data: bytes, max_frame_bytes=1 << 20):
    """Same contract as :func:`_drain_blocking`, via the async reader."""

    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        out = []
        try:
            while (doc := await protocol.read_frame_async(reader, max_frame_bytes)) is not None:
                out.append(doc)
            return ("eof", out)
        except ProtocolError as exc:
            return (exc.code, out)

    return asyncio.run(run())


class TestFramingProperties:
    """Property tests for the length-prefixed frame codec."""

    @given(
        docs=st.lists(json_documents, min_size=1, max_size=5),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_survives_split_and_coalesced_reads(self, docs, seed):
        """Any segmentation of the byte stream recovers the documents.

        The frames are coalesced into one buffer and served back in
        random chunk sizes — both halves of the TCP reality: several
        frames may arrive in one read, one frame across many.
        """
        blob = b"".join(protocol.encode_frame(doc) for doc in docs)
        stream = _ChoppyStream(blob, random.Random(seed))
        assert _drain_blocking(stream) == ("eof", docs)

    @given(doc=json_documents)
    @settings(max_examples=40, deadline=None)
    def test_oversized_frame_rejected_at_declared_length(self, doc):
        """A limit one byte under the payload rejects before decoding."""
        framed = protocol.encode_frame(doc)
        payload_length = len(framed) - protocol.HEADER_BYTES
        with pytest.raises(ProtocolError) as exc:
            protocol.read_frame_blocking(io.BytesIO(framed), payload_length - 1)
        assert exc.value.code == protocol.E_BAD_FRAME
        assert protocol.read_frame_blocking(io.BytesIO(framed), payload_length) == doc

    @given(
        docs=st.lists(json_documents, min_size=1, max_size=4),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_truncation_yields_clean_prefix_or_error(self, docs, data):
        """A cut anywhere yields a document prefix, never a wrong doc.

        Truncation at a frame boundary reads as clean EOF; anywhere
        else raises ``E_BAD_FRAME`` — and in both cases every document
        recovered before the cut is exact and the last (cut) frame is
        never delivered.
        """
        blob = b"".join(protocol.encode_frame(doc) for doc in docs)
        cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        outcome, recovered = _drain_blocking(io.BytesIO(blob[:cut]))
        assert outcome in ("eof", protocol.E_BAD_FRAME)
        assert recovered == docs[: len(recovered)]
        assert len(recovered) < len(docs)
        boundaries = set()
        offset = 0
        for doc in docs:
            boundaries.add(offset)
            offset += len(protocol.encode_frame(doc))
        assert (outcome == "eof") == (cut in boundaries)

    @given(
        docs=st.lists(json_documents, min_size=1, max_size=4),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_async_reader_agrees_with_blocking(self, docs, data):
        """Both codec halves classify every prefix identically."""
        blob = b"".join(protocol.encode_frame(doc) for doc in docs)
        cut = data.draw(st.integers(min_value=0, max_value=len(blob)))
        prefix = blob[:cut]
        assert _drain_async(prefix) == _drain_blocking(io.BytesIO(prefix))


# ----------------------------------------------------------------------
# Changefeed retention
# ----------------------------------------------------------------------
class TestChangefeed:
    def test_since_and_floor(self):
        feed = Changefeed("v", base_sequence=5, capacity=3)
        for seq in (6, 7, 8):
            feed.append(seq, {"seq": seq})
        assert [s for s, _ in feed.since(5)] == [6, 7, 8]
        assert [s for s, _ in feed.since(7)] == [8]
        assert feed.since(8) == []

    def test_eviction_advances_floor(self):
        feed = Changefeed("v", base_sequence=0, capacity=2)
        for seq in (1, 2, 3):
            feed.append(seq, {})
        assert feed.floor == 1
        with pytest.raises(ProtocolError) as exc:
            feed.since(0)
        assert exc.value.code == protocol.E_OFFSET_OUT_OF_RANGE
        assert [s for s, _ in feed.since(1)] == [2, 3]

    def test_resume_before_attach_is_out_of_range(self):
        feed = Changefeed("v", base_sequence=10, capacity=4)
        with pytest.raises(ProtocolError):
            feed.since(3)


# ----------------------------------------------------------------------
# End-to-end: the acceptance-criteria loop
# ----------------------------------------------------------------------
class TestEndToEnd:
    def test_ping(self, served):
        handle, server, db, maintainer = served
        with connect(handle) as client:
            result = client.ping()
        assert result["protocol"] == protocol.PROTOCOL_VERSION
        assert result["views"] == ["hot"]
        assert result["relations"] == ["r", "s"]

    def test_txn_subscribe_query_loop(self, served):
        handle, server, db, maintainer = served
        with connect(handle) as client:
            sub = client.subscribe("hot")
            result = client.txn(insert={"r": [(3, 10)], "s": [(30, 9)]})
            assert result["applied"]["r"]["inserted"] == 1
            assert result["seq"] == 1

            event = client.next_event(timeout=5)
            assert event is not None
            assert event["view"] == "hot"
            assert event["subscription"] == sub["subscription"]
            assert event["seq"] == 1
            assert event["delta"]["inserted"] == [[3, 5]]
            assert event["delta"]["deleted"] == []

            # The query answer is byte-for-byte the in-process view.
            answer = client.query("hot")
        stored = relation_to_document(maintainer.view("hot").contents)
        assert answer["rows"] == stored["rows"]
        assert answer["counts"] == stored["counts"]
        assert answer["seq"] == 1
        assert answer["kind"] == "view"

    def test_delete_flows_through(self, served):
        handle, server, db, maintainer = served
        with connect(handle) as client:
            client.subscribe("hot")
            client.txn(delete={"r": [(2, 20)]})
            event = client.next_event(timeout=5)
            assert event["delta"]["deleted"] == [[2, 6]]
            answer = client.query("hot")
        assert answer["rows"] == [[1, 5]]

    def test_query_relation(self, served):
        handle, *_ = served
        with connect(handle) as client:
            answer = client.query("r")
        assert answer["kind"] == "relation"
        assert answer["rows"] == [[1, 10], [2, 20]]
        assert answer["counts"] == [1, 1]

    def test_query_where_and_select(self, served):
        handle, *_ = served
        with connect(handle) as client:
            answer = client.query("r", where="B >= 20", select=["A"])
            assert answer["rows"] == [[2]]
            # Bag projection merges multiplicities.
            merged = client.query("hot", select=["C"])
        assert merged["attributes"] == ["C"]
        assert merged["rows"] == [[5], [6]]

    def test_query_limit_truncates(self, served):
        handle, *_ = served
        with connect(handle) as client:
            answer = client.query("r", limit=1)
        assert answer["rows"] == [[1, 10]]
        assert answer["truncated"] is True

    def test_projection_counts_merge(self, served):
        handle, *_ = served
        with connect(handle) as client:
            client.txn(insert={"r": [(3, 10)]})  # second A-row joining B=10
            merged = client.query("hot", select=["C"])
        assert merged["rows"] == [[5], [6]]
        assert merged["counts"] == [2, 1]

    def test_query_unknown_target(self, served):
        handle, *_ = served
        with connect(handle) as client:
            with pytest.raises(ServerError) as exc:
                client.query("nope")
        assert exc.value.code == protocol.E_UNKNOWN_TARGET

    def test_query_bad_condition(self, served):
        handle, *_ = served
        with connect(handle) as client:
            with pytest.raises(ServerError) as exc:
                client.query("r", where="A ~~ 3")
            assert exc.value.code == protocol.E_BAD_CONDITION
            with pytest.raises(ServerError) as exc:
                client.query("r", where="Z > 3")
            assert exc.value.code == protocol.E_BAD_CONDITION

    def test_query_bad_select(self, served):
        handle, *_ = served
        with connect(handle) as client:
            with pytest.raises(ServerError) as exc:
                client.query("r", select=["Z"])
        assert exc.value.code == protocol.E_BAD_REQUEST

    def test_txn_unknown_relation_fails_atomically(self, served):
        handle, server, db, maintainer = served
        with connect(handle) as client:
            with pytest.raises(ServerError) as exc:
                client.txn(insert={"r": [(7, 10)], "zzz": [(1,)]})
            assert exc.value.code == protocol.E_TXN_FAILED
            answer = client.query("r")
        # The whole batch aborted: the valid part did not land either.
        assert [7, 10] not in answer["rows"]

    def test_txn_empty_rejected(self, served):
        handle, *_ = served
        with connect(handle) as client:
            with pytest.raises(ServerError) as exc:
                client.call("txn")
        assert exc.value.code == protocol.E_BAD_REQUEST

    def test_txn_malformed_batch(self, served):
        handle, *_ = served
        with connect(handle) as client:
            with pytest.raises(ServerError) as exc:
                client.call("txn", insert={"r": "not-a-list"})
        assert exc.value.code == protocol.E_BAD_REQUEST

    def test_unknown_op(self, served):
        handle, *_ = served
        with connect(handle) as client:
            with pytest.raises(ServerError) as exc:
                client.call("upsert")
        assert exc.value.code == protocol.E_UNKNOWN_OP

    def test_stats(self, served):
        handle, *_ = served
        with connect(handle) as client:
            client.txn(insert={"r": [(3, 10)]})
            client.query("hot")
            stats = client.stats()
        assert stats["views"]["hot"]["maintenance"]["transactions_seen"] == 1
        assert stats["views"]["hot"]["seq"] == 1
        assert stats["counters"]["server_txns_committed"] == 1
        assert stats["counters"]["server_requests"] >= 3
        assert stats["sessions"]["open"] == 1
        assert stats["plan_cache"]["plan_cache_hits"] >= 1
        assert stats["plan_cache"]["plan_cache_misses"] == 0
        assert stats["views"]["hot"]["maintenance"]["plan_cache_hits"] >= 1
        assert stats["counters"]["plan_cache_hits"] >= 1
        assert stats["codegen"]["codegen_plans_compiled"] >= 1
        assert stats["codegen"]["codegen_batch_rows"] >= 1
        assert stats["codegen"]["codegen_fallback_tuples"] == 0

    def test_subscribe_unknown_view(self, served):
        handle, *_ = served
        with connect(handle) as client:
            with pytest.raises(ServerError) as exc:
                client.subscribe("r")  # a relation, not a view
        assert exc.value.code == protocol.E_UNKNOWN_TARGET

    def test_unsubscribe_stops_events(self, served):
        handle, *_ = served
        with connect(handle) as client:
            sub = client.subscribe("hot")
            client.unsubscribe(sub["subscription"])
            client.txn(insert={"r": [(3, 10)]})
            assert client.next_event(timeout=0.3) is None

    def test_unsubscribe_unknown_id(self, served):
        handle, *_ = served
        with connect(handle) as client:
            with pytest.raises(ServerError) as exc:
                client.unsubscribe(99)
        assert exc.value.code == protocol.E_BAD_REQUEST

    def test_resume_from_offset(self, served):
        handle, *_ = served
        with connect(handle) as writer:
            writer.txn(insert={"r": [(3, 10)]})   # seq 1
            writer.txn(insert={"r": [(4, 20)]})   # seq 2
            with connect(handle) as late:
                sub = late.subscribe("hot", from_seq=0)
                assert sub["replayed"] == 2
                events = late.drain_events(2, timeout=5)
                assert [e["seq"] for e in events] == [1, 2]
                # And the stream continues live after catch-up.
                writer.txn(insert={"r": [(5, 10)]})
                live = late.next_event(timeout=5)
                assert live["seq"] == 3

    def test_resume_from_current_replays_nothing(self, served):
        handle, *_ = served
        with connect(handle) as client:
            client.txn(insert={"r": [(3, 10)]})
            sub = client.subscribe("hot", from_seq=1)
        assert sub["replayed"] == 0

    def test_resume_out_of_retention(self):
        db = make_database()
        maintainer = ViewMaintainer(db)
        maintainer.define_view("hot", HOT)
        server = ViewServer(db, maintainer, ServerConfig(changefeed_history=2))
        with ServerHandle(server) as handle:
            with connect(handle) as client:
                for key in range(3, 8):
                    client.txn(insert={"r": [(key, 10)]})
                with pytest.raises(ServerError) as exc:
                    client.subscribe("hot", from_seq=0)
        assert exc.value.code == protocol.E_OFFSET_OUT_OF_RANGE

    def test_irrelevant_txn_emits_no_event(self, served):
        handle, *_ = served
        with connect(handle) as client:
            client.subscribe("hot")
            # C = 1 fails the view condition C > 4 for every join: the
            # irrelevance filter screens it and no view delta applies.
            client.txn(insert={"s": [(99, 1)]})
            assert client.next_event(timeout=0.3) is None


# ----------------------------------------------------------------------
# Concurrency: many clients against one view
# ----------------------------------------------------------------------
class TestConcurrentLoad:
    def test_interleaved_txn_and_query(self, served):
        handle, server, db, maintainer = served
        clients = 6
        txns_each = 10
        errors: list[BaseException] = []

        def worker(base: int) -> None:
            try:
                with connect(handle) as client:
                    for i in range(txns_each):
                        key = 1000 + base * txns_each + i
                        result = client.txn(insert={"r": [(key, 10)]})
                        assert result["applied"]["r"]["inserted"] == 1
                        answer = client.query("hot")
                        # Reads observe some consistent state at least as
                        # new as this client's own committed write.
                        assert answer["seq"] >= result["seq"]
                        assert [key, 5] in answer["rows"]
            except BaseException as exc:  # surfaced to the main thread
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert not errors, errors

        # Every commit serialized: the final state equals the same
        # batches applied in-process, in any order (inserts commute).
        expected_db = make_database()
        expected_maintainer = ViewMaintainer(expected_db)
        expected_maintainer.define_view("hot", HOT)
        for base in range(clients):
            for i in range(txns_each):
                key = 1000 + base * txns_each + i
                with expected_db.transact() as txn:
                    txn.insert("r", (key, 10))
        with connect(handle) as client:
            answer = client.query("hot")
        expected = relation_to_document(expected_maintainer.view("hot").contents)
        assert answer["rows"] == expected["rows"]
        assert answer["counts"] == expected["counts"]
        assert db.log.last_sequence() == clients * txns_each

    def test_every_subscriber_sees_the_same_sequence(self, served):
        handle, *_ = served
        subscriber_count = 4
        txns = 6
        subscribers = [connect(handle) for _ in range(subscriber_count)]
        try:
            for client in subscribers:
                client.subscribe("hot")
            with connect(handle) as writer:
                for i in range(txns):
                    writer.txn(insert={"r": [(500 + i, 10)]})
            streams = [
                [
                    (e["seq"], e["delta"]["inserted"], e["delta"]["deleted"])
                    for e in client.drain_events(txns, timeout=5)
                ]
                for client in subscribers
            ]
        finally:
            for client in subscribers:
                client.close()
        assert all(len(stream) == txns for stream in streams)
        assert all(stream == streams[0] for stream in streams)


# ----------------------------------------------------------------------
# Fan-out equivalence with a direct WAL follower
# ----------------------------------------------------------------------
class TestFollowerEquivalence:
    def test_subscription_stream_matches_follower(self, tmp_path):
        directory = str(tmp_path / "durable")
        db = make_database()
        maintainer = ViewMaintainer(db)
        maintainer.define_view("hot", HOT)
        durability = DurabilityManager(db, directory, sync="never")
        durability.checkpoint(maintainer)

        server = ViewServer(
            db, maintainer, ServerConfig(), durability=durability
        )
        with ServerHandle(server) as handle:
            with connect(handle) as subscriber, connect(handle) as writer:
                subscriber.subscribe("hot")
                for i in range(5):
                    writer.txn(insert={"r": [(700 + i, 10 if i % 2 else 20)]})
                events = subscriber.drain_events(5, timeout=5)
                wal_position = writer.stats()["wal_position"]
        durability.close()
        assert wal_position == 5

        served_stream = [(e["seq"], e["delta"]) for e in events]
        assert len(served_stream) == 5

        # An independent follower re-derives the same view from the
        # shipped deltas alone; its per-commit view deltas must be the
        # same sequence the server fanned out.
        follower = Follower(directory)
        follower_stream: list[tuple[int, dict]] = []
        follower.define_view("hot", HOT)
        follower.maintainer.subscribe(
            "hot",
            lambda view, delta: follower_stream.append(
                (view.last_refresh_sequence, delta_to_document(delta))
            ),
        )
        follower.poll()
        assert follower.position == 5
        assert follower_stream == served_stream
        # And the follower's view contents equal the leader's.
        assert (
            relation_to_document(follower.view("hot").contents)
            == relation_to_document(maintainer.view("hot").contents)
        )


# ----------------------------------------------------------------------
# Backpressure: the slow-subscriber policy
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_slow_subscriber_is_disconnected_not_awaited(self):
        db = make_database()
        maintainer = ViewMaintainer(db)
        maintainer.define_view("hot", HOT)
        # A tiny outbox so the overflow trips quickly once the socket
        # and transport buffers are saturated by large event frames.
        config = ServerConfig(outbox_frames=2, max_frame_bytes=4 << 20)
        server = ViewServer(db, maintainer, config)
        with ServerHandle(server) as handle:
            # Small kernel buffers (accepted sockets inherit the
            # listener's SO_SNDBUF) cap how many event bytes the OS
            # absorbs on the slow client's behalf, so the server-side
            # writer stalls — and the outbox overflows — after a
            # bounded number of events instead of megabytes of them.
            for sock in server._asyncio_server.sockets:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 16384)
            slow = ViewClient(port=handle.port, timeout=5.0, max_frame_bytes=4 << 20)
            slow._socket.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 8192)
            slow.subscribe("hot")
            # The slow client now simply stops reading.
            with connect(handle) as writer:
                batch = 3000
                disconnected = False
                for round_number in range(80):
                    rows = [
                        [1_000_000 + round_number * batch + i, 10]
                        for i in range(batch)
                    ]
                    writer.txn(insert={"r": rows})
                    if server.recorder.get("server_slow_consumer_disconnects"):
                        disconnected = True
                        break
                assert disconnected, "slow subscriber was never disconnected"
                # The server is not wedged: other sessions still serve.
                assert writer.ping()["protocol"] == protocol.PROTOCOL_VERSION
            # The slow consumer's connection is dead.
            with pytest.raises((ConnectionError, ServerError)):
                for _ in range(10_000):
                    slow.ping()
            slow.close()


# ----------------------------------------------------------------------
# Admission control and shutdown
# ----------------------------------------------------------------------
class TestAdmissionAndShutdown:
    def test_session_limit(self):
        db = make_database()
        maintainer = ViewMaintainer(db)
        server = ViewServer(db, maintainer, ServerConfig(max_sessions=1))
        with ServerHandle(server) as handle:
            with connect(handle) as first:
                assert first.ping()
                second = connect(handle)
                with pytest.raises(ServerError) as exc:
                    second.ping()
                assert exc.value.code == protocol.E_TOO_MANY_SESSIONS
                second.close()
                assert server.recorder.get("server_sessions_rejected") == 1
            # Releasing the first session frees the slot.
            for _ in range(100):
                if not server._sessions:
                    break
                time.sleep(0.05)
            with connect(handle) as third:
                assert third.ping()

    def test_graceful_shutdown_refuses_new_connections(self, served):
        handle, *_ = served
        with connect(handle) as client:
            assert client.txn(insert={"r": [(3, 10)]})["seq"] == 1
        handle.stop()
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", handle.port), timeout=1)

    def test_oversized_request_frame_hangs_up(self, served):
        handle, server, *_ = served
        server.config.max_frame_bytes = 64
        with connect(handle) as client:
            with pytest.raises((ServerError, ConnectionError)):
                client.query("hot", where="A > 1000000 and B > 1000000")
                client.ping()

    def test_server_handle_reports_bind_failure(self):
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        db = make_database()
        server = ViewServer(db, ViewMaintainer(db), ServerConfig(port=port))
        try:
            with pytest.raises(RuntimeError, match="failed to start"):
                ServerHandle(server).start()
        finally:
            blocker.close()


# ----------------------------------------------------------------------
# Session-level behavior (driven with a stub server)
# ----------------------------------------------------------------------
class _StubServer:
    """The slice of ViewServer a Session needs, with a pluggable handler."""

    def __init__(self, handler, **config_overrides):
        self.config = ServerConfig(**config_overrides)
        self.recorder = CostRecorder()
        self._handler = handler
        self.released = []

    async def dispatch(self, session, doc):
        return await self._handler(session, doc)

    def release_session(self, session):
        self.released.append(session.session_id)


def _drive_session(stub, frames, read_frames=1, timeout=5.0):
    """Run one Session over a real socket pair; returns received docs."""

    async def main():
        received = []

        async def on_connect(reader, writer):
            session = Session(stub, reader, writer, 1)
            session.task = asyncio.current_task()
            await session.run()

        server = await asyncio.start_server(on_connect, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        for frame in frames:
            writer.write(protocol.encode_frame(frame))
        await writer.drain()
        for _ in range(read_frames):
            doc = await asyncio.wait_for(
                protocol.read_frame_async(reader, 1 << 20), timeout
            )
            if doc is None:
                break
            received.append(doc)
        writer.close()
        # EOF reaches the session asynchronously; wait for its release.
        deadline = asyncio.get_running_loop().time() + timeout
        while not stub.released and asyncio.get_running_loop().time() < deadline:
            await asyncio.sleep(0.01)
        server.close()
        await server.wait_closed()
        return received

    return asyncio.run(main())


class TestSession:
    def test_request_timeout_produces_timeout_error(self):
        async def slow_handler(session, doc):
            await asyncio.sleep(5)
            return protocol.response_ok(doc.get("id"), {})

        stub = _StubServer(slow_handler, request_timeout=0.1)
        received = _drive_session(stub, [{"id": 9, "op": "ping"}])
        assert received[0]["ok"] is False
        assert received[0]["error"]["code"] == protocol.E_TIMEOUT
        assert received[0]["id"] == 9

    def test_framing_violation_answers_then_hangs_up(self):
        async def handler(session, doc):  # pragma: no cover - never reached
            return protocol.response_ok(doc.get("id"), {})

        stub = _StubServer(handler)

        async def main():
            async def on_connect(reader, writer):
                session = Session(stub, reader, writer, 1)
                session.task = asyncio.current_task()
                await session.run()

            server = await asyncio.start_server(on_connect, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"\x7f\xff\xff\xff")  # absurd declared length
            await writer.drain()
            doc = await asyncio.wait_for(
                protocol.read_frame_async(reader, 1 << 20), 5
            )
            eof = await asyncio.wait_for(
                protocol.read_frame_async(reader, 1 << 20), 5
            )
            writer.close()
            server.close()
            await server.wait_closed()
            return doc, eof

        doc, eof = asyncio.run(main())
        assert doc["ok"] is False
        assert doc["error"]["code"] == protocol.E_BAD_FRAME
        assert eof is None  # the server hung up after reporting

    def test_session_releases_on_eof(self):
        async def handler(session, doc):
            return protocol.response_ok(doc.get("id"), {})

        stub = _StubServer(handler)
        _drive_session(stub, [{"id": 1, "op": "ping"}])
        assert stub.released == [1]
