"""Unit tests for transactions and the Section 3 net-effect semantics."""

import pytest

from repro.engine.database import Database
from repro.errors import SchemaError, TransactionError, UnknownRelationError


@pytest.fixture
def db():
    database = Database()
    database.create_relation("r", ["A", "B"], [(1, 2), (3, 4)])
    return database


class TestNetEffect:
    def test_plain_insert(self, db):
        txn = db.begin()
        txn.insert("r", (5, 6))
        deltas = txn.net_deltas()
        assert deltas["r"].inserted == {(5, 6): 1}
        assert deltas["r"].deleted == {}

    def test_insert_existing_is_noop(self, db):
        txn = db.begin()
        txn.insert("r", (1, 2))
        assert txn.net_deltas() == {}

    def test_double_insert_is_single(self, db):
        txn = db.begin()
        txn.insert("r", (5, 6))
        txn.insert("r", (5, 6))
        assert txn.net_deltas()["r"].inserted == {(5, 6): 1}

    def test_delete_existing(self, db):
        txn = db.begin()
        txn.delete("r", (1, 2))
        assert txn.net_deltas()["r"].deleted == {(1, 2): 1}

    def test_delete_absent_is_noop(self, db):
        txn = db.begin()
        txn.delete("r", (9, 9))
        assert txn.net_deltas() == {}

    def test_insert_then_delete_cancels(self, db):
        # The paper: "if a tuple not in the relation is inserted and
        # then deleted within a transaction, it is not represented at
        # all in this set of changes."
        txn = db.begin()
        txn.insert("r", (5, 6))
        txn.delete("r", (5, 6))
        assert txn.net_deltas() == {}

    def test_delete_then_insert_cancels(self, db):
        txn = db.begin()
        txn.delete("r", (1, 2))
        txn.insert("r", (1, 2))
        assert txn.net_deltas() == {}

    def test_update_is_delete_plus_insert(self, db):
        txn = db.begin()
        txn.update("r", (1, 2), (1, 99))
        deltas = txn.net_deltas()
        assert deltas["r"].deleted == {(1, 2): 1}
        assert deltas["r"].inserted == {(1, 99): 1}

    def test_disjointness_invariant(self, db):
        # r, i_r, d_r must be mutually disjoint after any op sequence.
        txn = db.begin()
        ops = [
            ("insert", (5, 6)),
            ("delete", (1, 2)),
            ("insert", (1, 2)),
            ("delete", (5, 6)),
            ("insert", (7, 8)),
            ("delete", (3, 4)),
        ]
        for op, row in ops:
            getattr(txn, op)("r", row)
        deltas = txn.net_deltas()
        if "r" in deltas:
            delta = deltas["r"]
            r_rows = set(db.relation("r").value_tuples())
            assert not (set(delta.inserted) & set(delta.deleted))
            assert not (set(delta.inserted) & r_rows)
            assert set(delta.deleted) <= r_rows

    def test_multi_relation_transaction(self, db):
        db.create_relation("s", ["C"], [(1,)])
        txn = db.begin()
        txn.insert("r", (9, 9))
        txn.delete("s", (1,))
        deltas = txn.net_deltas()
        assert set(deltas) == {"r", "s"}
        assert txn.touched_relations() == ("r", "s")


class TestLifecycle:
    def test_commit_applies_net_effect(self, db):
        txn = db.begin()
        txn.insert("r", (5, 6))
        txn.delete("r", (1, 2))
        txn.commit()
        assert (5, 6) in db.relation("r")
        assert (1, 2) not in db.relation("r")

    def test_commit_returns_deltas(self, db):
        txn = db.begin()
        txn.insert("r", (5, 6))
        deltas = txn.commit()
        assert deltas["r"].inserted == {(5, 6): 1}

    def test_abort_discards(self, db):
        txn = db.begin()
        txn.insert("r", (5, 6))
        txn.abort()
        assert (5, 6) not in db.relation("r")

    def test_committed_transaction_rejects_further_ops(self, db):
        txn = db.begin()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.insert("r", (9, 9))
        with pytest.raises(TransactionError):
            txn.commit()

    def test_aborted_transaction_rejects_commit(self, db):
        txn = db.begin()
        txn.abort()
        with pytest.raises(TransactionError):
            txn.commit()

    def test_read_only_detection(self, db):
        txn = db.begin()
        assert txn.is_read_only()
        txn.insert("r", (5, 6))
        assert not txn.is_read_only()

    def test_unknown_relation(self, db):
        txn = db.begin()
        with pytest.raises(UnknownRelationError):
            txn.insert("zzz", (1,))

    def test_bad_row_shape(self, db):
        txn = db.begin()
        with pytest.raises(SchemaError):
            txn.insert("r", (1,))

    def test_insert_many_delete_many(self, db):
        txn = db.begin()
        txn.insert_many("r", [(5, 6), (7, 8)])
        txn.delete_many("r", [(1, 2), (3, 4)])
        txn.commit()
        assert set(db.relation("r").value_tuples()) == {(5, 6), (7, 8)}


class TestContextManager:
    def test_commits_on_success(self, db):
        with db.transact() as txn:
            txn.insert("r", (5, 6))
        assert (5, 6) in db.relation("r")

    def test_aborts_on_exception(self, db):
        with pytest.raises(RuntimeError):
            with db.transact() as txn:
                txn.insert("r", (5, 6))
                raise RuntimeError("boom")
        assert (5, 6) not in db.relation("r")

    def test_explicit_commit_inside_block_is_respected(self, db):
        with db.transact() as txn:
            txn.insert("r", (5, 6))
            txn.commit()
        assert (5, 6) in db.relation("r")

    def test_explicit_abort_inside_block_is_respected(self, db):
        with db.transact() as txn:
            txn.insert("r", (5, 6))
            txn.abort()
        assert (5, 6) not in db.relation("r")


class TestReplayEquivalence:
    def test_net_effect_equals_sequential_replay(self, db):
        """τ(r) = r ∪ i_r − d_r must match replaying the op sequence."""
        import random

        rng = random.Random(42)
        for _ in range(50):
            # Snapshot current state; build a random op sequence.
            before = set(db.relation("r").value_tuples())
            replay = set(before)
            txn = db.begin()
            for _ in range(rng.randint(1, 10)):
                row = (rng.randint(0, 4), rng.randint(0, 4))
                if rng.random() < 0.5:
                    txn.insert("r", row)
                    replay.add(row)
                else:
                    txn.delete("r", row)
                    replay.discard(row)
            txn.commit()
            assert set(db.relation("r").value_tuples()) == replay
