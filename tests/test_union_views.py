"""Unit and property tests for differentially maintained union views."""

import random

import pytest

from repro.algebra.expressions import BaseRef
from repro.engine.database import Database
from repro.errors import MaintenanceError, SchemaError
from repro.extensions.union_views import UnionView

from tests.conftest import run_random_transactions


@pytest.fixture
def db():
    database = Database()
    database.create_relation(
        "orders", ["order_id", "cust", "amount"], [(1, 7, 100), (2, 8, 9000)]
    )
    database.create_relation("priority", ["cust"], [(7,)])
    return database


def _branches():
    big = BaseRef("orders").select("amount > 5000").project(["order_id"])
    from_priority = (
        BaseRef("orders").join(BaseRef("priority")).project(["order_id"])
    )
    return [big, from_priority]


class TestConstruction:
    def test_materializes_union_of_branches(self, db):
        view = UnionView(db, "hot", _branches())
        # order 1 via priority, order 2 via amount.
        assert view.contents.counts() == {(1,): 1, (2,): 1}

    def test_counts_add_across_branches(self, db):
        with db.transact() as txn:
            txn.insert("orders", (3, 7, 9999))  # big AND priority
        view = UnionView(db, "hot", _branches())
        assert view.contents.count_of((3,)) == 2

    def test_empty_branch_list_rejected(self, db):
        with pytest.raises(MaintenanceError):
            UnionView(db, "v", [])

    def test_mismatched_schemas_rejected(self, db):
        with pytest.raises(SchemaError):
            UnionView(
                db,
                "v",
                [
                    BaseRef("orders").project(["order_id"]),
                    BaseRef("orders").project(["cust"]),
                ],
            )

    def test_relation_names_cover_all_branches(self, db):
        view = UnionView(db, "hot", _branches())
        assert view.relation_names == {"orders", "priority"}


class TestMaintenance:
    def test_insert_through_one_branch(self, db):
        view = UnionView(db, "hot", _branches())
        with db.transact() as txn:
            txn.insert("orders", (3, 9, 8000))
        assert view.contents.count_of((3,)) == 1
        view.verify()

    def test_insert_through_both_branches(self, db):
        view = UnionView(db, "hot", _branches())
        with db.transact() as txn:
            txn.insert("orders", (3, 7, 8000))
        assert view.contents.count_of((3,)) == 2
        view.verify()

    def test_losing_one_branch_keeps_tuple(self, db):
        view = UnionView(db, "hot", _branches())
        with db.transact() as txn:
            txn.insert("orders", (3, 7, 8000))
        with db.transact() as txn:
            txn.delete("priority", (7,))  # drops the priority support
        assert view.contents.count_of((3,)) == 1
        view.verify()

    def test_irrelevant_updates_screened_per_branch(self, db):
        view = UnionView(db, "hot", _branches())
        with db.transact() as txn:
            # cheap order from a non-priority customer: irrelevant to
            # the amount branch; the join branch cannot be screened
            # state-independently, so maintenance may still run — but
            # the view must not change.
            txn.insert("orders", (4, 9, 5))
        assert view.contents.count_of((4,)) == 0
        view.verify()

    def test_untouched_commit_ignored(self, db):
        db.create_relation("other", ["X"], [(1,)])
        view = UnionView(db, "hot", _branches())
        before = view.updates_applied
        with db.transact() as txn:
            txn.insert("other", (2,))
        assert view.updates_applied == before

    def test_detach(self, db):
        view = UnionView(db, "hot", _branches())
        view.detach()
        with db.transact() as txn:
            txn.insert("orders", (3, 9, 8000))
        assert view.contents.count_of((3,)) == 0

    def test_verify_detects_corruption(self, db):
        view = UnionView(db, "hot", _branches())
        view.contents.add((999,))
        with pytest.raises(MaintenanceError):
            view.verify()


class TestRandomizedSoak:
    def test_union_view_matches_recomputation(self):
        db = Database()
        db.create_relation("r", ["A", "B"], [(i, i % 4) for i in range(10)])
        db.create_relation("s", ["B", "C"], [(i % 4, i) for i in range(10)])
        branches = [
            BaseRef("r").select("A <= 4").project(["B"]),
            BaseRef("r").join(BaseRef("s")).select("C >= 3").project(["B"]),
        ]
        view = UnionView(db, "u", branches)
        rng = random.Random(88)
        for _ in range(25):
            run_random_transactions(db, rng, 2)
            view.verify()

    def test_filter_ablation_agrees(self):
        db = Database()
        db.create_relation("r", ["A", "B"], [(i, i % 4) for i in range(10)])
        branches = [
            BaseRef("r").select("A <= 4").project(["B"]),
            BaseRef("r").select("B >= 2").project(["B"]),
        ]
        filtered = UnionView(db, "a", branches, use_relevance_filter=True)
        unfiltered = UnionView(db, "b", branches, use_relevance_filter=False)
        rng = random.Random(89)
        run_random_transactions(db, rng, 30)
        assert filtered.contents == unfiltered.contents
        filtered.verify()
