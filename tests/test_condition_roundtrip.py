"""Property tests: condition rendering and reparsing are inverses."""

from hypothesis import given, settings

from repro.algebra.conditions import parse_condition

from tests.strategies import conditions, conjunctions


class TestRoundTrip:
    @settings(max_examples=300, deadline=None)
    @given(conditions(max_disjuncts=3, max_atoms=4))
    def test_str_reparses_to_equal_condition(self, condition):
        """str() output is valid parser input producing the same DNF.

        Atom canonicalization makes this exact: both sides normalize
        offsets and constant placement identically.
        """
        rendered = str(condition)
        reparsed = parse_condition(rendered)
        assert reparsed == condition

    @settings(max_examples=300, deadline=None)
    @given(conjunctions(max_atoms=4))
    def test_conjunction_atoms_round_trip(self, conjunction):
        if not conjunction.atoms:
            return  # "true" parses to an empty-disjunct condition
        rendered = " and ".join(str(a) for a in conjunction.atoms)
        reparsed = parse_condition(rendered)
        assert reparsed.disjuncts[0].atoms == conjunction.atoms

    @settings(max_examples=200, deadline=None)
    @given(conditions(max_disjuncts=2, max_atoms=3))
    def test_round_trip_preserves_semantics(self, condition):
        """Even if syntax differed, evaluation must not."""
        reparsed = parse_condition(str(condition))
        variables = sorted(condition.variables() | reparsed.variables())
        # Spot-check a small grid of assignments.
        for base in range(-3, 4):
            env = {v: base + i for i, v in enumerate(variables)}
            assert condition.evaluate(env) == reparsed.evaluate(env)
