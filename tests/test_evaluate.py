"""Unit tests for the counted and tagged evaluation operators."""

import pytest

from repro.algebra.conditions import Condition
from repro.algebra.evaluate import (
    compile_condition,
    evaluate,
    join_relations,
    product_relations,
    project_relation,
    rename_relation,
    select_relation,
    tagged_join,
    tagged_product,
    tagged_project,
    tagged_select,
)
from repro.algebra.expressions import BaseRef
from repro.algebra.relation import Relation, TaggedRelation
from repro.algebra.schema import RelationSchema
from repro.algebra.tags import Tag


@pytest.fixture
def r():
    return Relation.from_rows(
        RelationSchema(["A", "B"]), [(1, 10), (2, 10), (3, 20)]
    )


@pytest.fixture
def s():
    return Relation.from_rows(RelationSchema(["B", "C"]), [(10, 7), (20, 8)])


class TestCompileCondition:
    def test_true_false(self):
        schema = RelationSchema(["A"])
        assert compile_condition(Condition.true(), schema)((1,))
        assert not compile_condition(Condition.false(), schema)((1,))

    def test_single_conjunct(self):
        schema = RelationSchema(["A", "B"])
        pred = compile_condition(Condition.coerce("A < B + 1"), schema)
        assert pred((5, 5))
        assert not pred((6, 5))

    def test_dnf(self):
        schema = RelationSchema(["A"])
        pred = compile_condition(Condition.coerce("A < 0 or A > 10"), schema)
        assert pred((-1,)) and pred((11,)) and not pred((5,))

    def test_constant_left_side(self):
        schema = RelationSchema(["A"])
        pred = compile_condition(Condition.coerce("3 < A"), schema)
        assert pred((4,)) and not pred((3,))

    def test_ground_atom(self):
        schema = RelationSchema(["A"])
        from repro.algebra.conditions import Atom

        pred = compile_condition(Condition.of_atoms([Atom(1, "<", 2)]), schema)
        assert pred((0,))


class TestCountedOperators:
    def test_select_preserves_counts(self, r):
        r.add((1, 10))  # count 2
        out = select_relation(r, Condition.coerce("B = 10"))
        assert out.count_of((1, 10)) == 2
        assert (3, 20) not in out

    def test_project_sums_counts(self, r):
        out = project_relation(r, ["B"])
        assert out.count_of((10,)) == 2
        assert out.count_of((20,)) == 1

    def test_project_reorders(self, r):
        out = project_relation(r, ["B", "A"])
        assert (10, 1) in out

    def test_join_multiplies_counts(self, r, s):
        r.add((1, 10))  # (1,10) count 2
        out = join_relations(r, s)
        assert out.schema.names == ("A", "B", "C")
        assert out.count_of((1, 10, 7)) == 2
        assert out.count_of((3, 20, 8)) == 1

    def test_join_no_shared_is_product(self):
        a = Relation.from_rows(RelationSchema(["A"]), [(1,), (2,)])
        b = Relation.from_rows(RelationSchema(["B"]), [(5,)])
        out = join_relations(a, b)
        assert len(out) == 2

    def test_join_build_side_choice_is_transparent(self, r, s):
        # join picks the smaller side to hash; result must not depend
        # on which side that is.
        big = Relation.from_rows(
            RelationSchema(["B", "C"]), [(10, i) for i in range(10)]
        )
        assert join_relations(r, big) == join_relations(r, big)
        left = join_relations(r, s)
        # reversed operands give same tuples modulo column order
        right = join_relations(s, r)
        assert len(left) == len(right)

    def test_product(self, r):
        t = Relation.from_rows(RelationSchema(["X"]), [(1,), (2,)])
        out = product_relations(r, t)
        assert len(out) == 6
        assert out.schema.names == ("A", "B", "X")

    def test_rename(self, r):
        out = rename_relation(r, {"A": "Z"})
        assert out.schema.names == ("Z", "B")
        assert (1, 10) in out


class TestEvaluateTree:
    def test_full_expression(self, r, s):
        instances = {"r": r, "s": s}
        expr = (
            BaseRef("r").join(BaseRef("s")).select("C > 7").project(["A"])
        )
        out = evaluate(expr, instances)
        assert out.counts() == {(3,): 1}

    def test_projection_counts_through_tree(self, r, s):
        instances = {"r": r, "s": s}
        expr = BaseRef("r").join(BaseRef("s")).project(["C"])
        out = evaluate(expr, instances)
        assert out.count_of((7,)) == 2  # two A values share B=10

    def test_rename_in_tree(self, r):
        out = evaluate(BaseRef("r").rename({"B": "Z"}), {"r": r})
        assert out.schema.names == ("A", "Z")

    def test_validates_before_evaluating(self, r):
        from repro.errors import ExpressionError

        with pytest.raises(ExpressionError):
            evaluate(BaseRef("r").select("Z < 1"), {"r": r})


class TestTaggedOperators:
    def _tagged(self, schema_names, items):
        t = TaggedRelation(RelationSchema(schema_names))
        for values, tag, count in items:
            t.add(values, tag, count)
        return t

    def test_tagged_select_keeps_tags(self):
        t = self._tagged(
            ["A"], [((1,), Tag.INSERT, 1), ((2,), Tag.DELETE, 1), ((3,), Tag.OLD, 1)]
        )
        out = tagged_select(t, Condition.coerce("A <= 2"))
        assert out.count_of((1,), Tag.INSERT) == 1
        assert out.count_of((2,), Tag.DELETE) == 1
        assert out.count_of((3,), Tag.OLD) == 0

    def test_tagged_project_sums_per_tag(self):
        t = self._tagged(
            ["A", "B"],
            [
                ((1, 10), Tag.INSERT, 1),
                ((2, 10), Tag.INSERT, 1),
                ((3, 10), Tag.DELETE, 1),
            ],
        )
        out = tagged_project(t, ["B"])
        assert out.count_of((10,), Tag.INSERT) == 2
        assert out.count_of((10,), Tag.DELETE) == 1

    def test_tagged_join_combines_tags(self):
        left = self._tagged(["A", "B"], [((1, 10), Tag.INSERT, 1)])
        right = self._tagged(
            ["B", "C"], [((10, 7), Tag.OLD, 1), ((10, 8), Tag.DELETE, 1)]
        )
        out = tagged_join(left, right)
        assert out.count_of((1, 10, 7), Tag.INSERT) == 1
        # insert x delete -> ignore: must not emerge.
        assert len(out) == 1

    def test_tagged_join_multiplies_counts(self):
        left = self._tagged(["A", "B"], [((1, 10), Tag.OLD, 2)])
        right = self._tagged(["B", "C"], [((10, 7), Tag.OLD, 3)])
        out = tagged_join(left, right)
        assert out.count_of((1, 10, 7), Tag.OLD) == 6

    def test_tagged_product_ignores_opposites(self):
        left = self._tagged(["A"], [((1,), Tag.INSERT, 1)])
        right = self._tagged(["B"], [((2,), Tag.DELETE, 1), ((3,), Tag.OLD, 1)])
        out = tagged_product(left, right)
        assert out.count_of((1, 3), Tag.INSERT) == 1
        assert len(out) == 1
