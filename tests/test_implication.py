"""Unit and property tests for condition implication and minimization."""

import pytest
from hypothesis import given, settings

from repro.algebra.conditions import Atom, Conjunction, parse_condition
from repro.core.implication import (
    conjunctions_equivalent,
    implies,
    minimize_condition,
    minimize_conjunction,
    negate_atom,
)
from repro.core.satisfiability import brute_force_satisfiable
from repro.errors import ConditionError

from tests.strategies import small_conjunctions, solution_box


def _conj(text):
    return parse_condition(text).disjuncts[0]


class TestNegateAtom:
    @pytest.mark.parametrize(
        "op,offset",
        [("<=", 0), (">=", 2), ("<", -1), (">", 3), ("=", 0), ("=", -2)],
    )
    def test_negation_is_exact_complement(self, op, offset):
        atom = Atom("x", op, "y", offset)
        negated = negate_atom(atom)
        for x in range(-8, 9):
            for y in range(-8, 9):
                env = {"x": x, "y": y}
                assert atom.evaluate(env) != any(
                    n.evaluate(env) for n in negated
                )

    def test_single_variable(self):
        (n,) = negate_atom(Atom("x", "<", 10))
        assert str(n) == "x >= 10"

    def test_ground_rejected(self):
        with pytest.raises(ConditionError):
            negate_atom(Atom(1, "<", 2))


class TestImplies:
    def test_transitive_chain(self):
        conj = _conj("x <= y and y <= z")
        assert implies(conj, Atom("x", "<=", "z"))
        assert not implies(conj, Atom("z", "<=", "x"))

    def test_bound_tightening(self):
        conj = _conj("x <= 3")
        assert implies(conj, Atom("x", "<", 10))
        assert implies(conj, Atom("x", "<=", 3))
        assert not implies(conj, Atom("x", "<=", 2))

    def test_equality_implication(self):
        conj = _conj("x = y + 2")
        assert implies(conj, Atom("x", ">", "y"))
        assert implies(conj, Atom("x", "=", "y", 2))
        assert not implies(conj, Atom("x", "=", "y"))

    def test_unsatisfiable_implies_everything(self):
        conj = _conj("x < 0 and x > 0")
        assert implies(conj, Atom("x", "=", 12345))

    def test_ground_atoms(self):
        conj = _conj("x <= 3")
        assert implies(conj, Atom(1, "<", 2))
        assert not implies(conj, Atom(2, "<", 1))

    def test_empty_conjunction_implies_only_tautologies(self):
        empty = Conjunction()
        assert implies(empty, Atom("x", "<=", "x"))
        assert not implies(empty, Atom("x", "<=", 0))


class TestMinimize:
    def test_drops_weaker_bound(self):
        out = minimize_conjunction(_conj("x < 5 and x < 7"))
        assert [str(a) for a in out.atoms] == ["x < 5"]

    def test_drops_transitively_implied(self):
        out = minimize_conjunction(_conj("x <= y and y <= z and x <= z"))
        assert len(out.atoms) == 2

    def test_drops_duplicates(self):
        out = minimize_conjunction(_conj("x = y and x = y"))
        assert len(out.atoms) == 1

    def test_keeps_independent_atoms(self):
        out = minimize_conjunction(_conj("x < 5 and y > 2"))
        assert len(out.atoms) == 2

    def test_drops_ground_true(self):
        out = minimize_conjunction(_conj("1 < 2 and x < 5"))
        assert [str(a) for a in out.atoms] == ["x < 5"]

    def test_unsatisfiable_collapses_to_one_witness(self):
        # Every atom is implied by the (unsatisfiable) rest, so
        # minimization keeps shrinking; the result must still be
        # unsatisfiable.
        out = minimize_conjunction(_conj("x < 0 and x > 0 and y = 1"))
        from repro.core.satisfiability import is_satisfiable_conjunction

        assert not is_satisfiable_conjunction(out)

    @settings(max_examples=150, deadline=None)
    @given(small_conjunctions(max_atoms=4))
    def test_minimization_preserves_solutions(self, conj):
        minimized = minimize_conjunction(conj)
        assert len(minimized.atoms) <= len(conj.atoms)
        bound = solution_box(conj)
        from itertools import product

        variables = sorted(conj.variables() | minimized.variables())
        if not variables:
            assert brute_force_satisfiable(conj, -1, 1) == (
                brute_force_satisfiable(minimized, -1, 1)
            )
            return
        for values in product(range(-bound, bound + 1), repeat=len(variables)):
            env = dict(zip(variables, values))
            assert conj.evaluate(env) == minimized.evaluate(env)

    @settings(max_examples=150, deadline=None)
    @given(small_conjunctions(max_atoms=4))
    def test_minimized_is_equivalent(self, conj):
        assert conjunctions_equivalent(conj, minimize_conjunction(conj))


class TestEquivalence:
    def test_strict_vs_weak_forms(self):
        assert conjunctions_equivalent(_conj("x < 5"), _conj("x <= 4"))
        assert not conjunctions_equivalent(_conj("x < 5"), _conj("x <= 5"))

    def test_reordered_atoms(self):
        assert conjunctions_equivalent(
            _conj("x < 5 and y > 2"), _conj("y > 2 and x < 5")
        )

    def test_both_unsatisfiable(self):
        assert conjunctions_equivalent(
            _conj("x < 0 and x > 0"), _conj("y = 1 and y = 2")
        )

    def test_sat_vs_unsat(self):
        assert not conjunctions_equivalent(_conj("x < 5"), _conj("x < 0 and x > 0"))


class TestMinimizeCondition:
    def test_drops_dead_disjuncts(self):
        out = minimize_condition(parse_condition("x < 0 and x > 0 or y < 5 and y < 9"))
        assert str(out) == "y < 5"

    def test_all_dead_gives_false(self):
        out = minimize_condition(parse_condition("x < 0 and x > 0"))
        assert out.is_false()
