"""Contract tests for the package's public surface."""

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_key_entry_points_present(self):
        for name in (
            "Database",
            "ViewMaintainer",
            "BaseRef",
            "parse_condition",
            "is_satisfiable",
            "is_irrelevant_update",
            "compute_view_delta",
            "check_view_consistency",
        ):
            assert name in repro.__all__


class TestQuickstartDocstring:
    def test_readme_quickstart_flow(self):
        """The exact flow documented in the package docstring/README."""
        from repro import BaseRef, Database, ViewMaintainer

        db = Database()
        db.create_relation("r", ["A", "B"], [(1, 2), (5, 10), (12, 15)])
        db.create_relation("s", ["C", "D"], [(2, 10), (10, 20)])

        maintainer = ViewMaintainer(db)
        view = maintainer.define_view(
            "u",
            BaseRef("r").product(BaseRef("s"))
            .select("A < 10 and C > 5 and B = C")
            .project(["A", "D"]),
        )
        with db.transact() as txn:
            txn.insert("r", (9, 10))
            txn.insert("r", (11, 10))
        assert view.contents.counts() == {(5, 20): 1, (9, 20): 1}
        stats = maintainer.stats("u")
        assert stats.tuples_screened == 2
        assert stats.tuples_irrelevant == 1
        assert stats.deltas_applied == 1


class TestDoctests:
    def test_module_doctests_pass(self):
        """Run the doctest examples embedded in key modules."""
        import doctest

        import repro.algebra.conditions
        import repro.algebra.schema
        import repro.algebra.tuples
        import repro.bench.reporting
        import repro.core.graph
        import repro.core.normalize
        import repro.core.satisfiability
        import repro.core.substitution
        import repro.core.truthtable

        for module in (
            repro.algebra.conditions,
            repro.algebra.schema,
            repro.algebra.tuples,
            repro.bench.reporting,
            repro.core.graph,
            repro.core.normalize,
            repro.core.satisfiability,
            repro.core.substitution,
            repro.core.truthtable,
        ):
            failures, _ = doctest.testmod(module)
            assert failures == 0, module.__name__
