"""Unit and integration tests for the ViewMaintainer pipeline."""

import random

import pytest

from repro.algebra.expressions import BaseRef
from repro.core.consistency import check_view_consistency
from repro.core.maintainer import MaintenancePolicy, ViewMaintainer
from repro.engine.database import Database
from repro.errors import MaintenanceError, UnknownViewError

from tests.conftest import run_random_transactions


@pytest.fixture
def db():
    database = Database()
    database.create_relation("r", ["A", "B"], [(1, 2), (5, 10), (12, 15)])
    database.create_relation("s", ["C", "D"], [(2, 10), (10, 20)])
    return database


@pytest.fixture
def view_expr():
    return (
        BaseRef("r")
        .product(BaseRef("s"))
        .select("A < 10 and C > 5 and B = C")
        .project(["A", "D"])
    )


class TestViewManagement:
    def test_define_materializes(self, db, view_expr):
        m = ViewMaintainer(db)
        view = m.define_view("u", view_expr)
        assert view.contents.counts() == {(5, 20): 1}
        assert m.view("u") is view
        assert m.view_names() == ("u",)

    def test_duplicate_name_rejected(self, db, view_expr):
        m = ViewMaintainer(db)
        m.define_view("u", view_expr)
        with pytest.raises(MaintenanceError):
            m.define_view("u", view_expr)

    def test_unknown_view(self, db):
        m = ViewMaintainer(db)
        with pytest.raises(UnknownViewError):
            m.view("zzz")
        with pytest.raises(UnknownViewError):
            m.refresh("zzz")

    def test_drop_view(self, db, view_expr):
        m = ViewMaintainer(db)
        m.define_view("u", view_expr)
        m.drop_view("u")
        assert m.view_names() == ()
        with pytest.raises(UnknownViewError):
            m.drop_view("u")

    def test_policy_query(self, db, view_expr):
        m = ViewMaintainer(db)
        m.define_view("u", view_expr, policy=MaintenancePolicy.DEFERRED)
        assert m.policy("u") is MaintenancePolicy.DEFERRED

    def test_detach_stops_maintenance(self, db, view_expr):
        m = ViewMaintainer(db)
        view = m.define_view("u", view_expr)
        m.detach()
        with db.transact() as txn:
            txn.insert("r", (9, 10))
        assert view.contents.counts() == {(5, 20): 1}


class TestImmediateMaintenance:
    def test_example_41_insertions(self, db, view_expr):
        m = ViewMaintainer(db, auto_verify=True)
        view = m.define_view("u", view_expr)
        with db.transact() as txn:
            txn.insert("r", (9, 10))   # relevant
            txn.insert("r", (11, 10))  # provably irrelevant
        assert view.contents.counts() == {(5, 20): 1, (9, 20): 1}
        stats = m.stats("u")
        assert stats.tuples_screened == 2
        assert stats.tuples_irrelevant == 1

    def test_fully_irrelevant_transaction_skipped(self, db, view_expr):
        m = ViewMaintainer(db, auto_verify=True)
        m.define_view("u", view_expr)
        with db.transact() as txn:
            txn.insert("r", (11, 10))
            txn.insert("r", (50, 3))
        stats = m.stats("u")
        assert stats.transactions_skipped == 1
        assert stats.deltas_applied == 0

    def test_unrelated_relation_ignored(self, db, view_expr):
        db.create_relation("other", ["X"], [(1,)])
        m = ViewMaintainer(db, auto_verify=True)
        m.define_view("u", view_expr)
        with db.transact() as txn:
            txn.insert("other", (2,))
        assert m.stats("u").transactions_seen == 0

    def test_deletes_maintained(self, db, view_expr):
        m = ViewMaintainer(db, auto_verify=True)
        view = m.define_view("u", view_expr)
        with db.transact() as txn:
            txn.delete("r", (5, 10))
        assert view.contents.counts() == {}

    def test_multi_view_same_commit(self, db, view_expr):
        m = ViewMaintainer(db, auto_verify=True)
        u = m.define_view("u", view_expr)
        pb = m.define_view("pb", BaseRef("r").project(["B"]))
        with db.transact() as txn:
            txn.insert("r", (9, 10))
        assert (9, 20) in u.contents
        assert pb.contents.count_of((10,)) == 2

    def test_without_filter_same_results(self, db, view_expr):
        filtered = ViewMaintainer(db, use_relevance_filter=True)
        unfiltered = ViewMaintainer(db, use_relevance_filter=False)
        a = filtered.define_view("a", view_expr)
        b = unfiltered.define_view("b", view_expr)
        rng = random.Random(4)
        run_random_transactions(db, rng, 25, value_max=14)
        assert a.contents == b.contents
        assert unfiltered.stats("b").tuples_screened == 0

    def test_without_indexes_same_results(self, db, view_expr):
        with_idx = ViewMaintainer(db, use_indexes=True)
        without_idx = ViewMaintainer(db, use_indexes=False)
        a = with_idx.define_view("a", view_expr)
        b = without_idx.define_view("b", view_expr)
        rng = random.Random(6)
        run_random_transactions(db, rng, 25, value_max=14)
        assert a.contents == b.contents


class TestDeferredMaintenance:
    def test_pending_accumulates_until_refresh(self, db, view_expr):
        m = ViewMaintainer(db)
        view = m.define_view("u", view_expr, policy=MaintenancePolicy.DEFERRED)
        with db.transact() as txn:
            txn.insert("r", (9, 10))
        # Not yet applied.
        assert view.contents.counts() == {(5, 20): 1}
        assert m.pending_deltas("u")["r"].inserted == {(9, 10): 1}
        assert m.refresh("u")
        assert view.contents.counts() == {(5, 20): 1, (9, 20): 1}
        check_view_consistency(view, db.instances())

    def test_refresh_with_nothing_pending(self, db, view_expr):
        m = ViewMaintainer(db)
        m.define_view("u", view_expr, policy=MaintenancePolicy.DEFERRED)
        assert not m.refresh("u")

    def test_pending_composition_cancels(self, db, view_expr):
        m = ViewMaintainer(db)
        m.define_view("u", view_expr, policy=MaintenancePolicy.DEFERRED)
        with db.transact() as txn:
            txn.insert("r", (9, 10))
        with db.transact() as txn:
            txn.delete("r", (9, 10))
        assert m.pending_deltas("u") == {}
        assert not m.refresh("u")

    def test_deferred_matches_recomputation_after_many_txns(self, db, view_expr):
        m = ViewMaintainer(db)
        view = m.define_view("u", view_expr, policy=MaintenancePolicy.DEFERRED)
        rng = random.Random(11)
        run_random_transactions(db, rng, 30, value_max=14)
        m.refresh("u")
        check_view_consistency(view, db.instances())

    def test_interleaved_refreshes(self, db, view_expr):
        m = ViewMaintainer(db)
        view = m.define_view("u", view_expr, policy=MaintenancePolicy.DEFERRED)
        rng = random.Random(12)
        for _ in range(5):
            run_random_transactions(db, rng, 6, value_max=14)
            m.refresh("u")
            check_view_consistency(view, db.instances())


class TestAutoVerify:
    def test_auto_verify_catches_corruption(self, db, view_expr):
        m = ViewMaintainer(db, auto_verify=True)
        view = m.define_view("u", view_expr)
        # Corrupt the view behind the maintainer's back.
        view.contents.add((99, 99))
        with pytest.raises(MaintenanceError):
            with db.transact() as txn:
                txn.insert("r", (9, 10))


class TestStats:
    def test_stats_as_dict(self, db, view_expr):
        m = ViewMaintainer(db)
        m.define_view("u", view_expr)
        d = m.stats("u").as_dict()
        assert set(d) >= {"transactions_seen", "deltas_applied"}

    def test_report_renders_all_views(self, db, view_expr):
        m = ViewMaintainer(db)
        m.define_view("u", view_expr)
        m.define_view("pb", BaseRef("r").project(["B"]))
        with db.transact() as txn:
            txn.insert("r", (9, 10))
        text = m.report()
        assert "u" in text and "pb" in text
        assert "immediate" in text


class TestNamespace:
    def test_view_name_colliding_with_relation_rejected(self, db, view_expr):
        m = ViewMaintainer(db)
        with pytest.raises(MaintenanceError, match="collides"):
            m.define_view("r", view_expr)


class TestSubscribers:
    def test_immediate_subscriber_receives_delta(self, db, view_expr):
        m = ViewMaintainer(db)
        m.define_view("u", view_expr)
        received = []
        m.subscribe("u", lambda view, delta: received.append(delta))
        with db.transact() as txn:
            txn.insert("r", (9, 10))
        assert len(received) == 1
        assert received[0].inserted == {(9, 20): 1}

    def test_subscriber_not_called_on_screened_commit(self, db, view_expr):
        m = ViewMaintainer(db)
        m.define_view("u", view_expr)
        received = []
        m.subscribe("u", lambda view, delta: received.append(delta))
        with db.transact() as txn:
            txn.insert("r", (11, 10))  # provably irrelevant
        assert received == []

    def test_deferred_subscriber_fires_at_refresh(self, db, view_expr):
        m = ViewMaintainer(db)
        m.define_view("u", view_expr, policy=MaintenancePolicy.DEFERRED)
        received = []
        m.subscribe("u", lambda view, delta: received.append(delta))
        with db.transact() as txn:
            txn.insert("r", (9, 10))
        assert received == []  # nothing until refresh
        m.refresh("u")
        assert len(received) == 1

    def test_unsubscribe(self, db, view_expr):
        m = ViewMaintainer(db)
        m.define_view("u", view_expr)
        received = []
        callback = lambda view, delta: received.append(delta)  # noqa: E731
        m.subscribe("u", callback)
        m.unsubscribe("u", callback)
        with db.transact() as txn:
            txn.insert("r", (9, 10))
        assert received == []
        m.unsubscribe("u", callback)  # idempotent
