"""Tests of the exception hierarchy contract.

Every deliberate failure in the library derives from ReproError, so a
single except clause catches library errors without swallowing Python
programming errors.
"""

import pytest

from repro.errors import (
    ConditionError,
    DomainError,
    ExpressionError,
    MaintenanceError,
    ReproError,
    SchemaError,
    TransactionError,
    UnknownRelationError,
    UnknownViewError,
    ViewDefinitionError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            SchemaError,
            DomainError,
            ConditionError,
            ExpressionError,
            TransactionError,
            UnknownRelationError,
            UnknownViewError,
            ViewDefinitionError,
            MaintenanceError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_unknown_relation_is_transaction_error(self):
        assert issubclass(UnknownRelationError, TransactionError)

    def test_view_definition_is_expression_error(self):
        assert issubclass(ViewDefinitionError, ExpressionError)

    def test_integrity_violation_is_maintenance_error(self):
        from repro.extensions.assertions import IntegrityViolation

        assert issubclass(IntegrityViolation, MaintenanceError)

    def test_persistence_error_is_repro_error(self):
        from repro.engine.persistence import PersistenceError

        assert issubclass(PersistenceError, ReproError)

    def test_shell_error_is_repro_error(self):
        from repro.cli import ShellError

        assert issubclass(ShellError, ReproError)


class TestCatchability:
    """One except clause catches all library failures."""

    def test_domain_failure(self):
        from repro.algebra.domains import FiniteDomain

        with pytest.raises(ReproError):
            FiniteDomain(5, 1)

    def test_condition_failure(self):
        from repro.algebra.conditions import parse_condition

        with pytest.raises(ReproError):
            parse_condition("x != 5")

    def test_engine_failure(self):
        from repro.engine.database import Database

        with pytest.raises(ReproError):
            Database().relation("missing")

    def test_maintenance_failure(self):
        from repro.algebra.relation import Relation
        from repro.algebra.schema import RelationSchema

        with pytest.raises(ReproError):
            Relation(RelationSchema(["A"])).discard((1,))

    def test_python_errors_pass_through(self):
        """TypeError from API misuse must NOT be a ReproError."""
        from repro.algebra.relation import Relation
        from repro.algebra.schema import RelationSchema

        with pytest.raises(TypeError):
            hash(Relation(RelationSchema(["A"])))
