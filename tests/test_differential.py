"""Unit tests for differential view-delta computation (Section 5)."""

import pytest

from repro.algebra.conditions import Condition
from repro.algebra.expressions import BaseRef, to_normal_form
from repro.algebra.relation import Delta, Relation
from repro.algebra.schema import RelationSchema
from repro.core.differential import (
    compute_view_delta,
    project_view_delta,
    select_view_delta,
)
from repro.errors import MaintenanceError


@pytest.fixture
def catalog():
    return {
        "r": RelationSchema(["A", "B"]),
        "s": RelationSchema(["B", "C"]),
    }


def _instances(catalog, r_rows, s_rows):
    return {
        "r": Relation.from_rows(catalog["r"], r_rows),
        "s": Relation.from_rows(catalog["s"], s_rows),
    }


class TestSelectViewDelta:
    """Section 5.1: v' = v ∪ σ_C(i_r) − σ_C(d_r)."""

    def test_filters_both_sides(self, catalog):
        delta = Delta(
            catalog["r"],
            inserted=[(1, 5), (1, 50)],
            deleted=[(2, 7), (2, 70)],
        )
        out = select_view_delta(Condition.coerce("B < 10"), delta)
        assert set(out.inserted) == {(1, 5)}
        assert set(out.deleted) == {(2, 7)}

    def test_needs_no_base_state(self, catalog):
        # The function signature itself proves the point: no relation
        # contents are passed, exactly as the paper observes.
        delta = Delta(catalog["r"], inserted=[(1, 5)])
        out = select_view_delta(Condition.true(), delta)
        assert set(out.inserted) == {(1, 5)}


class TestProjectViewDelta:
    """Section 5.2: counted projection of a delta."""

    def test_aggregates_counts(self, catalog):
        delta = Delta(catalog["r"], inserted=[(1, 10), (2, 10)], deleted=[(3, 20)])
        out = project_view_delta(["B"], delta)
        assert out.inserted == {(10,): 2}
        assert out.deleted == {(20,): 1}

    def test_cancellation_to_net_counts(self, catalog):
        # +2 and −1 on the same projected tuple nets to +1.
        delta = Delta(
            catalog["r"], inserted=[(1, 10), (2, 10)], deleted=[(3, 10)]
        )
        out = project_view_delta(["B"], delta)
        assert out.inserted == {(10,): 1}
        assert out.deleted == {}

    def test_exact_cancellation(self, catalog):
        delta = Delta(catalog["r"], inserted=[(1, 10)], deleted=[(3, 10)])
        assert project_view_delta(["B"], delta).is_empty()


class TestComputeViewDelta:
    def test_join_insert_only(self, catalog):
        """Example 5.2: v' = v ∪ (i_r ⋈ s)."""
        expr = BaseRef("r").join(BaseRef("s"))
        nf = to_normal_form(expr, catalog)
        # Post-state: r already contains the inserted tuple.
        instances = _instances(
            catalog, [(1, 10), (9, 20)], [(10, 100), (20, 200)]
        )
        deltas = {"r": Delta(catalog["r"], inserted=[(9, 20)])}
        out = compute_view_delta(nf, instances, deltas)
        assert out.inserted == {(9, 20, 200): 1}
        assert out.deleted == {}

    def test_join_delete_only(self, catalog):
        """Example 5.3: v' = v − (d_r ⋈ s)."""
        expr = BaseRef("r").join(BaseRef("s"))
        nf = to_normal_form(expr, catalog)
        # Post-state: r no longer contains the deleted tuple.
        instances = _instances(catalog, [(1, 10)], [(10, 100), (20, 200)])
        deltas = {"r": Delta(catalog["r"], deleted=[(9, 20)])}
        out = compute_view_delta(nf, instances, deltas)
        assert out.deleted == {(9, 20, 200): 1}
        assert out.inserted == {}

    def test_mixed_insert_delete_both_relations(self, catalog):
        """Example 5.4's six cases, verified against set algebra."""
        expr = BaseRef("r").join(BaseRef("s"))
        nf = to_normal_form(expr, catalog)
        r_delta = Delta(catalog["r"], inserted=[(3, 30)], deleted=[(1, 10)])
        s_delta = Delta(catalog["s"], inserted=[(30, 3)], deleted=[(10, 1)])
        # Build post-state.
        r_after = [(2, 20), (3, 30)]
        s_after = [(20, 2), (30, 3)]
        instances = _instances(catalog, r_after, s_after)
        out = compute_view_delta(nf, instances, {"r": r_delta, "s": s_delta})
        # Old view: {(1,10,1), (2,20,2)}; new view: {(2,20,2), (3,30,3)}.
        assert out.inserted == {(3, 30, 3): 1}
        assert out.deleted == {(1, 10, 1): 1}

    def test_insert_joining_deleted_tuple_is_ignored(self, catalog):
        """i_r ⋈ d_s must not emerge (tag table row 2)."""
        expr = BaseRef("r").join(BaseRef("s"))
        nf = to_normal_form(expr, catalog)
        # Insert (1,10) into r while deleting (10,1) from s.
        instances = _instances(catalog, [(1, 10)], [])
        deltas = {
            "r": Delta(catalog["r"], inserted=[(1, 10)]),
            "s": Delta(catalog["s"], deleted=[(10, 1)]),
        }
        out = compute_view_delta(nf, instances, deltas)
        assert out.is_empty()

    def test_empty_deltas_give_empty_view_delta(self, catalog):
        nf = to_normal_form(BaseRef("r").join(BaseRef("s")), catalog)
        instances = _instances(catalog, [(1, 10)], [(10, 1)])
        out = compute_view_delta(nf, instances, {})
        assert out.is_empty()

    def test_missing_post_state_raises(self, catalog):
        nf = to_normal_form(BaseRef("r").join(BaseRef("s")), catalog)
        deltas = {"r": Delta(catalog["r"], inserted=[(1, 10)])}
        with pytest.raises(MaintenanceError):
            compute_view_delta(nf, {"r": Relation(catalog["r"])}, deltas)

    def test_spj_example_55(self, catalog):
        """Example 5.5: V = π_A(σ_{C>10}(r ⋈ s)), insertion into r."""
        expr = BaseRef("r").join(BaseRef("s")).select("C > 10").project(["A"])
        nf = to_normal_form(expr, catalog)
        instances = _instances(
            catalog, [(1, 10), (9, 20)], [(10, 5), (20, 50)]
        )
        deltas = {"r": Delta(catalog["r"], inserted=[(9, 20)])}
        out = compute_view_delta(nf, instances, deltas)
        # (9,20) joins (20,50): C = 50 > 10, projects to A = 9.
        assert out.inserted == {(9,): 1}

    def test_delta_on_unrelated_relation_ignored(self, catalog):
        nf = to_normal_form(BaseRef("r"), catalog)
        other_schema = RelationSchema(["Z"])
        instances = {"r": Relation.from_rows(catalog["r"], [(1, 2)])}
        deltas = {"other": Delta(other_schema, inserted=[(1,)])}
        out = compute_view_delta(nf, instances, deltas)
        assert out.is_empty()

    def test_sharing_flag_does_not_change_result(self, catalog):
        expr = BaseRef("r").join(BaseRef("s")).project(["A", "C"])
        nf = to_normal_form(expr, catalog)
        instances = _instances(
            catalog,
            [(i, i % 4) for i in range(8)],
            [(i % 4, i) for i in range(8)],
        )
        deltas = {
            "r": Delta(catalog["r"], inserted=[(100, 0)], deleted=[(1, 1)]),
            "s": Delta(catalog["s"], inserted=[(0, 200)]),
        }
        # Post-state must include the delta.
        instances["r"].add((100, 0))
        instances["r"].discard((1, 1))
        instances["s"].add((0, 200))
        with_sharing = compute_view_delta(
            nf, instances, deltas, share_subexpressions=True
        )
        without = compute_view_delta(
            nf, instances, deltas, share_subexpressions=False
        )
        assert with_sharing == without
