"""Unit tests for relation schemas."""

import pytest

from repro.algebra.domains import FiniteDomain
from repro.algebra.schema import Attribute, RelationSchema
from repro.errors import SchemaError


class TestAttribute:
    def test_default_domain_is_integers(self):
        from repro.algebra.domains import IntegerDomain

        assert Attribute("A").domain == IntegerDomain()

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_renamed_keeps_domain(self):
        a = Attribute("A", FiniteDomain(0, 3))
        b = a.renamed("B")
        assert b.name == "B"
        assert b.domain == FiniteDomain(0, 3)

    def test_equality_includes_domain(self):
        assert Attribute("A") == Attribute("A")
        assert Attribute("A") != Attribute("A", FiniteDomain(0, 1))


class TestRelationSchema:
    def test_from_strings(self):
        s = RelationSchema(["A", "B"])
        assert s.names == ("A", "B")
        assert len(s) == 2
        assert list(s) == ["A", "B"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema(["A", "A"])

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema([])

    def test_index_and_contains(self):
        s = RelationSchema(["A", "B", "C"])
        assert s.index("B") == 1
        assert "C" in s
        assert "Z" not in s

    def test_index_unknown_raises(self):
        with pytest.raises(SchemaError):
            RelationSchema(["A"]).index("B")

    def test_disjointness(self):
        r = RelationSchema(["A", "B"])
        s = RelationSchema(["C", "D"])
        t = RelationSchema(["B", "C"])
        assert r.is_disjoint(s)
        assert not r.is_disjoint(t)
        assert r.shared_names(t) == ("B",)

    def test_concat_requires_disjoint(self):
        r = RelationSchema(["A", "B"])
        with pytest.raises(SchemaError):
            r.concat(RelationSchema(["B", "C"]))
        combined = r.concat(RelationSchema(["C"]))
        assert combined.names == ("A", "B", "C")

    def test_join_schema_keeps_shared_once(self):
        r = RelationSchema(["A", "B"])
        s = RelationSchema(["B", "C"])
        assert r.join_schema(s).names == ("A", "B", "C")

    def test_project_schema_preserves_order_given(self):
        s = RelationSchema(["A", "B", "C"])
        assert s.project_schema(["C", "A"]).names == ("C", "A")

    def test_project_empty_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema(["A"]).project_schema([])

    def test_positions(self):
        s = RelationSchema(["A", "B", "C"])
        assert s.positions(["C", "A"]) == (2, 0)

    def test_renamed_partial_mapping(self):
        s = RelationSchema(["A", "B"])
        renamed = s.renamed({"A": "X"})
        assert renamed.names == ("X", "B")

    def test_renamed_collision_rejected(self):
        s = RelationSchema(["A", "B"])
        with pytest.raises(SchemaError):
            s.renamed({"A": "B"})

    def test_encode_values_validates_arity(self):
        s = RelationSchema(["A", "B"])
        with pytest.raises(SchemaError):
            s.encode_values((1,))

    def test_encode_values_validates_domains(self):
        from repro.errors import DomainError

        s = RelationSchema([Attribute("A", FiniteDomain(0, 3))])
        with pytest.raises(DomainError):
            s.encode_values((9,))

    def test_encode_decode_roundtrip_with_string_domain(self):
        from repro.algebra.domains import StringDomain

        s = RelationSchema(
            [Attribute("status", StringDomain(["pending", "done"])), "n"]
        )
        codes = s.encode_values(("done", 5))
        assert codes == (1, 5)
        assert s.decode_values(codes) == ("done", 5)

    def test_equality_and_hash(self):
        assert RelationSchema(["A", "B"]) == RelationSchema(["A", "B"])
        assert RelationSchema(["A", "B"]) != RelationSchema(["B", "A"])
        assert hash(RelationSchema(["A"])) == hash(RelationSchema(["A"]))

    def test_domain_of(self):
        s = RelationSchema([Attribute("A", FiniteDomain(0, 1)), "B"])
        assert s.domain_of("A") == FiniteDomain(0, 1)
