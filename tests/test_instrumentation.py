"""Tests for contextvar-based cost recording.

The recorder must be *isolated*: nested ``recording`` blocks route to
the innermost recorder, and concurrent threads or asyncio tasks (the
view-server's sessions) each see only their own recorder.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.instrumentation import (
    CostRecorder,
    active_recorder,
    charge,
    recording,
)


class TestRecorder:
    def test_incr_get_snapshot_reset(self):
        recorder = CostRecorder()
        recorder.incr("a")
        recorder.incr("a", 4)
        assert recorder.get("a") == 5
        assert recorder.get("missing") == 0
        snap = recorder.snapshot()
        assert snap == {"a": 5}
        recorder.incr("a")
        assert snap == {"a": 5}  # snapshot is a copy
        recorder.reset()
        assert recorder.get("a") == 0


class TestRecordingContext:
    def test_charge_without_active_recorder_is_a_noop(self):
        assert active_recorder() is None
        charge("orphan", 100)  # must not raise

    def test_basic_activation(self):
        recorder = CostRecorder()
        with recording(recorder):
            assert active_recorder() is recorder
            charge("x", 2)
        assert active_recorder() is None
        assert recorder.get("x") == 2

    def test_nested_innermost_wins_then_restores(self):
        outer, inner = CostRecorder(), CostRecorder()
        with recording(outer):
            charge("n", 1)
            with recording(inner):
                charge("n", 10)
                assert active_recorder() is inner
            assert active_recorder() is outer
            charge("n", 2)
        assert outer.get("n") == 3
        assert inner.get("n") == 10

    def test_reentrant_same_recorder(self):
        recorder = CostRecorder()
        with recording(recorder):
            with recording(recorder):
                charge("n")
            charge("n")
        assert recorder.get("n") == 2

    def test_restores_on_exception(self):
        recorder = CostRecorder()
        with pytest.raises(RuntimeError), recording(recorder):
            raise RuntimeError("boom")
        assert active_recorder() is None


class TestThreadIsolation:
    def test_threads_do_not_share_the_active_recorder(self):
        main_recorder = CostRecorder()
        seen_in_thread: list[CostRecorder | None] = []
        thread_recorder = CostRecorder()

        def worker() -> None:
            # A fresh thread starts with no active recorder, even while
            # the main thread is inside a recording block.
            seen_in_thread.append(active_recorder())
            charge("thread_orphan")
            with recording(thread_recorder):
                charge("thread_local", 7)

        with recording(main_recorder):
            charge("main", 1)
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join(10)
            charge("main", 1)

        assert seen_in_thread == [None]
        assert thread_recorder.snapshot() == {"thread_local": 7}
        assert main_recorder.snapshot() == {"main": 2}


class TestAsyncioTaskIsolation:
    def test_concurrent_tasks_record_independently(self):
        async def session(recorder: CostRecorder, amount: int) -> None:
            with recording(recorder):
                charge("work", amount)
                await asyncio.sleep(0.01)  # interleave with the other task
                charge("work", amount)

        async def main() -> tuple[CostRecorder, CostRecorder]:
            a, b = CostRecorder(), CostRecorder()
            await asyncio.gather(session(a, 1), session(b, 100))
            return a, b

        a, b = asyncio.run(main())
        assert a.snapshot() == {"work": 2}
        assert b.snapshot() == {"work": 200}

    def test_task_does_not_leak_into_the_loop(self):
        async def main() -> CostRecorder | None:
            recorder = CostRecorder()

            async def inner() -> None:
                with recording(recorder):
                    charge("inner")
                    await asyncio.sleep(0)

            await asyncio.create_task(inner())
            return active_recorder()

        assert asyncio.run(main()) is None
