"""Tests for the deterministic simulation harness.

Layered the same way as ``src/repro/simulation``: unit coverage for the
virtual clock, the lying-disk :class:`FaultyWalIO`, the seeded lossy
:class:`SimChannel`, and the random SPJ view generator; then the
harness-level contracts the ISSUE pins down —

* **determinism**: the same seed produces the identical schedule,
  trace, statistics and report text on every run;
* **soundness**: modest randomized batches (crashes + partitions + DDL
  enabled) complete with zero oracle divergences;
* **sensitivity**: the oracle is not a rubber stamp — tampering with a
  maintained view, a follower replica, or a client mirror is reported,
  and injected WAL corruption is detected with a replayable seed;
* **minimization**: a failing schedule shrinks to a short reproduction
  within the replay budget.

Two environment gates mirror the CI jobs: ``REPRO_SIM_SMOKE=1`` runs
the fixed-seed smoke batch on every push, and ``REPRO_SIM_FULL=1``
(nightly) runs the 200-episode acceptance batch from the issue.
"""

import os
import random

import pytest

from benchmarks.conftest import env_flag, smoke_env
from repro.core.maintainer import MaintenancePolicy, ViewMaintainer
from repro.engine.database import Database
from repro.cli import run_simulate
from repro.simulation import (
    FaultyWalIO,
    SimClock,
    SimulationConfig,
    run_episode,
    run_simulation,
)
from repro.simulation.clock import SimClock as ClockAlias
from repro.simulation.faults import flip_segment_byte
from repro.simulation.network import SimChannel
from repro.simulation.runner import (
    EpisodeResult,
    SimFailure,
    SimulationReport,
    episode_seeds,
    generate_schedule,
    minimize_schedule,
)
from repro.simulation.workload import (
    BASE_TABLES,
    Episode,
    random_aggregate_expression,
    random_spj_expression,
)

SMOKE = smoke_env("SIM")
FULL = env_flag("REPRO_SIM_FULL")


# ----------------------------------------------------------------------
# SimClock
# ----------------------------------------------------------------------
class TestSimClock:
    def test_starts_at_zero_and_advances(self):
        clock = SimClock()
        assert clock.now == 0
        assert clock.advance() == 1
        assert clock.advance(5) == 6
        assert clock.now == 6

    def test_time_never_runs_backwards(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-1)
        assert clock.now == 0

    def test_package_export_is_the_clock(self):
        assert ClockAlias is SimClock


# ----------------------------------------------------------------------
# FaultyWalIO — the lying disk
# ----------------------------------------------------------------------
class TestFaultyWalIO:
    def _write(self, io, path, data):
        stream = io.open_append(path)
        io.write(stream, data)
        return stream

    def test_fsynced_bytes_survive_a_crash(self, tmp_path):
        io = FaultyWalIO(random.Random(1), lost_fsync_rate=0.0)
        path = str(tmp_path / "seg.jsonl")
        stream = self._write(io, path, b"alpha\n")
        io.fsync(stream)
        io.write(stream, b"unsynced\n")
        io.close(stream)  # honest fsync: rotation is a durability barrier
        assert io.crash() == []
        assert (tmp_path / "seg.jsonl").read_bytes() == b"alpha\nunsynced\n"

    def test_lost_fsync_lets_the_crash_eat_the_tail(self, tmp_path):
        io = FaultyWalIO(random.Random(2), lost_fsync_rate=1.0)
        path = str(tmp_path / "seg.jsonl")
        stream = self._write(io, path, b"alpha\n")
        io.fsync(stream)  # silently lost
        assert io.fsyncs_lost == 1
        stream.flush()
        stream.close()  # bypass io.close — the crash happens mid-life
        sizes = set()
        # The cut point is uniform over the unsynced tail: replay the
        # same pre-crash state under different fault seeds.
        for seed in range(20):
            probe = FaultyWalIO(random.Random(seed), lost_fsync_rate=1.0)
            probe_path = str(tmp_path / f"probe{seed}.jsonl")
            s = self._write(probe, probe_path, b"alpha\n")
            probe.fsync(s)
            s.flush()
            s.close()
            probe.crash()
            sizes.add(os.path.getsize(probe_path))
        assert min(sizes) < 6  # some crash cut bytes that fsync "confirmed"
        assert all(size <= 6 for size in sizes)

    def test_crash_never_cuts_below_durable(self, tmp_path):
        for seed in range(10):
            io = FaultyWalIO(random.Random(seed), lost_fsync_rate=0.0)
            path = str(tmp_path / f"d{seed}.jsonl")
            stream = self._write(io, path, b"committed\n")
            io.fsync(stream)
            io.write(stream, b"tail\n")
            stream.flush()
            stream.close()
            io.crash()
            data = open(path, "rb").read()
            assert data.startswith(b"committed\n")
            assert len(data) <= len(b"committed\ntail\n")

    def test_make_durable_is_a_flush_barrier(self, tmp_path):
        io = FaultyWalIO(random.Random(3), lost_fsync_rate=1.0)
        path = str(tmp_path / "seg.jsonl")
        stream = self._write(io, path, b"everything\n")
        stream.flush()
        io.make_durable()
        stream.close()
        assert io.crash() == []
        assert (tmp_path / "seg.jsonl").read_bytes() == b"everything\n"

    def test_crash_is_deterministic_per_rng(self, tmp_path):
        def run(seed):
            io = FaultyWalIO(random.Random(seed), lost_fsync_rate=1.0)
            path = str(tmp_path / f"r{seed}-{run.calls}.jsonl")
            run.calls += 1
            stream = self._write(io, path, b"0123456789" * 5)
            io.fsync(stream)
            stream.flush()
            stream.close()
            io.crash()
            return os.path.getsize(path)

        run.calls = 0
        assert run(7) == run(7)

    def test_stats_counters(self, tmp_path):
        io = FaultyWalIO(random.Random(4), lost_fsync_rate=1.0)
        path = str(tmp_path / "seg.jsonl")
        stream = self._write(io, path, b"abcdef\n")
        io.fsync(stream)
        stream.flush()
        stream.close()
        io.crash()
        stats = io.stats()
        assert stats["fsyncs_lost"] == 1
        assert stats["crashes"] == 1
        assert stats["bytes_discarded"] == 7 - os.path.getsize(path)

    def test_flip_segment_byte_changes_exactly_one_byte(self, tmp_path):
        directory = str(tmp_path)
        segment = tmp_path / "wal-00000000000000000001.jsonl"
        original = b"x" * 40
        segment.write_bytes(original)
        flip = flip_segment_byte(directory, random.Random(5))
        assert flip is not None
        basename, offset = flip
        assert basename == segment.name
        damaged = segment.read_bytes()
        assert len(damaged) == len(original)
        diffs = [i for i, (a, b) in enumerate(zip(original, damaged)) if a != b]
        assert diffs == [offset]

    def test_flip_segment_byte_on_empty_log(self, tmp_path):
        assert flip_segment_byte(str(tmp_path), random.Random(6)) is None


# ----------------------------------------------------------------------
# SimChannel — the lossy network
# ----------------------------------------------------------------------
class TestSimChannel:
    def _drain(self, clock, channel, until=50):
        received = []
        while clock.now < until:
            received.extend(channel.deliver_due())
            clock.advance(1)
        received.extend(channel.deliver_due())
        return received

    def test_lossless_channel_delivers_everything(self):
        clock = SimClock()
        channel = SimChannel(clock, random.Random(0), delay_max=3)
        for i in range(20):
            assert channel.send(i)
        received = self._drain(clock, channel)
        assert sorted(received) == list(range(20))
        assert channel.stats()["delivered"] == 20

    def test_fifo_mode_preserves_order(self):
        clock = SimClock()
        channel = SimChannel(clock, random.Random(1), delay_max=3, fifo=True)
        for i in range(30):
            channel.send(i)
            clock.advance(random.Random(i).randint(0, 1))
        received = self._drain(clock, channel, until=clock.now + 10)
        assert received == list(range(30))

    def test_partition_silently_discards(self):
        clock = SimClock()
        channel = SimChannel(clock, random.Random(2))
        channel.partitioned = True
        assert channel.send("lost")  # accepted — the sender cannot tell
        channel.partitioned = False
        channel.send("kept")
        received = self._drain(clock, channel, until=10)
        assert received == ["kept"]
        assert channel.stats()["dropped"] == 1

    def test_capacity_refusal(self):
        clock = SimClock()
        channel = SimChannel(clock, random.Random(3), delay_max=0, capacity=2)
        assert channel.send(1) and channel.send(2)
        assert not channel.send(3)  # refused, not silently dropped
        assert channel.stats()["refused"] == 1

    def test_drops_and_duplicates_are_counted(self):
        clock = SimClock()
        channel = SimChannel(
            clock, random.Random(4), drop_rate=0.3, duplicate_rate=0.3
        )
        for i in range(100):
            channel.send(i)
        received = self._drain(clock, channel, until=120)
        stats = channel.stats()
        assert stats["dropped"] > 0
        assert stats["duplicated"] > 0
        assert len(received) == 100 - stats["dropped"] + stats["duplicated"]

    def test_same_seed_same_delivery_history(self):
        def run():
            clock = SimClock()
            channel = SimChannel(
                clock,
                random.Random(99),
                delay_max=3,
                drop_rate=0.2,
                duplicate_rate=0.2,
                reorder_rate=0.3,
            )
            log = []
            for i in range(50):
                channel.send(i)
                log.append(tuple(channel.deliver_due()))
                clock.advance(1)
            while len(channel):
                clock.advance(1)
                log.append(tuple(channel.deliver_due()))
            return log, channel.stats()

        assert run() == run()

    def test_clear_empties_in_flight(self):
        clock = SimClock()
        channel = SimChannel(clock, random.Random(5), delay_max=5)
        for i in range(7):
            channel.send(i)
        assert channel.clear() == 7
        assert len(channel) == 0
        assert channel.deliver_due() == []


# ----------------------------------------------------------------------
# Random paper-class SPJ views
# ----------------------------------------------------------------------
class TestRandomSpjExpressions:
    def test_same_seed_same_expression(self):
        for seed in range(30):
            first = random_spj_expression(random.Random(seed))
            second = random_spj_expression(random.Random(seed))
            assert repr(first) == repr(second)

    def test_generated_views_are_definable_and_consistent(self):
        rng = random.Random(17)
        database = Database()
        for name in sorted(BASE_TABLES):
            attributes = BASE_TABLES[name]
            rows = sorted(
                {
                    tuple(rng.randint(0, 6) for _ in attributes)
                    for _ in range(6)
                }
            )
            database.create_relation(name, attributes, rows)
        maintainer = ViewMaintainer(database)
        for index in range(25):
            expression = random_spj_expression(random.Random(1000 + index))
            name = f"probe{index}"
            maintainer.define_view(
                name, expression, policy=MaintenancePolicy.IMMEDIATE
            )
            report = maintainer.verify_all(raise_on_mismatch=False)[name]
            assert report.is_consistent(), report.summary()
            maintainer.drop_view(name)

    def test_aggregate_views_same_seed_same_expression(self):
        for seed in range(30):
            first = random_aggregate_expression(random.Random(seed))
            second = random_aggregate_expression(random.Random(seed))
            assert repr(first) == repr(second)

    def test_generated_aggregate_views_are_definable_and_consistent(self):
        from repro.algebra.aggregates import Aggregate

        rng = random.Random(23)
        database = Database()
        for name in sorted(BASE_TABLES):
            attributes = BASE_TABLES[name]
            rows = sorted(
                {
                    tuple(rng.randint(0, 6) for _ in attributes)
                    for _ in range(6)
                }
            )
            database.create_relation(name, attributes, rows)
        maintainer = ViewMaintainer(database)
        for index in range(25):
            expression = random_aggregate_expression(random.Random(2000 + index))
            assert isinstance(expression, Aggregate)
            name = f"agg{index}"
            maintainer.define_view(
                name, expression, policy=MaintenancePolicy.IMMEDIATE
            )
            report = maintainer.verify_all(raise_on_mismatch=False)[name]
            assert report.is_consistent(), report.summary()
            maintainer.drop_view(name)

    def test_base_free_aggregate_views_are_self_maintainable(self):
        # The base-free follower workload draws single-relation,
        # MIN/MAX-free aggregates — every one must classify as
        # self-maintainable or shedding would be refused mid-episode.
        from repro.core.views import ViewDefinition
        from repro.scheduler.selfmaint import classify_self_maintainability

        database = Database()
        for name in sorted(BASE_TABLES):
            database.create_relation(name, BASE_TABLES[name])
        for seed in range(40):
            expression = random_aggregate_expression(
                random.Random(seed), max_operands=1, allow_minmax=False
            )
            definition = ViewDefinition(
                "probe", expression, database.schema_catalog()
            )
            verdict = classify_self_maintainability(definition)
            assert verdict.self_maintainable, verdict.reason

    def test_operand_count_respects_the_table_set(self):
        from repro.algebra.expressions import BaseRef, Join, Project, Select

        def base_names(node):
            if isinstance(node, BaseRef):
                return {node.name}
            if isinstance(node, Join):
                return base_names(node.left) | base_names(node.right)
            assert isinstance(node, (Select, Project))
            return base_names(node.child)

        for seed in range(50):
            expression = random_spj_expression(
                random.Random(seed), tables={"r": ("A", "B")}
            )
            assert base_names(expression) == {"r"}


# ----------------------------------------------------------------------
# Schedules are pure data
# ----------------------------------------------------------------------
class TestScheduleGeneration:
    def test_same_rng_same_schedule(self):
        config = SimulationConfig(seed=3, events=60, corruption=True)
        first = generate_schedule(random.Random("x"), config)
        second = generate_schedule(random.Random("x"), config)
        assert first == second

    def test_feature_flags_gate_event_kinds(self):
        rng = random.Random(8)
        config = SimulationConfig(
            seed=0, events=300, crashes=False, partitions=False, ddl=False
        )
        kinds = {kind for kind, _ in generate_schedule(rng, config)}
        assert "crash" not in kinds
        assert "partition" not in kinds
        assert "ddl_index" not in kinds
        assert "view_churn" not in kinds
        assert "corrupt" not in kinds
        assert kinds <= {
            "txn",
            "server_txn",
            "client_query",
            "net",
            "checkpoint",
            "quiesce",
            "subscriber_churn",
        }

    def test_corruption_lands_in_the_latter_half(self):
        config = SimulationConfig(seed=0, events=40, corruption=True)
        saw_injection = False
        for seed in range(20):
            schedule = generate_schedule(random.Random(seed), config)
            positions = [
                index for index, (kind, _) in enumerate(schedule)
                if kind == "corrupt"
            ]
            if positions:
                saw_injection = True
                assert len(positions) == 1
                assert positions[0] >= len(schedule) // 2 - 1
        assert saw_injection

    def test_payloads_are_json_plain(self):
        import json

        config = SimulationConfig(seed=1, events=120, corruption=True)
        schedule = generate_schedule(random.Random(11), config)
        assert json.loads(json.dumps(schedule)) == [
            [kind, payload] for kind, payload in schedule
        ]

    def test_episode_seeds_derive_from_master_seed(self):
        config = SimulationConfig(seed=5, episodes=8)
        assert episode_seeds(config) == episode_seeds(config)
        other = SimulationConfig(seed=6, episodes=8)
        assert episode_seeds(config) != episode_seeds(other)


# ----------------------------------------------------------------------
# Episode determinism + batch soundness
# ----------------------------------------------------------------------
class TestEpisodeDeterminism:
    def test_same_seed_twice_identical_run(self):
        config = SimulationConfig(seed=7, events=35, followers=1, clients=2)
        seed = episode_seeds(config)[0]
        first = run_episode(seed, config)
        second = run_episode(seed, config)
        assert first.trace == second.trace
        assert first.stats == second.stats
        assert first.divergences == second.divergences
        assert first.ended_early == second.ended_early
        assert first.schedule == second.schedule

    def test_fixed_seed_episode_is_clean(self):
        config = SimulationConfig(seed=7, events=35)
        result = run_episode(episode_seeds(config)[0], config)
        assert result.ok, result.divergences
        assert result.stats["oracle_checks"] >= 1  # final forced quiesce

    def test_small_batch_zero_divergences(self):
        config = SimulationConfig(
            seed=7, episodes=3, events=30, followers=1, clients=2
        )
        report = run_simulation(config)
        assert report.ok, report.format()
        assert report.stats["episodes"] == 3
        assert report.stats["oracle_checks"] >= 3

    def test_report_text_is_reproducible(self):
        config = SimulationConfig(seed=11, episodes=2, events=25)
        assert run_simulation(config).format() == run_simulation(config).format()

    def test_interpreter_ablation_matches_codegen_batch(self):
        # Toggling use_codegen switches every copy — leader, recovery,
        # followers — to the per-tuple interpreter; the oracle rounds
        # (full recompute, WAL replay, follower diff) must stay clean
        # and the externally observable run must be identical.
        compiled = run_simulation(
            SimulationConfig(seed=11, episodes=2, events=25)
        )
        interpreted = run_simulation(
            SimulationConfig(seed=11, episodes=2, events=25, use_codegen=False)
        )
        assert compiled.ok, compiled.format()
        assert interpreted.ok, interpreted.format()
        assert compiled.format() == interpreted.format()

    def test_crash_episodes_recover_and_verify(self):
        # Hunt a few seeds for a schedule that actually crashes, then
        # require the recovery oracle to have run and passed.
        config = SimulationConfig(seed=13, episodes=6, events=30)
        report = run_simulation(config)
        assert report.ok, report.format()
        # "crashes" merges the episode counter with the IO fault
        # counter, so it runs ahead of "recoveries"; every recovery
        # implies a crash and every crash event triggered one recovery.
        assert report.stats["recoveries"] >= 1
        assert report.stats["crashes"] >= report.stats["recoveries"]


# ----------------------------------------------------------------------
# The oracle is not a rubber stamp
# ----------------------------------------------------------------------
class TestOracleSensitivity:
    def _built_episode(self, tmp_path, seed=21, **overrides):
        defaults = dict(seed=seed, events=10, followers=1, clients=1)
        defaults.update(overrides)
        config = SimulationConfig(**defaults)
        return Episode(seed, config, str(tmp_path))

    def test_tampered_view_is_reported(self, tmp_path):
        episode = self._built_episode(tmp_path)
        view = episode.maintainer.view("v0")
        schema = view.definition.output_schema()
        view.contents.add(tuple(99 for _ in schema.attributes))
        episode._oracle_round()
        assert any("v0" in line for line in episode.divergences), (
            episode.divergences
        )

    def test_tampered_follower_replica_is_reported(self, tmp_path):
        episode = self._built_episode(tmp_path)
        replica = episode.links[0].follower.database.relation("r")
        replica.add((123, 456))
        episode._oracle_round()
        assert any("follower 0" in line for line in episode.divergences), (
            episode.divergences
        )

    def test_tampered_client_mirror_is_reported(self, tmp_path):
        episode = self._built_episode(tmp_path)
        episode._event_quiesce({})
        assert not episode.divergences
        client = episode.clients[0]
        assert client.seeded
        client.mirror[("bogus-row",)] = 1
        episode._event_quiesce({})
        episode._collect_stats()
        assert any("mirror" in line for line in episode.divergences), (
            episode.divergences
        )

    def test_stale_plan_fingerprint_is_reported(self, tmp_path):
        episode = self._built_episode(tmp_path)
        plan = episode.maintainer.compiled_plan("v0")
        assert plan is not None
        plan.fingerprint = ("tampered",)
        episode._oracle_round()
        assert any("stale" in line for line in episode.divergences), (
            episode.divergences
        )

    def test_unhandled_exception_becomes_a_divergence(self):
        config = SimulationConfig(seed=0, events=5)
        result = run_episode(
            0, config, schedule=[("does_not_exist", {})]
        )
        assert not result.ok
        assert "unhandled AttributeError" in result.divergences[0]

    def test_scratch_directory_is_scrubbed_from_messages(self):
        config = SimulationConfig(seed=0, events=5)
        result = run_episode(0, config, schedule=[("does_not_exist", {})])
        assert not any("repro-sim-" in line for line in result.divergences)


# ----------------------------------------------------------------------
# Corruption: injected damage must be detected, with a replayable seed
# ----------------------------------------------------------------------
class TestCorruptionDetection:
    def test_bit_flips_are_detected_or_classified_as_torn_tail(self):
        config = SimulationConfig(
            seed=42, episodes=8, events=30, corruption=True
        )
        report = run_simulation(config)
        assert report.ok, report.format()
        injected = report.stats["corruption_injected"]
        assert injected >= 1
        outcomes = (
            report.stats["corruption_detected"]
            + report.stats["corruption_survived_tail"]
        )
        assert outcomes == injected
        assert report.stats["corruption_detected"] >= 1
        # Every corruption episode ended early with a classified outcome.
        for result in report.episodes:
            if result.stats.get("corruption_injected"):
                assert result.ended_early in (
                    "corruption_detected",
                    "corruption_survived_tail",
                )

    def test_corruption_episode_replays_identically(self):
        config = SimulationConfig(seed=42, episodes=8, events=30, corruption=True)
        target = None
        for seed in episode_seeds(config):
            result = run_episode(seed, config)
            if result.stats.get("corruption_detected"):
                target = seed
                break
        assert target is not None
        first = run_episode(target, config)
        second = run_episode(target, config)
        assert first.trace == second.trace
        assert first.ended_early == "corruption_detected"


# ----------------------------------------------------------------------
# Minimization
# ----------------------------------------------------------------------
class TestMinimization:
    def test_failing_schedule_shrinks_to_the_culprit(self):
        config = SimulationConfig(seed=0, events=10)
        filler = [("net", {"ticks": 1})] * 9
        schedule = filler[:5] + [("does_not_exist", {})] + filler[5:]
        minimized, trace, runs = minimize_schedule(0, config, schedule)
        assert [kind for kind, _ in minimized] == ["does_not_exist"]
        assert runs <= 40
        assert any("unhandled" in line for line in trace)

    def test_minimizer_respects_the_budget(self):
        config = SimulationConfig(seed=0, events=10)
        schedule = [("net", {"ticks": 1})] * 6 + [("does_not_exist", {})]
        _, _, runs = minimize_schedule(0, config, schedule, budget=3)
        assert runs <= 3 + 1  # + the final confirming replay

    def test_batch_reports_minimized_reproduction(self, monkeypatch):
        # Force one episode to fail by injecting a bogus event into its
        # generated schedule, and check the report carries a minimized
        # trace for it.
        import repro.simulation.runner as runner_module

        original = runner_module.generate_schedule
        config = SimulationConfig(seed=19, episodes=2, events=12)
        first_seed = episode_seeds(config)[0]
        bombed = {"done": False}

        def sabotage(rng, cfg):
            schedule = original(rng, cfg)
            if not bombed["done"]:
                bombed["done"] = True
                schedule.insert(len(schedule) // 2, ("does_not_exist", {}))
            return schedule

        monkeypatch.setattr(runner_module, "generate_schedule", sabotage)
        report = run_simulation(config, max_failures=1)
        assert not report.ok
        failure = report.failures[0]
        assert failure.seed == first_seed
        assert len(failure.minimized_schedule) < len(failure.schedule)
        text = report.format()
        assert f"DIVERGENCE seed={first_seed}" in text
        assert "minimized to" in text
        assert text.endswith("FAILED (1 episodes)")

    def test_report_format_shows_failure_details(self):
        config = SimulationConfig(seed=1, episodes=1)
        failure = SimFailure(
            seed=123,
            divergences=["something diverged"],
            schedule=[("txn", {}), ("quiesce", {})],
            minimized_schedule=[("txn", {})],
            minimized_trace=["[0] t=0 txn {}"],
            minimize_runs=4,
        )
        episode = EpisodeResult(123, [("txn", {})], [], {}, ["x"], None)
        report = SimulationReport(config, {}, [episode], [failure])
        text = report.format()
        assert "DIVERGENCE seed=123" in text
        assert "! something diverged" in text
        assert "minimized to 1 of 2 events (in 4 replays):" in text
        assert not report.ok


# ----------------------------------------------------------------------
# CLI: repro simulate --seed N
# ----------------------------------------------------------------------
class TestCliSimulate:
    def test_deterministic_output_and_exit_code(self):
        def run():
            lines = []
            code = run_simulate(
                seed=7,
                episodes=2,
                events=25,
                trace=True,
                emit=lines.append,
            )
            return code, lines

        first_code, first_lines = run()
        second_code, second_lines = run()
        assert first_code == 0
        assert first_lines == second_lines
        assert first_lines[0].startswith("simulation seed=7 episodes=2")
        assert first_lines[0].rstrip().endswith("OK")
        assert any(line.startswith("episode seed=") for line in first_lines)

    def test_main_dispatches_simulate(self, capsys):
        from repro.cli import main

        code = main(
            ["simulate", "--seed", "7", "--episodes", "1", "--events", "15"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("simulation seed=7 episodes=1")
        assert out.rstrip().endswith("OK")


# ----------------------------------------------------------------------
# CI batches
# ----------------------------------------------------------------------
class TestSimBatches:
    @pytest.mark.skipif(not SMOKE, reason="set REPRO_SIM_SMOKE=1 to run")
    def test_smoke_batch(self):
        """The per-push CI batch: fixed seed, every fault class enabled."""
        config = SimulationConfig(
            seed=2026,
            episodes=12,
            events=45,
            followers=2,
            clients=2,
            crashes=True,
            partitions=True,
            ddl=True,
        )
        report = run_simulation(config)
        assert report.ok, report.format()
        assert report.stats["crashes"] >= 1
        assert report.stats["partitions"] >= 1

    @pytest.mark.skipif(not SMOKE, reason="set REPRO_SIM_SMOKE=1 to run")
    def test_smoke_batch_aggregates(self):
        """Aggregate-view coverage: every episode carries the grouped
        view ``va`` (plus aggregate follower views and an aggregate
        changefeed subscriber), under crashes and partitions, in both
        codegen modes — the oracle rounds pin its support bags, visible
        rows and client mirrors to the full recompute."""
        for use_codegen in (True, False):
            config = SimulationConfig(
                seed=2026,
                episodes=6,
                events=45,
                followers=2,
                clients=3,
                crashes=True,
                partitions=True,
                ddl=True,
                use_codegen=use_codegen,
            )
            report = run_simulation(config)
            assert report.ok, report.format()
            assert report.stats["oracle_checks"] >= 6

    @pytest.mark.skipif(not FULL, reason="set REPRO_SIM_FULL=1 to run")
    def test_full_acceptance_batch(self):
        """The issue's acceptance bar: 200 episodes, zero divergences."""
        config = SimulationConfig(
            seed=int(os.environ.get("REPRO_SIM_SEED", "1986")),
            episodes=200,
            events=40,
            followers=2,
            clients=3,
            crashes=True,
            partitions=True,
            ddl=True,
        )
        report = run_simulation(config)
        assert report.ok, report.format()
