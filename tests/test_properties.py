"""Property-based tests of the DESIGN.md master invariants.

Hypothesis drives random schemas, conditions, database states and
transactions through the full pipeline, checking:

* maintenance correctness — differential == full re-evaluation,
  counts included, for arbitrary SPJ views and update streams;
* filter soundness — irrelevant-reported tuples never change the view;
* filter completeness — relevant-reported tuples have a constructed
  witness database where they do;
* net effect — transactions reduce to disjoint (i, d) pairs whose
  application equals replay;
* tag algebra — mixed transactions through joins equal set algebra.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algebra.evaluate import evaluate
from repro.algebra.expressions import BaseRef, to_normal_form
from repro.algebra.relation import Relation
from repro.algebra.schema import RelationSchema
from repro.core.consistency import check_view_consistency
from repro.core.irrelevance import (
    construct_witness_database,
    is_irrelevant_update,
)
from repro.core.maintainer import ViewMaintainer
from repro.engine.database import Database

# ----------------------------------------------------------------------
# Strategies for whole maintenance scenarios
# ----------------------------------------------------------------------

CATALOG = {
    "r": RelationSchema(["A", "B"]),
    "s": RelationSchema(["B", "C"]),
}

values = st.integers(min_value=0, max_value=5)
r_rows = st.lists(st.tuples(values, values), max_size=10, unique=True)
s_rows = st.lists(st.tuples(values, values), max_size=10, unique=True)

#: A pool of view shapes covering select / project / join / SPJ / DNF.
VIEW_EXPRESSIONS = [
    BaseRef("r"),
    BaseRef("r").select("A <= 3"),
    BaseRef("r").select("A = B"),
    BaseRef("r").project(["B"]),
    BaseRef("r").select("A < B + 2").project(["B"]),
    BaseRef("r").join(BaseRef("s")),
    BaseRef("r").join(BaseRef("s")).project(["A", "C"]),
    BaseRef("r").join(BaseRef("s")).select("A <= C").project(["C"]),
    BaseRef("r").join(BaseRef("s")).select("A < 2 or C > 3"),
    BaseRef("r").select("A < 1 or A > 4").project(["A"]),
    BaseRef("r").join(BaseRef("s")).select("C = A + 1"),
    BaseRef("r").join(BaseRef("s").rename({"C": "Z"})).select("Z >= B"),
]

view_indices = st.integers(min_value=0, max_value=len(VIEW_EXPRESSIONS) - 1)

#: One transaction: a list of (relation, op, row) statements.
statements = st.lists(
    st.tuples(
        st.sampled_from(["r", "s"]),
        st.sampled_from(["insert", "delete"]),
        st.tuples(values, values),
    ),
    min_size=1,
    max_size=8,
)
transactions = st.lists(statements, min_size=1, max_size=6)


def _build_db(r_init, s_init) -> Database:
    db = Database()
    db.create_relation("r", CATALOG["r"], r_init)
    db.create_relation("s", CATALOG["s"], s_init)
    return db


class TestMaintenanceCorrectness:
    """The master invariant: differential == full re-evaluation."""

    @settings(
        max_examples=120,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(r_rows, s_rows, view_indices, transactions)
    def test_view_equals_recomputation(self, r_init, s_init, vi, txns):
        db = _build_db(r_init, s_init)
        maintainer = ViewMaintainer(db)
        view = maintainer.define_view("v", VIEW_EXPRESSIONS[vi])
        for statements_batch in txns:
            with db.transact() as txn:
                for name, op, row in statements_batch:
                    getattr(txn, op)(name, row)
            check_view_consistency(view, db.instances())

    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(r_rows, s_rows, view_indices, transactions)
    def test_all_pipeline_variants_agree(self, r_init, s_init, vi, txns):
        """Filter on/off × sharing on/off × indexes on/off must give
        byte-identical views."""
        db = _build_db(r_init, s_init)
        variants = [
            ViewMaintainer(db, use_relevance_filter=True, share_subexpressions=True),
            ViewMaintainer(db, use_relevance_filter=False, share_subexpressions=True),
            ViewMaintainer(
                db,
                use_relevance_filter=True,
                share_subexpressions=False,
                use_indexes=False,
            ),
        ]
        views = [
            m.define_view(f"v{i}", VIEW_EXPRESSIONS[vi])
            for i, m in enumerate(variants)
        ]
        for statements_batch in txns:
            with db.transact() as txn:
                for name, op, row in statements_batch:
                    getattr(txn, op)(name, row)
        assert views[0].contents == views[1].contents == views[2].contents

    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(r_rows, s_rows, view_indices, transactions)
    def test_deferred_refresh_matches(self, r_init, s_init, vi, txns):
        from repro.core.maintainer import MaintenancePolicy

        db = _build_db(r_init, s_init)
        maintainer = ViewMaintainer(db)
        view = maintainer.define_view(
            "v", VIEW_EXPRESSIONS[vi], policy=MaintenancePolicy.DEFERRED
        )
        for statements_batch in txns:
            with db.transact() as txn:
                for name, op, row in statements_batch:
                    getattr(txn, op)(name, row)
        maintainer.refresh("v")
        check_view_consistency(view, db.instances())


class TestFilterSoundnessAndCompleteness:
    tuples_to_check = st.tuples(
        st.integers(min_value=-2, max_value=8),
        st.integers(min_value=-2, max_value=8),
    )

    @settings(max_examples=150, deadline=None)
    @given(r_rows, s_rows, view_indices, tuples_to_check)
    def test_soundness_irrelevant_updates_never_change_view(
        self, r_init, s_init, vi, tup
    ):
        """If the filter says irrelevant, inserting (and then deleting)
        the tuple must leave the view unchanged in this state too."""
        expr = VIEW_EXPRESSIONS[vi]
        nf = to_normal_form(expr, CATALOG)
        if not is_irrelevant_update(nf, "r", tup, CATALOG["r"]):
            return
        db = _build_db(r_init, s_init)
        before = evaluate(expr, db.instances()).copy()
        with db.transact() as txn:
            txn.insert("r", tup)
        assert evaluate(expr, db.instances()) == before
        with db.transact() as txn:
            txn.delete("r", tup)
        assert evaluate(expr, db.instances()) == before

    @settings(max_examples=150, deadline=None)
    @given(view_indices, tuples_to_check)
    def test_completeness_relevant_updates_have_witness(self, vi, tup):
        """If the filter says relevant, the Theorem 4.1 construction
        must produce a database where the update changes the view."""
        expr = VIEW_EXPRESSIONS[vi]
        nf = to_normal_form(expr, CATALOG)
        witness = construct_witness_database(nf, "r", tup, CATALOG)
        if is_irrelevant_update(nf, "r", tup, CATALOG["r"]):
            assert witness is None
            return
        assert witness is not None
        before = evaluate(expr, witness).copy()
        witness["r"].add(tup)
        after = evaluate(expr, witness)
        assert before != after


class TestNetEffectInvariant:
    @settings(max_examples=120, deadline=None)
    @given(r_rows, statements)
    def test_disjointness_and_replay(self, r_init, stmts):
        db = _build_db(r_init, [])
        replay = set(r_init)
        txn = db.begin()
        for name, op, row in stmts:
            if name != "r":
                continue
            getattr(txn, op)("r", row)
            if op == "insert":
                replay.add(row)
            else:
                replay.discard(row)
        deltas = txn.net_deltas()
        if "r" in deltas:
            delta = deltas["r"]
            live = set(db.relation("r").value_tuples())
            assert not (set(delta.inserted) & set(delta.deleted))
            assert not (set(delta.inserted) & live)
            assert set(delta.deleted) <= live
        txn.commit()
        assert set(db.relation("r").value_tuples()) == replay


class TestPipelinedEvaluatorAgreement:
    """Two independent evaluators (naive tree walk vs pipelined planner)
    must agree on arbitrary inputs."""

    @settings(max_examples=100, deadline=None)
    @given(r_rows, s_rows, view_indices)
    def test_agreement(self, r_init, s_init, vi):
        from repro.core.planner import evaluate_normal_form

        expr = VIEW_EXPRESSIONS[vi]
        nf = to_normal_form(expr, CATALOG)
        instances = {
            "r": Relation.from_rows(CATALOG["r"], r_init),
            "s": Relation.from_rows(CATALOG["s"], s_init),
        }
        assert evaluate_normal_form(nf, instances) == evaluate(expr, instances)
