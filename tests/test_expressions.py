"""Unit tests for the SPJ expression AST."""

import pytest

from repro.algebra.expressions import (
    BaseRef,
    Join,
    Product,
    Project,
    Rename,
    Select,
)
from repro.algebra.schema import RelationSchema
from repro.errors import ExpressionError


@pytest.fixture
def catalog():
    return {
        "r": RelationSchema(["A", "B"]),
        "s": RelationSchema(["B", "C"]),
        "t": RelationSchema(["D", "E"]),
    }


class TestBaseRef:
    def test_schema_lookup(self, catalog):
        assert BaseRef("r").schema(catalog).names == ("A", "B")

    def test_unknown_relation(self, catalog):
        with pytest.raises(ExpressionError):
            BaseRef("zzz").schema(catalog)

    def test_invalid_name(self):
        with pytest.raises(ExpressionError):
            BaseRef("")

    def test_base_names(self):
        assert BaseRef("r").base_names() == ("r",)


class TestSelect:
    def test_schema_passthrough(self, catalog):
        e = Select(BaseRef("r"), "A < 5")
        assert e.schema(catalog).names == ("A", "B")

    def test_unknown_attribute_in_condition(self, catalog):
        with pytest.raises(ExpressionError):
            Select(BaseRef("r"), "Z < 5").schema(catalog)

    def test_condition_coercion_from_string(self, catalog):
        e = BaseRef("r").select("A < 5 or B > 2")
        assert len(e.condition.disjuncts) == 2

    def test_operand_must_be_expression(self):
        with pytest.raises(ExpressionError):
            Select("r", "A < 5")


class TestProject:
    def test_schema(self, catalog):
        e = Project(BaseRef("r"), ["B"])
        assert e.schema(catalog).names == ("B",)

    def test_missing_attribute(self, catalog):
        with pytest.raises(ExpressionError):
            Project(BaseRef("r"), ["Z"]).schema(catalog)

    def test_empty_projection_rejected(self):
        with pytest.raises(ExpressionError):
            Project(BaseRef("r"), [])

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(ExpressionError):
            Project(BaseRef("r"), ["A", "A"])

    def test_order_preserved(self, catalog):
        e = Project(BaseRef("r"), ["B", "A"])
        assert e.schema(catalog).names == ("B", "A")


class TestJoinProduct:
    def test_natural_join_schema(self, catalog):
        e = Join(BaseRef("r"), BaseRef("s"))
        assert e.schema(catalog).names == ("A", "B", "C")

    def test_product_schema(self, catalog):
        e = Product(BaseRef("r"), BaseRef("t"))
        assert e.schema(catalog).names == ("A", "B", "D", "E")

    def test_product_shared_names_rejected(self, catalog):
        with pytest.raises(ExpressionError):
            Product(BaseRef("r"), BaseRef("s")).schema(catalog)

    def test_base_names_with_repetition(self, catalog):
        e = Join(BaseRef("r"), Join(BaseRef("s"), BaseRef("r")))
        assert e.base_names() == ("r", "s", "r")

    def test_walk_preorder(self, catalog):
        e = Select(Join(BaseRef("r"), BaseRef("s")), "A < 5")
        kinds = [type(n).__name__ for n in e.walk()]
        assert kinds == ["Select", "Join", "BaseRef", "BaseRef"]


class TestRename:
    def test_schema(self, catalog):
        e = Rename(BaseRef("r"), {"A": "X"})
        assert e.schema(catalog).names == ("X", "B")

    def test_missing_attribute(self, catalog):
        with pytest.raises(ExpressionError):
            Rename(BaseRef("r"), {"Z": "X"}).schema(catalog)

    def test_collision_rejected(self, catalog):
        with pytest.raises(ExpressionError):
            Rename(BaseRef("r"), {"A": "B"}).schema(catalog)

    def test_empty_mapping_rejected(self):
        with pytest.raises(ExpressionError):
            Rename(BaseRef("r"), {})

    def test_enables_self_join(self, catalog):
        e = Join(BaseRef("r"), Rename(BaseRef("r"), {"A": "A2", "B": "B2"}))
        # No shared names: degenerates to a product-like join schema.
        assert e.schema(catalog).names == ("A", "B", "A2", "B2")


class TestFluentApi:
    def test_chaining(self, catalog):
        e = (
            BaseRef("r")
            .join(BaseRef("s"))
            .select("A < 5")
            .project(["A", "C"])
        )
        assert e.schema(catalog).names == ("A", "C")

    def test_rename_fluent(self, catalog):
        e = BaseRef("r").rename({"A": "X"})
        assert e.schema(catalog).names == ("X", "B")

    def test_str_is_readable(self):
        e = BaseRef("r").select("A < 5").project(["A"])
        assert "project" in str(e) and "select" in str(e)
