"""Unit tests for the evaluate-only Union and Difference operators."""

import pytest

from repro.algebra.evaluate import evaluate
from repro.algebra.expressions import (
    BaseRef,
    Difference,
    Union,
    to_normal_form,
)
from repro.algebra.relation import Relation
from repro.algebra.schema import RelationSchema
from repro.errors import ExpressionError, MaintenanceError


@pytest.fixture
def catalog():
    return {
        "r": RelationSchema(["A", "B"]),
        "s": RelationSchema(["A", "B"]),
        "t": RelationSchema(["X"]),
    }


@pytest.fixture
def instances(catalog):
    return {
        "r": Relation.from_rows(catalog["r"], [(1, 1), (2, 2)]),
        "s": Relation.from_rows(catalog["s"], [(2, 2), (3, 3)]),
        "t": Relation.from_rows(catalog["t"], [(9,)]),
    }


class TestUnion:
    def test_counts_add(self, instances):
        out = evaluate(BaseRef("r").union(BaseRef("s")), instances)
        assert out.count_of((2, 2)) == 2
        assert out.count_of((1, 1)) == 1
        assert out.count_of((3, 3)) == 1

    def test_schema_mismatch_rejected(self, catalog):
        with pytest.raises(ExpressionError):
            Union(BaseRef("r"), BaseRef("t")).schema(catalog)

    def test_union_of_projections(self, instances):
        expr = BaseRef("r").project(["A"]).union(BaseRef("s").project(["A"]))
        out = evaluate(expr, instances)
        assert out.count_of((2,)) == 2

    def test_rejected_by_normal_form_with_pointer(self, catalog):
        with pytest.raises(ExpressionError, match="UnionView"):
            to_normal_form(BaseRef("r").union(BaseRef("s")), catalog)

    def test_str(self):
        assert "union" in str(BaseRef("r").union(BaseRef("s")))


class TestDifference:
    def test_counts_subtract(self, instances):
        out = evaluate(BaseRef("r").difference(BaseRef("s").select("A = 2")), instances)
        assert out.counts() == {(1, 1): 1}

    def test_negative_counts_rejected(self, instances):
        # s has (3,3) which r lacks: counted difference undefined.
        with pytest.raises(MaintenanceError):
            evaluate(BaseRef("r").difference(BaseRef("s")), instances)

    def test_schema_mismatch_rejected(self, catalog):
        with pytest.raises(ExpressionError):
            Difference(BaseRef("r"), BaseRef("t")).schema(catalog)

    def test_rejected_by_normal_form(self, catalog):
        with pytest.raises(ExpressionError, match="outside the SPJ class"):
            to_normal_form(BaseRef("r").difference(BaseRef("s")), catalog)

    def test_counted_distributivity_demo(self, instances):
        """π(r − r₂) = π(r) − π(r₂) — the §5.2 identity, now expressible
        directly in the expression language."""
        r2_rows = [(1, 1)]
        instances["r2"] = Relation.from_rows(
            RelationSchema(["A", "B"]), r2_rows
        )
        left = evaluate(
            BaseRef("r").difference(BaseRef("r2")).project(["B"]), instances
        )
        right = evaluate(
            BaseRef("r").project(["B"]).difference(
                BaseRef("r2").project(["B"])
            ),
            instances,
        )
        assert left == right

    def test_base_names_and_walk(self, catalog):
        expr = BaseRef("r").union(BaseRef("s")).difference(BaseRef("r"))
        assert expr.base_names() == ("r", "s", "r")
        assert len(list(expr.walk())) == 5
