"""Unit tests for the interactive shell and the CLI verbs."""

import asyncio
import threading

import pytest

from repro.cli import (
    Shell,
    ShellError,
    main,
    parse_view_expression,
    parse_view_option,
    run_serve,
)
from repro.core.maintainer import ViewMaintainer
from repro.engine.database import Database
from repro.errors import ReproError
from repro.replication.durability import DurabilityManager
from repro.replication.follower import Follower
from repro.server import ViewClient


@pytest.fixture
def shell():
    return Shell()


def _setup_sales(shell):
    shell.execute("create table r (A, B)")
    shell.execute("create table s (B, C)")
    shell.execute("insert into r values (1, 10), (2, 20)")
    shell.execute("insert into s values (10, 5), (20, 6)")


class TestTables:
    def test_create_table(self, shell):
        out = shell.execute("create table r (A, B)")
        assert "created table r(A, B)" == out
        assert shell.execute("tables") == "r"

    def test_create_table_no_attrs(self, shell):
        with pytest.raises(ShellError):
            shell.execute("create table r ()")

    def test_insert_and_show(self, shell):
        shell.execute("create table r (A, B)")
        out = shell.execute("insert into r values (1, 2), (3, 4)")
        assert "2 row(s) inserted" in out
        shown = shell.execute("show r")
        assert "1" in shown and "3" in shown

    def test_delete(self, shell):
        shell.execute("create table r (A)")
        shell.execute("insert into r values (1), (2)")
        shell.execute("delete from r values (1)")
        assert "2" in shell.execute("show r")
        assert " 1 " not in shell.execute("show r")

    def test_non_integer_values_rejected(self, shell):
        shell.execute("create table r (A)")
        with pytest.raises(ShellError):
            shell.execute("insert into r values (abc)")

    def test_insert_without_rows_rejected(self, shell):
        shell.execute("create table r (A)")
        with pytest.raises(ShellError):
            shell.execute("insert into r values")


class TestViews:
    def test_create_simple_view(self, shell):
        _setup_sales(shell)
        out = shell.execute("create view v as r where A < 2")
        assert "created immediate view v (1 tuples)" == out
        assert shell.execute("views") == "v"

    def test_join_where_select(self, shell):
        _setup_sales(shell)
        shell.execute("create view v as r join s where C > 5 select A, C")
        shown = shell.execute("show v")
        assert "x1" in shown
        # only (2, 6) qualifies
        assert "6" in shown

    def test_view_is_maintained(self, shell):
        _setup_sales(shell)
        shell.execute("create view v as r where B >= 20")
        shell.execute("insert into r values (9, 30)")
        assert "30" in shell.execute("show v")

    def test_deferred_view_and_refresh(self, shell):
        _setup_sales(shell)
        shell.execute("create view v deferred as r where B >= 20")
        shell.execute("insert into r values (9, 30)")
        assert "30" not in shell.execute("show v")
        assert shell.execute("refresh v") == "refreshed v"
        assert "30" in shell.execute("show v")
        assert "already current" in shell.execute("refresh v")

    def test_stats(self, shell):
        _setup_sales(shell)
        shell.execute("create view v as r where B >= 20")
        shell.execute("insert into r values (9, 30)")
        stats = shell.execute("stats v")
        assert "transactions_seen: 1" in stats

    def test_drop_view(self, shell):
        _setup_sales(shell)
        shell.execute("create view v as r")
        shell.execute("drop view v")
        assert shell.execute("views") == "(no views)"

    def test_stacked_view(self, shell):
        _setup_sales(shell)
        shell.execute("create view joined as r join s")
        shell.execute("create view hot as joined where C > 5 select A")
        shell.execute("insert into r values (9, 20)")
        assert "9" in shell.execute("show hot")

    def test_explain(self, shell):
        _setup_sales(shell)
        shell.execute("create view v as r join s select A, C")
        text = shell.execute("explain v changing r")
        assert "rows to evaluate: 1" in text
        assert "hash-join" in text

    def test_explain_bare_form_assumes_all_relations_changed(self, shell):
        _setup_sales(shell)
        shell.execute("create view v as r join s select A, C")
        text = shell.execute("explain v")
        assert "compiled plan for view 'v'" in text
        assert text == shell.execute("explain v changing r, s")

    def test_explain_usage_error(self, shell):
        _setup_sales(shell)
        shell.execute("create view v as r")
        with pytest.raises(ShellError):
            shell.execute("explain v bogus trailing words")

    def test_explain_source_prints_generated_kernels(self, shell):
        _setup_sales(shell)
        shell.execute("create view v as r join s select A, C")
        source = shell.execute("explain v source")
        assert "generated kernels for view 'v'" in source
        assert "def screen_kernel" in source
        assert "def row_kernel" in source
        # Determinism: asking twice prints byte-identical source.
        assert source == shell.execute("explain v source")

    def test_stats_includes_codegen_counters(self, shell):
        _setup_sales(shell)
        shell.execute("create view v as r join s select A, C")
        stats = shell.execute("stats v")
        assert "codegen_plans_compiled:" in stats
        assert "codegen_batch_rows:" in stats
        assert "codegen_fallback_tuples:" in stats

    def test_recommend_and_create_indexes(self, shell):
        _setup_sales(shell)
        shell.execute("create view v as r join s")
        recommendations = shell.execute("recommend indexes v")
        assert "create index on" in recommendations
        # The recommendations are themselves executable commands.
        for command in recommendations.splitlines():
            assert "created index on" in shell.execute(command)
        assert shell.maintainer.database.indexes.lookup("s", ("B",)) is not None

    def test_recommend_indexes_none_needed(self, shell):
        _setup_sales(shell)
        shell.execute("create view v as r where A < 5")
        assert "needs no indexes" in shell.execute("recommend indexes v")

    def test_create_index_requires_attrs(self, shell):
        _setup_sales(shell)
        with pytest.raises(ShellError):
            shell.execute("create index on r ()")


class TestShellPlumbing:
    def test_empty_line(self, shell):
        assert shell.execute("") == ""
        assert shell.execute("   ;  ") == ""

    def test_help(self, shell):
        assert "create table" in shell.execute("help")

    def test_quit_raises_eof(self, shell):
        with pytest.raises(EOFError):
            shell.execute("quit")
        with pytest.raises(EOFError):
            shell.execute("exit")

    def test_unparseable_line(self, shell):
        with pytest.raises(ShellError):
            shell.execute("select * from nowhere")

    def test_errors_are_repro_errors(self, shell):
        # Library errors bubble out as ReproError subclasses so the
        # REPL loop can present them uniformly.
        with pytest.raises(ReproError):
            shell.execute("show missing_table")

    def test_empty_catalogs(self, shell):
        assert shell.execute("tables") == "(no tables)"
        assert shell.execute("views") == "(no views)"

    def test_case_insensitive_keywords(self, shell):
        shell.execute("CREATE TABLE r (A)")
        shell.execute("INSERT INTO r VALUES (1)")
        assert "1 row(s) inserted" in shell.execute("Insert Into r Values (2)")


# ----------------------------------------------------------------------
# The serve --view grammar
# ----------------------------------------------------------------------
class TestViewOptions:
    def test_parse_view_option(self):
        name, expression = parse_view_option("hot=r join s where C > 5 select A, C")
        assert name == "hot"
        assert expression.base_names() == ("r", "s")

    def test_parse_view_option_bad_format(self):
        for text in ("no-equals-here", "=spec", "name=", "name=   "):
            with pytest.raises(ShellError):
                parse_view_option(text)

    def test_parse_view_expression_needs_a_relation(self):
        with pytest.raises(ShellError):
            parse_view_expression("   ")


# ----------------------------------------------------------------------
# CLI verbs: one-line errors, never tracebacks
# ----------------------------------------------------------------------
def _durable_dir(tmp_path) -> str:
    """A WAL directory: checkpoint of r/s + view hot, then one commit."""
    directory = str(tmp_path / "wal")
    db = Database()
    db.create_relation("r", ["A", "B"], [(1, 10)])
    db.create_relation("s", ["B", "C"], [(10, 5)])
    maintainer = ViewMaintainer(db)
    maintainer.define_view(
        "hot", parse_view_expression("r join s where C > 4 select A, C")
    )
    durability = DurabilityManager(db, directory, sync="never")
    durability.checkpoint(maintainer)
    with db.transact() as txn:
        txn.insert("r", (2, 10))
    durability.close()
    return directory


def _assert_one_line_error(capsys, code: int) -> None:
    captured = capsys.readouterr()
    assert code == 1
    assert captured.err.startswith("error: ")
    assert len(captured.err.strip().splitlines()) == 1
    assert "Traceback" not in captured.err


class TestVerbErrors:
    def test_recover_missing_directory(self, tmp_path, capsys):
        code = main(["recover", str(tmp_path / "nope")])
        _assert_one_line_error(capsys, code)

    def test_recover_corrupt_checkpoint(self, tmp_path, capsys):
        (tmp_path / "checkpoint-000001.json").write_text("{ not json")
        code = main(["recover", str(tmp_path)])
        _assert_one_line_error(capsys, code)

    def test_follow_missing_directory(self, tmp_path, capsys):
        code = main(["follow", str(tmp_path / "nope"), "--once"])
        _assert_one_line_error(capsys, code)

    def test_follow_corrupt_segment(self, tmp_path, capsys):
        (tmp_path / "wal-abc.jsonl").write_text("garbage\n")
        code = main(["follow", str(tmp_path), "--once"])
        _assert_one_line_error(capsys, code)

    def test_serve_missing_directory(self, tmp_path, capsys):
        code = main(["serve", str(tmp_path / "nope"), "--port", "0"])
        _assert_one_line_error(capsys, code)

    def test_serve_corrupt_checkpoint(self, tmp_path, capsys):
        (tmp_path / "checkpoint-000007.json").write_text("]certainly not json")
        code = main(["serve", str(tmp_path), "--port", "0"])
        _assert_one_line_error(capsys, code)

    def test_serve_bad_view_spec(self, tmp_path, capsys):
        directory = _durable_dir(tmp_path)
        code = main(["serve", directory, "--port", "0", "--view", "malformed"])
        _assert_one_line_error(capsys, code)


class TestVerbHappyPaths:
    def test_recover_summary(self, tmp_path, capsys):
        directory = _durable_dir(tmp_path)
        code = main(["recover", directory])
        captured = capsys.readouterr()
        assert code == 0
        assert "replayed 1 transaction(s)" in captured.out
        assert "r: 2 tuples" in captured.out
        assert "hot" in captured.out  # checkpointed view is listed

    def test_follow_prints_records(self, tmp_path, capsys):
        directory = _durable_dir(tmp_path)
        code = main(["follow", directory, "--once"])
        captured = capsys.readouterr()
        assert code == 0
        assert "seq=1" in captured.out
        assert "r:+1/-0" in captured.out

    def test_serve_round_trip(self, tmp_path):
        directory = _durable_dir(tmp_path)
        captured: dict = {}
        started = threading.Event()
        emitted: list[str] = []

        def on_start(server) -> None:
            captured["server"] = server
            captured["loop"] = asyncio.get_running_loop()
            started.set()

        thread = threading.Thread(
            target=run_serve,
            kwargs=dict(
                directory=directory,
                port=0,
                view_options=["hot=r join s where C > 4 select A, C"],
                emit=emitted.append,
                on_start=on_start,
            ),
        )
        thread.start()
        try:
            assert started.wait(10), "serve never started"
            server = captured["server"]
            with ViewClient(port=server.port) as client:
                # The --view adopted the checkpointed contents, then the
                # WAL tail caught it up differentially.
                answer = client.query("hot")
                assert answer["rows"] == [[1, 5], [2, 5]]
                # A served commit keeps the database durable.
                result = client.txn(insert={"r": [[3, 10]]})
                assert client.stats()["wal_position"] == result["seq"] == 2
        finally:
            asyncio.run_coroutine_threadsafe(
                captured["server"].shutdown(), captured["loop"]
            ).result(10)
            thread.join(10)
        assert emitted and "replayed 1 WAL transaction(s)" in emitted[0]
        assert "views: hot" in emitted[0]
        # The commit reached the WAL on disk: a follower replays it.
        follower = Follower(directory)
        follower.poll()
        assert follower.position == 2
        assert (3, 10) in follower.database.relation("r")
