"""Unit tests for the interactive shell."""

import pytest

from repro.cli import Shell, ShellError
from repro.errors import ReproError


@pytest.fixture
def shell():
    return Shell()


def _setup_sales(shell):
    shell.execute("create table r (A, B)")
    shell.execute("create table s (B, C)")
    shell.execute("insert into r values (1, 10), (2, 20)")
    shell.execute("insert into s values (10, 5), (20, 6)")


class TestTables:
    def test_create_table(self, shell):
        out = shell.execute("create table r (A, B)")
        assert "created table r(A, B)" == out
        assert shell.execute("tables") == "r"

    def test_create_table_no_attrs(self, shell):
        with pytest.raises(ShellError):
            shell.execute("create table r ()")

    def test_insert_and_show(self, shell):
        shell.execute("create table r (A, B)")
        out = shell.execute("insert into r values (1, 2), (3, 4)")
        assert "2 row(s) inserted" in out
        shown = shell.execute("show r")
        assert "1" in shown and "3" in shown

    def test_delete(self, shell):
        shell.execute("create table r (A)")
        shell.execute("insert into r values (1), (2)")
        shell.execute("delete from r values (1)")
        assert "2" in shell.execute("show r")
        assert " 1 " not in shell.execute("show r")

    def test_non_integer_values_rejected(self, shell):
        shell.execute("create table r (A)")
        with pytest.raises(ShellError):
            shell.execute("insert into r values (abc)")

    def test_insert_without_rows_rejected(self, shell):
        shell.execute("create table r (A)")
        with pytest.raises(ShellError):
            shell.execute("insert into r values")


class TestViews:
    def test_create_simple_view(self, shell):
        _setup_sales(shell)
        out = shell.execute("create view v as r where A < 2")
        assert "created immediate view v (1 tuples)" == out
        assert shell.execute("views") == "v"

    def test_join_where_select(self, shell):
        _setup_sales(shell)
        shell.execute("create view v as r join s where C > 5 select A, C")
        shown = shell.execute("show v")
        assert "x1" in shown
        # only (2, 6) qualifies
        assert "6" in shown

    def test_view_is_maintained(self, shell):
        _setup_sales(shell)
        shell.execute("create view v as r where B >= 20")
        shell.execute("insert into r values (9, 30)")
        assert "30" in shell.execute("show v")

    def test_deferred_view_and_refresh(self, shell):
        _setup_sales(shell)
        shell.execute("create view v deferred as r where B >= 20")
        shell.execute("insert into r values (9, 30)")
        assert "30" not in shell.execute("show v")
        assert shell.execute("refresh v") == "refreshed v"
        assert "30" in shell.execute("show v")
        assert "already current" in shell.execute("refresh v")

    def test_stats(self, shell):
        _setup_sales(shell)
        shell.execute("create view v as r where B >= 20")
        shell.execute("insert into r values (9, 30)")
        stats = shell.execute("stats v")
        assert "transactions_seen: 1" in stats

    def test_drop_view(self, shell):
        _setup_sales(shell)
        shell.execute("create view v as r")
        shell.execute("drop view v")
        assert shell.execute("views") == "(no views)"

    def test_stacked_view(self, shell):
        _setup_sales(shell)
        shell.execute("create view joined as r join s")
        shell.execute("create view hot as joined where C > 5 select A")
        shell.execute("insert into r values (9, 20)")
        assert "9" in shell.execute("show hot")

    def test_explain(self, shell):
        _setup_sales(shell)
        shell.execute("create view v as r join s select A, C")
        text = shell.execute("explain v changing r")
        assert "rows to evaluate: 1" in text
        assert "hash-join" in text

    def test_explain_usage_error(self, shell):
        _setup_sales(shell)
        shell.execute("create view v as r")
        with pytest.raises(ShellError):
            shell.execute("explain v")

    def test_recommend_and_create_indexes(self, shell):
        _setup_sales(shell)
        shell.execute("create view v as r join s")
        recommendations = shell.execute("recommend indexes v")
        assert "create index on" in recommendations
        # The recommendations are themselves executable commands.
        for command in recommendations.splitlines():
            assert "created index on" in shell.execute(command)
        assert shell.maintainer.database.indexes.lookup("s", ("B",)) is not None

    def test_recommend_indexes_none_needed(self, shell):
        _setup_sales(shell)
        shell.execute("create view v as r where A < 5")
        assert "needs no indexes" in shell.execute("recommend indexes v")

    def test_create_index_requires_attrs(self, shell):
        _setup_sales(shell)
        with pytest.raises(ShellError):
            shell.execute("create index on r ()")


class TestShellPlumbing:
    def test_empty_line(self, shell):
        assert shell.execute("") == ""
        assert shell.execute("   ;  ") == ""

    def test_help(self, shell):
        assert "create table" in shell.execute("help")

    def test_quit_raises_eof(self, shell):
        with pytest.raises(EOFError):
            shell.execute("quit")
        with pytest.raises(EOFError):
            shell.execute("exit")

    def test_unparseable_line(self, shell):
        with pytest.raises(ShellError):
            shell.execute("select * from nowhere")

    def test_errors_are_repro_errors(self, shell):
        # Library errors bubble out as ReproError subclasses so the
        # REPL loop can present them uniformly.
        with pytest.raises(ReproError):
            shell.execute("show missing_table")

    def test_empty_catalogs(self, shell):
        assert shell.execute("tables") == "(no tables)"
        assert shell.execute("views") == "(no views)"

    def test_case_insensitive_keywords(self, shell):
        shell.execute("CREATE TABLE r (A)")
        shell.execute("INSERT INTO r VALUES (1)")
        assert "1 row(s) inserted" in shell.execute("Insert Into r Values (2)")
