"""Unit tests for condition simplification and selection pushdown."""

import random

import pytest

from repro.algebra.conditions import parse_condition
from repro.algebra.evaluate import evaluate
from repro.algebra.expressions import BaseRef, Select
from repro.algebra.relation import Relation
from repro.algebra.rewrites import is_spj, push_selections, simplify_condition
from repro.algebra.schema import RelationSchema


@pytest.fixture
def catalog():
    return {
        "r": RelationSchema(["A", "B"]),
        "s": RelationSchema(["B", "C"]),
        "t": RelationSchema(["D", "E"]),
    }


@pytest.fixture
def instances(catalog):
    rng = random.Random(5)
    out = {}
    for name, schema in catalog.items():
        rows = {
            tuple(rng.randint(0, 6) for _ in schema.names) for _ in range(15)
        }
        out[name] = Relation.from_rows(schema, sorted(rows))
    return out


class TestSimplifyCondition:
    def test_drops_ground_true(self):
        assert str(simplify_condition(parse_condition("3 < 5 and A > 2"))) == "A > 2"

    def test_kills_disjunct_with_ground_false(self):
        c = simplify_condition(parse_condition("7 < 5 and A > 2 or B < 1"))
        assert str(c) == "B < 1"

    def test_all_disjuncts_dead_gives_false(self):
        assert simplify_condition(parse_condition("7 < 5")).is_false()

    def test_all_atoms_true_gives_true(self):
        assert simplify_condition(parse_condition("3 < 5 and 1 = 1")).is_true()

    def test_dedupes_atoms(self):
        c = simplify_condition(parse_condition("A > 2 and A > 2"))
        assert len(c.disjuncts[0].atoms) == 1

    def test_keeps_distinct_atoms(self):
        c = simplify_condition(parse_condition("A > 2 and A > 3"))
        assert len(c.disjuncts[0].atoms) == 2


class TestIsSpj:
    def test_spj_expressions(self):
        assert is_spj(BaseRef("r").select("A < 1").project(["A"]))
        assert is_spj(BaseRef("r").join(BaseRef("s")))
        assert is_spj(BaseRef("r").rename({"A": "X"}))


class TestPushSelections:
    def test_pushes_single_side_atoms_below_join(self, catalog):
        expr = BaseRef("r").join(BaseRef("s")).select("A < 3 and C > 2")
        pushed = push_selections(expr, catalog)
        text = str(pushed)
        # Both atoms moved inside the join operands.
        assert text.index("A < 3") < text.index("join")
        assert "select" in str(pushed)

    def test_cross_side_atom_stays_at_join(self, catalog):
        expr = BaseRef("r").join(BaseRef("s")).select("A < C")
        pushed = push_selections(expr, catalog)
        # The atom spans both sides: it must sit above the join.
        assert isinstance(pushed, Select)

    def test_disjunction_not_split(self, catalog):
        expr = BaseRef("r").select("A < 1 or B > 5")
        pushed = push_selections(expr, catalog)
        assert isinstance(pushed, Select)
        assert len(pushed.condition.disjuncts) == 2

    def test_pushdown_through_project(self, catalog):
        expr = BaseRef("r").project(["A"]).select("A < 3")
        pushed = push_selections(expr, catalog)
        # Selection ends up below the projection.
        text = str(pushed)
        assert text.index("select") > text.index("project")

    def test_pushdown_through_rename(self, catalog):
        expr = BaseRef("r").rename({"A": "X"}).select("X < 3")
        pushed = push_selections(expr, catalog)
        # The pushed atom is rewritten to the underlying name A.
        assert "A < 3" in str(pushed)

    @pytest.mark.parametrize(
        "make_expr",
        [
            lambda: BaseRef("r").join(BaseRef("s")).select("A < 3 and C > 2"),
            lambda: BaseRef("r").join(BaseRef("s")).select("A < C"),
            lambda: BaseRef("r").select("A < 1 or B > 5"),
            lambda: BaseRef("r").project(["A"]).select("A < 3"),
            lambda: BaseRef("r").rename({"A": "X"}).select("X < 3 and B = 2"),
            lambda: (
                BaseRef("r")
                .join(BaseRef("s"))
                .select("A <= B + 1 and C >= 2")
                .project(["A", "C"])
            ),
            lambda: BaseRef("r").product(BaseRef("t")).select("A < D and E > 1"),
            lambda: BaseRef("r").select("3 < 5 and A >= 0"),
        ],
    )
    def test_pushdown_preserves_counted_semantics(
        self, make_expr, catalog, instances
    ):
        expr = make_expr()
        pushed = push_selections(expr, catalog)
        assert evaluate(expr, instances) == evaluate(pushed, instances)
