"""Focused tests for the counted OLD-operand arithmetic.

The OLD operand of a truth-table row must hold exactly the tuples (and
counts) present both before and after the transaction:
``old_count = post_count − insert_count``.  For set-semantics base
relations this degenerates to "skip inserted tuples"; for counted
operands — views used as bases of other views — the subtraction is
essential.
"""


from repro.algebra.relation import Delta, Relation
from repro.algebra.schema import RelationSchema
from repro.algebra.tags import Tag
from repro.core.differential import _old_operand

SCHEMA = RelationSchema(["A"])


def _counts(tagged):
    return {
        values: count
        for values, tag, count in tagged.items()
        if tag is Tag.OLD
    }


class TestSetSemantics:
    def test_inserted_tuple_excluded(self):
        post = Relation.from_rows(SCHEMA, [(1,), (2,)])
        delta = Delta(SCHEMA, inserted=[(2,)])
        assert _counts(_old_operand(post, delta, SCHEMA)) == {(1,): 1}

    def test_deleted_tuple_absent_from_post_already(self):
        post = Relation.from_rows(SCHEMA, [(1,)])
        delta = Delta(SCHEMA, deleted=[(9,)])
        assert _counts(_old_operand(post, delta, SCHEMA)) == {(1,): 1}

    def test_no_delta(self):
        post = Relation.from_rows(SCHEMA, [(1,), (2,)])
        assert _counts(_old_operand(post, None, SCHEMA)) == {(1,): 1, (2,): 1}


class TestCountedSemantics:
    def test_partial_insert_leaves_remainder_old(self):
        # Pre-state count 2; insert raises it to 5. OLD must be 2.
        post = Relation.from_counts(SCHEMA, {(1,): 5})
        delta = Delta.from_counts(SCHEMA, {(1,): 3}, {})
        assert _counts(_old_operand(post, delta, SCHEMA)) == {(1,): 2}

    def test_full_insert_excludes_tuple(self):
        post = Relation.from_counts(SCHEMA, {(1,): 3})
        delta = Delta.from_counts(SCHEMA, {(1,): 3}, {})
        assert _counts(_old_operand(post, delta, SCHEMA)) == {}

    def test_partial_delete_remainder_is_old(self):
        # Pre-state count 5, delete 2: post holds 3, all of them OLD.
        post = Relation.from_counts(SCHEMA, {(1,): 3})
        delta = Delta.from_counts(SCHEMA, {}, {(1,): 2})
        assert _counts(_old_operand(post, delta, SCHEMA)) == {(1,): 3}

    def test_identity_old_equals_pre_minus_deletes(self):
        """old = post − i must equal pre − d, count for count."""
        pre = Relation.from_counts(SCHEMA, {(1,): 4, (2,): 1, (3,): 2})
        delta = Delta.from_counts(SCHEMA, {(1,): 2, (4,): 1}, {(2,): 1, (3,): 1})
        post = pre.copy()
        delta.apply_to(post)
        old = _counts(_old_operand(post, delta, SCHEMA))
        expected = {}
        for values, count in pre.items():
            remaining = count - delta.deleted.get(values, 0)
            if remaining > 0:
                expected[values] = remaining
        assert old == expected
