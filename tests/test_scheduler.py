"""Tests for repro.scheduler: self-maintainability, SLAs, the refresh
scheduler, staleness monitoring, and base-free hosting.

Covers the classifier's three verdicts (single-relation, provably empty
join, join obstruction), the analyzer's INFO finding, the maintainer's
backlog/apply_deltas seam, SLA due/violated semantics, priority and
backpressure in the scheduler tick, deterministic monitor reports, the
server wiring, and — via hypothesis — the tentpole equivalence: a
self-maintainable view maintained base-free from shipped deltas alone
agrees byte-for-byte with the full pipeline over random legal update
sequences.
"""

from __future__ import annotations

import random
import shutil
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    BaseRef,
    Database,
    DurabilityManager,
    Follower,
    MaintenancePolicy,
    ReplicationError,
    ViewMaintainer,
)
from repro.analysis import F_SELF_MAINTAINABLE, Severity, analyze_definition
from repro.errors import MaintenanceError, UnknownViewError
from repro.scheduler import (
    KIND_CONSTRAINT_EMPTY,
    KIND_JOIN,
    KIND_SINGLE_RELATION,
    Monitor,
    RefreshScheduler,
    StalenessSLA,
    TickClock,
    classify_self_maintainability,
)


def make_database():
    db = Database()
    db.create_relation("r", ["A", "B"], [(1, 2), (3, 4), (5, 6)])
    db.create_relation("s", ["C", "D"], [(1, 7), (2, 8)])
    return db


# ----------------------------------------------------------------------
# Self-maintainability classification
# ----------------------------------------------------------------------
class TestSelfMaintainability:
    def test_single_relation_views_always_qualify(self):
        db = make_database()
        maintainer = ViewMaintainer(db)
        for expression in (
            BaseRef("r"),
            BaseRef("r").select("A <= 3"),
            BaseRef("r").select("A < B").project(["B"]),
        ):
            maintainer.define_view("v", expression)
            verdict = maintainer.self_maintainability("v")
            assert verdict.self_maintainable
            assert verdict.kind == KIND_SINGLE_RELATION
            assert maintainer.is_self_maintainable("v")
            maintainer.drop_view("v")

    def test_join_views_are_rejected_with_the_obstruction(self):
        db = make_database()
        maintainer = ViewMaintainer(db)
        maintainer.define_view(
            "j", BaseRef("r").join(BaseRef("s")).select("A = C")
        )
        verdict = maintainer.self_maintainability("j")
        assert not verdict.self_maintainable
        assert verdict.kind == KIND_JOIN
        assert "s" in verdict.reason or "base" in verdict.reason.lower()
        assert not maintainer.is_self_maintainable("j")

    def test_constraint_empty_join_qualifies(self):
        db = make_database()
        db.declare_constraint("s", "C >= 0")
        maintainer = ViewMaintainer(db)
        # C >= 0 makes A = C and A < 0 unsatisfiable: the view is
        # provably empty in every legal state, hence trivially
        # self-maintainable.
        maintainer.define_view(
            "empty",
            BaseRef("r").join(BaseRef("s")).select("A = C and A < 0"),
        )
        verdict = maintainer.self_maintainability("empty")
        assert verdict.self_maintainable
        assert verdict.kind == KIND_CONSTRAINT_EMPTY
        assert len(maintainer.view("empty").contents) == 0

    def test_classifier_is_standalone_callable(self):
        db = make_database()
        maintainer = ViewMaintainer(db)
        view = maintainer.define_view("v", BaseRef("r").select("A <= 3"))
        verdict = classify_self_maintainability(view.definition)
        assert verdict.self_maintainable
        doc = verdict.as_dict()
        assert doc["view"] == "v"
        assert doc["kind"] == KIND_SINGLE_RELATION

    def test_analyzer_emits_the_info_finding(self):
        db = make_database()
        maintainer = ViewMaintainer(db)
        maintainer.define_view("v", BaseRef("r").select("A <= 3"))
        findings = analyze_definition(
            maintainer.view("v").definition, db.constraints
        )
        hits = [f for f in findings if f.code == F_SELF_MAINTAINABLE]
        assert len(hits) == 1
        assert hits[0].severity is Severity.INFO
        assert "base_free" in hits[0].message

    def test_analyzer_is_silent_for_join_views(self):
        db = make_database()
        maintainer = ViewMaintainer(db)
        maintainer.define_view(
            "j", BaseRef("r").join(BaseRef("s")).select("A = C")
        )
        findings = analyze_definition(
            maintainer.view("j").definition, db.constraints
        )
        assert not [f for f in findings if f.code == F_SELF_MAINTAINABLE]


# ----------------------------------------------------------------------
# Backlog and the apply_deltas seam
# ----------------------------------------------------------------------
class TestBacklogAndApplyDeltas:
    def test_backlog_counts_pending_work(self):
        db = make_database()
        maintainer = ViewMaintainer(db)
        maintainer.define_view(
            "d",
            BaseRef("r").select("A <= 3"),
            policy=MaintenancePolicy.DEFERRED,
        )
        assert maintainer.backlog("d") == {
            "pending_relations": 0,
            "pending_delta_size": 0,
            "commits_since_refresh": 0,
            "sequence_lag": 0,
        }
        with db.transact() as txn:
            txn.insert("r", (2, 9))
        with db.transact() as txn:
            txn.insert("r", (6, 1))
            txn.delete("r", (1, 2))
        backlog = maintainer.backlog("d")
        assert backlog["commits_since_refresh"] == 2
        assert backlog["pending_relations"] == 1
        assert backlog["pending_delta_size"] == 3
        assert backlog["sequence_lag"] == 2
        maintainer.refresh("d")
        backlog = maintainer.backlog("d")
        assert backlog["commits_since_refresh"] == 0
        assert backlog["pending_delta_size"] == 0
        assert backlog["sequence_lag"] == 0

    def test_backlog_requires_a_known_view(self):
        maintainer = ViewMaintainer(make_database())
        with pytest.raises(UnknownViewError):
            maintainer.backlog("ghost")

    def test_apply_deltas_equals_the_commit_pipeline(self):
        source = make_database()
        source_maintainer = ViewMaintainer(source)
        mirror = make_database()
        mirror_maintainer = ViewMaintainer(mirror)
        for m in (source_maintainer, mirror_maintainer):
            m.define_view("v", BaseRef("r").select("A <= 3").project(["B"]))
        rng = random.Random(11)
        shipped = 0
        for _ in range(25):
            with source.transact() as txn:
                txn.insert("r", (rng.randrange(8), rng.randrange(8)))
                if rng.random() < 0.4:
                    txn.insert("s", (rng.randrange(8), rng.randrange(8)))
            # Net-empty commits append no record, so ship whatever is new
            # rather than blindly re-reading the tail.
            records = list(source.log)[shipped:]
            shipped += len(records)
            for record in records:
                mirror_maintainer.apply_deltas(record.txn_id, record.deltas)
        assert (
            source_maintainer.view("v").contents.counts()
            == mirror_maintainer.view("v").contents.counts()
        )


# ----------------------------------------------------------------------
# Staleness SLAs
# ----------------------------------------------------------------------
class TestStalenessSLA:
    def test_requires_at_least_one_bound(self):
        with pytest.raises(ValueError):
            StalenessSLA()

    def test_bounds_must_be_positive(self):
        with pytest.raises(ValueError):
            StalenessSLA(max_pending_commits=0)
        with pytest.raises(ValueError):
            StalenessSLA(max_lag_ticks=-1)

    def test_due_at_the_bound_violated_strictly_beyond(self):
        sla = StalenessSLA(max_pending_commits=3)
        assert not sla.due(2, 0)
        assert sla.due(3, 0)
        assert not sla.violated(3, 0)
        assert sla.violated(4, 0)
        assert sla.overdue_by(5, 0) == 2

    def test_either_axis_can_trigger(self):
        sla = StalenessSLA(max_pending_commits=10, max_lag_ticks=4)
        assert sla.due(1, 4)
        assert sla.violated(1, 5)
        assert sla.overdue_by(12, 7) == 3

    def test_as_dict_round_trips_bounds(self):
        sla = StalenessSLA(max_pending_commits=7)
        assert sla.as_dict() == {
            "max_pending_commits": 7,
            "max_lag_ticks": None,
        }


# ----------------------------------------------------------------------
# The refresh scheduler
# ----------------------------------------------------------------------
def make_scheduled(batch_limit=4, names=("d1", "d2")):
    db = make_database()
    maintainer = ViewMaintainer(db)
    for name in names:
        maintainer.define_view(
            name,
            BaseRef("r").select("A <= 5"),
            policy=MaintenancePolicy.DEFERRED,
        )
    clock = TickClock()
    scheduler = RefreshScheduler(maintainer, clock=clock, batch_limit=batch_limit)
    return db, maintainer, clock, scheduler


class TestRefreshScheduler:
    def test_sla_on_immediate_view_is_a_configuration_error(self):
        db = make_database()
        maintainer = ViewMaintainer(db)
        maintainer.define_view("v", BaseRef("r"))
        scheduler = RefreshScheduler(maintainer)
        with pytest.raises(MaintenanceError):
            scheduler.declare_sla("v", StalenessSLA(max_pending_commits=1))

    def test_lag_ticks_requires_a_declared_sla(self):
        _, _, _, scheduler = make_scheduled()
        with pytest.raises(UnknownViewError):
            scheduler.lag_ticks("d1")

    def test_tick_refreshes_views_at_their_bound(self):
        db, maintainer, clock, scheduler = make_scheduled()
        scheduler.declare_sla("d1", StalenessSLA(max_pending_commits=2))
        with db.transact() as txn:
            txn.insert("r", (1, 1))
        clock.advance(1)
        assert scheduler.tick() == ()  # 1 pending < bound 2
        with db.transact() as txn:
            txn.insert("r", (2, 2))
        clock.advance(1)
        assert scheduler.tick() == ("d1",)
        assert maintainer.backlog("d1")["commits_since_refresh"] == 0
        assert scheduler.stats.refreshes == 1
        assert scheduler.stats.refreshed_commits == 2
        assert scheduler.stats.sla_violations == 0

    def test_lag_bound_fires_without_new_commits(self):
        db, _, clock, scheduler = make_scheduled()
        scheduler.declare_sla("d1", StalenessSLA(max_lag_ticks=3))
        with db.transact() as txn:
            txn.insert("r", (1, 1))
        scheduler.note_commit()
        clock.advance(2)
        assert scheduler.tick() == ()
        clock.advance(1)
        assert scheduler.lag_ticks("d1") == 3
        assert scheduler.tick() == ("d1",)
        assert scheduler.lag_ticks("d1") == 0

    def test_violations_are_counted_strictly_beyond_the_bound(self):
        db, _, clock, scheduler = make_scheduled(batch_limit=1)
        scheduler.declare_sla("d1", StalenessSLA(max_pending_commits=1))
        scheduler.declare_sla("d2", StalenessSLA(max_pending_commits=1))
        for i in range(3):
            with db.transact() as txn:
                txn.insert("r", (10 + i, i))
        clock.advance(1)
        # Both views hold 3 pending commits against a bound of 1: both
        # have missed their SLA; backpressure refreshes only one.
        refreshed = scheduler.tick()
        assert len(refreshed) == 1
        assert scheduler.stats.sla_violations == 2
        assert scheduler.stats.backpressure_deferrals == 1
        assert sum(scheduler.violations().values()) == 2
        # The deferred view is picked up next tick (another violation
        # tick for it, since it is still strictly beyond the bound).
        remaining = scheduler.tick()
        assert len(remaining) == 1
        assert set(refreshed + remaining) == {"d1", "d2"}

    def test_most_overdue_view_wins_the_batch(self):
        db, _, clock, scheduler = make_scheduled(batch_limit=1)
        scheduler.declare_sla("d1", StalenessSLA(max_pending_commits=4))
        scheduler.declare_sla("d2", StalenessSLA(max_pending_commits=1))
        for i in range(4):
            with db.transact() as txn:
                txn.insert("r", (10 + i, i))
        clock.advance(1)
        # d2 is 3 commits over its bound, d1 exactly at its bound.
        assert scheduler.tick() == ("d2",)

    def test_drop_sla_stops_scheduling(self):
        db, _, clock, scheduler = make_scheduled()
        scheduler.declare_sla("d1", StalenessSLA(max_pending_commits=1))
        assert scheduler.drop_sla("d1")
        assert not scheduler.drop_sla("d1")
        with db.transact() as txn:
            txn.insert("r", (1, 1))
        clock.advance(1)
        assert scheduler.tick() == ()

    def test_batch_limit_must_be_positive(self):
        _, maintainer, _, _ = make_scheduled()
        with pytest.raises(ValueError):
            RefreshScheduler(maintainer, batch_limit=0)


# ----------------------------------------------------------------------
# The monitor
# ----------------------------------------------------------------------
class TestMonitor:
    def drive(self):
        db, maintainer, clock, scheduler = make_scheduled(batch_limit=1)
        scheduler.declare_sla("d1", StalenessSLA(max_pending_commits=2))
        monitor = Monitor(maintainer, scheduler)
        monitor.begin(clock.now)
        for i in range(6):
            with db.transact() as txn:
                txn.insert("r", (i % 7, i))
            clock.advance(1)
            scheduler.tick()
        return clock, monitor

    def test_report_before_begin_raises(self):
        _, maintainer, _, scheduler = make_scheduled()
        with pytest.raises(MaintenanceError):
            Monitor(maintainer, scheduler).report(0)

    def test_report_is_deterministic_and_windowed(self):
        clock, monitor = self.drive()
        report = monitor.report(clock.now)
        again = monitor.report(clock.now)
        assert report.as_json() == again.as_json()
        assert report.as_html() == again.as_html()
        data = report.data
        assert data["window"] == {"start": 0, "end": 6, "ticks": 6}
        d1 = data["views"]["d1"]
        assert d1["policy"] == "deferred"
        assert d1["sla"] == {"max_pending_commits": 2, "max_lag_ticks": None}
        assert d1["cost"]["transactions_seen"] > 0
        assert data["scheduler"]["ticks"] == 6
        assert data["scheduler"]["refreshes"] >= 1
        # d2 has no SLA: reported with backlog but no SLA block.
        assert data["views"]["d2"]["sla"] is None

    def test_html_contains_the_view_table(self):
        clock, monitor = self.drive()
        html_text = monitor.report(clock.now).as_html()
        assert html_text.startswith("<!DOCTYPE html>")
        assert "d1" in html_text and "d2" in html_text
        assert "scheduler" in html_text

    def test_monitor_without_scheduler(self):
        db = make_database()
        maintainer = ViewMaintainer(db)
        maintainer.define_view("v", BaseRef("r"))
        monitor = Monitor(maintainer)
        monitor.begin(0)
        with db.transact() as txn:
            txn.insert("r", (9, 9))
        report = monitor.report(3)
        assert report.data["scheduler"] is None
        assert report.data["views"]["v"]["cost"]["transactions_seen"] == 1


# ----------------------------------------------------------------------
# Server wiring
# ----------------------------------------------------------------------
class TestServerScheduler:
    def make_server(self):
        from repro.server import ServerConfig, ViewServer

        db = make_database()
        maintainer = ViewMaintainer(db)
        maintainer.define_view(
            "d",
            BaseRef("r").select("A <= 5"),
            policy=MaintenancePolicy.DEFERRED,
        )
        config = ServerConfig(
            staleness_slas={"d": StalenessSLA(max_pending_commits=2)},
            scheduler_batch_limit=1,
        )
        return db, maintainer, ViewServer(db, maintainer, config)

    def test_commits_advance_the_clock_and_refresh_due_views(self):
        _, maintainer, server = self.make_server()
        for i in range(4):
            server._op_txn(None, {"insert": {"r": [[i, i]]}})
        assert server.clock.now == 4
        assert server.scheduler.stats.refreshes >= 1
        assert maintainer.backlog("d")["commits_since_refresh"] < 2
        counters = server.recorder.snapshot()
        assert counters.get("server_scheduler_refreshes", 0) >= 1

    def test_stats_op_reports_backlog_and_scheduler(self):
        _, _, server = self.make_server()
        server._op_txn(None, {"insert": {"r": [[8, 8]]}})
        stats = server._op_stats(None, {})
        assert stats["views"]["d"]["backlog"]["commits_since_refresh"] == 1
        block = stats["scheduler"]
        assert block["now"] == 1
        assert block["slas"]["d"]["max_pending_commits"] == 2
        assert block["counters"]["ticks"] == 1

    def test_stats_op_filters_by_view(self):
        from repro.server.protocol import ProtocolError

        _, maintainer, server = self.make_server()
        maintainer.define_view("v", BaseRef("s"))
        stats = server._op_stats(None, {"view": "d"})
        assert set(stats["views"]) == {"d"}
        with pytest.raises(ProtocolError):
            server._op_stats(None, {"view": "ghost"})


# ----------------------------------------------------------------------
# Base-free hosting: the hypothesis equivalence property
# ----------------------------------------------------------------------
#: Self-maintainable (single-relation) view shapes for the property.
BASE_FREE_VIEWS = [
    BaseRef("r"),
    BaseRef("r").select("A <= 3"),
    BaseRef("r").select("A < B + 1"),
    BaseRef("r").project(["B"]),
    BaseRef("r").select("A = B").project(["A"]),
    BaseRef("s").select("C >= 2 or D < 1"),
]

values = st.integers(min_value=0, max_value=5)
statements = st.lists(
    st.tuples(
        st.sampled_from(["r", "s"]),
        st.sampled_from(["insert", "delete"]),
        st.tuples(values, values),
    ),
    min_size=1,
    max_size=6,
)
transactions = st.lists(statements, min_size=1, max_size=8)
view_indices = st.integers(min_value=0, max_value=len(BASE_FREE_VIEWS) - 1)


class TestBaseFreeEquivalence:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(view_indices, view_indices, transactions)
    def test_base_free_follower_matches_full_pipeline(self, vi, vj, txns):
        """The tentpole property: a base-free replica's views equal the
        full replica's byte-for-byte over random legal update streams,
        for every self-maintainable view shape — immediate and
        deferred."""
        directory = tempfile.mkdtemp(prefix="repro-base-free-")
        try:
            db = Database()
            db.create_relation("r", ["A", "B"], [(0, 0), (1, 2), (3, 3)])
            db.create_relation("s", ["C", "D"], [(2, 2), (4, 1)])
            durability = DurabilityManager(db, directory)
            leader = ViewMaintainer(db)
            durability.checkpoint(leader)

            full = Follower(directory)
            bare = Follower(directory, base_free=True)
            for follower in (full, bare):
                follower.define_view("vi", BASE_FREE_VIEWS[vi])
                follower.define_view(
                    "vd",
                    BASE_FREE_VIEWS[vj],
                    policy=MaintenancePolicy.DEFERRED,
                )

            for batch in txns:
                with db.transact() as txn:
                    for name, op, row in batch:
                        getattr(txn, op)(name, row)
            full.poll()
            bare.poll()
            assert full.position == bare.position
            for follower in (full, bare):
                follower.maintainer.quiesce()
            for name in ("vi", "vd"):
                assert (
                    full.view(name).contents.counts()
                    == bare.view(name).contents.counts()
                ), name
            if bare.base_dropped:
                for name in bare.database.relation_names():
                    assert len(bare.database.relation(name)) == 0
        finally:
            shutil.rmtree(directory, ignore_errors=True)


class TestBaseFreeFollowerEdges:
    def test_join_views_are_refused_at_shed_time(self, tmp_path):
        db = make_database()
        durability = DurabilityManager(db, str(tmp_path))
        leader = ViewMaintainer(db)
        durability.checkpoint(leader)
        follower = Follower(str(tmp_path), base_free=True)
        follower.define_view(
            "j", BaseRef("r").join(BaseRef("s")).select("A = C")
        )
        with db.transact() as txn:
            txn.insert("r", (7, 7))
        with pytest.raises(ReplicationError, match="self-maintainable"):
            follower.poll()

    def test_views_cannot_be_added_after_shedding(self, tmp_path):
        db = make_database()
        durability = DurabilityManager(db, str(tmp_path))
        leader = ViewMaintainer(db)
        durability.checkpoint(leader)
        follower = Follower(str(tmp_path), base_free=True)
        follower.define_view("v", BaseRef("r"))
        with db.transact() as txn:
            txn.insert("r", (7, 7))
        assert follower.poll() == 1
        assert follower.base_dropped
        assert follower.base_rows_dropped == 5
        with pytest.raises(ReplicationError, match="shed"):
            follower.define_view("late", BaseRef("s"))

    def test_shed_requires_base_free_mode(self, tmp_path):
        db = make_database()
        durability = DurabilityManager(db, str(tmp_path))
        durability.checkpoint(ViewMaintainer(db))
        follower = Follower(str(tmp_path))
        with pytest.raises(ReplicationError):
            follower.shed_base_copies()
