"""Failure-injection tests: what breaks, and how loudly.

The engine's contract under failing components is deliberately simple
and these tests pin it down:

* a transaction that raises before commit aborts cleanly;
* a commit hook that raises propagates *after* the base relations and
  earlier hooks have applied — commits are not rolled back by observer
  failures (observers are derived state; the log remains authoritative);
* a corrupted view is caught by ``auto_verify`` / ``check_view_consistency``
  with a precise report, and the exception names the view;
* maintenance keeps working after an observer failure.
"""

import pytest

from repro.algebra.expressions import BaseRef
from repro.core.consistency import check_view_consistency
from repro.core.maintainer import ViewMaintainer
from repro.engine.database import Database
from repro.errors import MaintenanceError


@pytest.fixture
def db():
    database = Database()
    database.create_relation("r", ["A", "B"], [(1, 1)])
    return database


class TestHookFailures:
    def test_hook_exception_propagates_but_commit_stands(self, db):
        def bad_hook(txn_id, deltas):
            raise RuntimeError("observer crashed")

        db.add_commit_hook(bad_hook)
        with pytest.raises(RuntimeError):
            with db.transact() as txn:
                txn.insert("r", (2, 2))
        # The base relation kept the committed row: observers cannot
        # veto a commit.
        assert (2, 2) in db.relation("r")
        # The log recorded it too.
        assert db.log.last_sequence() == 1

    def test_earlier_hooks_complete_before_failure(self, db):
        seen = []
        db.add_commit_hook(lambda txn_id, deltas: seen.append("first"))
        db.add_commit_hook(
            lambda txn_id, deltas: (_ for _ in ()).throw(RuntimeError())
        )
        db.add_commit_hook(lambda txn_id, deltas: seen.append("third"))
        with pytest.raises(RuntimeError):
            with db.transact() as txn:
                txn.insert("r", (2, 2))
        assert seen == ["first"]

    def test_maintainer_view_stays_consistent_despite_later_hook_failure(self, db):
        maintainer = ViewMaintainer(db)  # registered first: runs first
        view = maintainer.define_view("v", BaseRef("r"))

        def bad_hook(txn_id, deltas):
            raise RuntimeError("later observer crashed")

        db.add_commit_hook(bad_hook)
        with pytest.raises(RuntimeError):
            with db.transact() as txn:
                txn.insert("r", (2, 2))
        # The maintainer ran before the failing hook: the view tracked
        # the commit and stays consistent.
        check_view_consistency(view, db.instances())
        assert (2, 2) in view.contents

    def test_maintenance_resumes_after_observer_removal(self, db):
        maintainer = ViewMaintainer(db)
        view = maintainer.define_view("v", BaseRef("r"))

        def bad_hook(txn_id, deltas):
            raise RuntimeError

        db.add_commit_hook(bad_hook)
        with pytest.raises(RuntimeError):
            with db.transact() as txn:
                txn.insert("r", (2, 2))
        db.remove_commit_hook(bad_hook)
        with db.transact() as txn:
            txn.insert("r", (3, 3))
        assert (3, 3) in view.contents
        check_view_consistency(view, db.instances())


class TestCorruptionDetection:
    def test_auto_verify_names_the_view(self, db):
        maintainer = ViewMaintainer(db, auto_verify=True)
        view = maintainer.define_view("watched", BaseRef("r"))
        view.contents.add((99, 99))
        with pytest.raises(MaintenanceError, match="watched"):
            with db.transact() as txn:
                txn.insert("r", (2, 2))

    def test_verify_failure_leaves_commit_applied(self, db):
        maintainer = ViewMaintainer(db, auto_verify=True)
        view = maintainer.define_view("v", BaseRef("r"))
        view.contents.add((99, 99))
        with pytest.raises(MaintenanceError):
            with db.transact() as txn:
                txn.insert("r", (2, 2))
        assert (2, 2) in db.relation("r")

    def test_report_pinpoints_the_difference(self, db):
        maintainer = ViewMaintainer(db)
        view = maintainer.define_view("v", BaseRef("r"))
        view.contents.add((99, 99))
        view.contents.discard((1, 1))
        report = check_view_consistency(
            view, db.instances(), raise_on_mismatch=False
        )
        assert report.unexpected == {(99, 99): 1}
        assert report.missing == {(1, 1): 1}


class TestSubscriberFailures:
    def test_subscriber_exception_propagates_after_view_update(self, db):
        maintainer = ViewMaintainer(db)
        view = maintainer.define_view("v", BaseRef("r"))

        def bad_subscriber(view, delta):
            raise RuntimeError("alerter crashed")

        maintainer.subscribe("v", bad_subscriber)
        with pytest.raises(RuntimeError):
            with db.transact() as txn:
                txn.insert("r", (2, 2))
        # The view delta had already been applied.
        assert (2, 2) in view.contents
        check_view_consistency(view, db.instances())
