"""Failure-injection tests: what breaks, and how loudly.

The engine's contract under failing components is deliberately simple
and these tests pin it down:

* a commit hook that raises propagates *after* the base relations and
  earlier hooks have applied, and later hooks are skipped — commits
  are not rolled back by observer failures (observers are derived
  state; the log remains authoritative), but observer order matters:
  stop-at-first-failure is the pinned commit-hook policy;
* DDL hooks are the opposite: *every* hook sees every schema change
  even when an earlier one raises (first failure re-raised after),
  because the maintainer's plan invalidation rides this bus and a
  failing user hook must not leave a stale compiled plan cached;
* a subscriber that raises propagates after the view delta applied;
* a corrupted view is caught by ``auto_verify`` / ``check_view_consistency``
  with a precise report, and the exception names the view;
* maintenance keeps working after an observer failure.
"""

import pytest

from repro.algebra.expressions import BaseRef
from repro.core.consistency import check_view_consistency
from repro.core.maintainer import ViewMaintainer
from repro.engine.database import Database
from repro.errors import MaintenanceError


@pytest.fixture
def db():
    database = Database()
    database.create_relation("r", ["A", "B"], [(1, 1)])
    return database


class TestHookFailures:
    def test_hook_exception_propagates_but_commit_stands(self, db):
        def bad_hook(txn_id, deltas):
            raise RuntimeError("observer crashed")

        db.add_commit_hook(bad_hook)
        with pytest.raises(RuntimeError):
            with db.transact() as txn:
                txn.insert("r", (2, 2))
        # The base relation kept the committed row: observers cannot
        # veto a commit.
        assert (2, 2) in db.relation("r")
        # The log recorded it too.
        assert db.log.last_sequence() == 1

    def test_earlier_hooks_complete_before_failure(self, db):
        seen = []
        db.add_commit_hook(lambda txn_id, deltas: seen.append("first"))
        db.add_commit_hook(
            lambda txn_id, deltas: (_ for _ in ()).throw(RuntimeError())
        )
        db.add_commit_hook(lambda txn_id, deltas: seen.append("third"))
        with pytest.raises(RuntimeError):
            with db.transact() as txn:
                txn.insert("r", (2, 2))
        assert seen == ["first"]

    def test_maintainer_view_stays_consistent_despite_later_hook_failure(self, db):
        maintainer = ViewMaintainer(db)  # registered first: runs first
        view = maintainer.define_view("v", BaseRef("r"))

        def bad_hook(txn_id, deltas):
            raise RuntimeError("later observer crashed")

        db.add_commit_hook(bad_hook)
        with pytest.raises(RuntimeError):
            with db.transact() as txn:
                txn.insert("r", (2, 2))
        # The maintainer ran before the failing hook: the view tracked
        # the commit and stays consistent.
        check_view_consistency(view, db.instances())
        assert (2, 2) in view.contents

    def test_maintenance_resumes_after_observer_removal(self, db):
        maintainer = ViewMaintainer(db)
        view = maintainer.define_view("v", BaseRef("r"))

        def bad_hook(txn_id, deltas):
            raise RuntimeError

        db.add_commit_hook(bad_hook)
        with pytest.raises(RuntimeError):
            with db.transact() as txn:
                txn.insert("r", (2, 2))
        db.remove_commit_hook(bad_hook)
        with db.transact() as txn:
            txn.insert("r", (3, 3))
        assert (3, 3) in view.contents
        check_view_consistency(view, db.instances())


class TestDdlHookFailures:
    def test_plan_invalidation_survives_earlier_failing_ddl_hook(self, db):
        """A user DDL hook that raises must not strand a stale plan.

        The bad hook is registered *before* the maintainer, so under
        stop-at-first-failure semantics the maintainer's invalidation
        would never run and ``compiled_plan`` would keep serving a plan
        bound to the dropped index.  The DDL bus runs every hook and
        re-raises the first failure afterwards.
        """

        def bad_hook(event, relation_name):
            if event == "drop_index":
                raise RuntimeError("ddl observer crashed")

        db.add_ddl_hook(bad_hook)  # earlier than the maintainer's hook
        maintainer = ViewMaintainer(db)
        view = maintainer.define_view("v", BaseRef("r"))
        db.create_index("r", ["A"])
        # Recompile so the cached plan post-dates the index.
        with db.transact() as txn:
            txn.insert("r", (2, 2))
        assert maintainer.compiled_plan("v") is not None

        with pytest.raises(RuntimeError, match="ddl observer crashed"):
            db.drop_index("r", ["A"])
        # The failing earlier hook did not stop the invalidation.
        assert maintainer.compiled_plan("v") is None

        # The next commit recompiles cleanly and the view stays exact.
        db.remove_ddl_hook(bad_hook)
        with db.transact() as txn:
            txn.insert("r", (3, 3))
        assert maintainer.compiled_plan("v") is not None
        check_view_consistency(view, db.instances())

    def test_first_ddl_failure_wins_but_all_hooks_run(self, db):
        seen = []

        def first(event, relation_name):
            seen.append(("first", event))
            raise RuntimeError("first crashed")

        def second(event, relation_name):
            seen.append(("second", event))
            raise RuntimeError("second crashed")

        db.add_ddl_hook(first)
        db.add_ddl_hook(second)
        with pytest.raises(RuntimeError, match="first crashed"):
            db.create_relation("s", ["C"])
        assert seen == [("first", "create_relation"), ("second", "create_relation")]
        # The schema change itself stood: hooks observe, never veto.
        assert "s" in db.relation_names()


class TestCorruptionDetection:
    def test_auto_verify_names_the_view(self, db):
        maintainer = ViewMaintainer(db, auto_verify=True)
        view = maintainer.define_view("watched", BaseRef("r"))
        view.contents.add((99, 99))
        with pytest.raises(MaintenanceError, match="watched"):
            with db.transact() as txn:
                txn.insert("r", (2, 2))

    def test_verify_failure_leaves_commit_applied(self, db):
        maintainer = ViewMaintainer(db, auto_verify=True)
        view = maintainer.define_view("v", BaseRef("r"))
        view.contents.add((99, 99))
        with pytest.raises(MaintenanceError):
            with db.transact() as txn:
                txn.insert("r", (2, 2))
        assert (2, 2) in db.relation("r")

    def test_report_pinpoints_the_difference(self, db):
        maintainer = ViewMaintainer(db)
        view = maintainer.define_view("v", BaseRef("r"))
        view.contents.add((99, 99))
        view.contents.discard((1, 1))
        report = check_view_consistency(
            view, db.instances(), raise_on_mismatch=False
        )
        assert report.unexpected == {(99, 99): 1}
        assert report.missing == {(1, 1): 1}


class TestSubscriberFailures:
    def test_subscriber_exception_propagates_after_view_update(self, db):
        maintainer = ViewMaintainer(db)
        view = maintainer.define_view("v", BaseRef("r"))

        def bad_subscriber(view, delta):
            raise RuntimeError("alerter crashed")

        maintainer.subscribe("v", bad_subscriber)
        with pytest.raises(RuntimeError):
            with db.transact() as txn:
                txn.insert("r", (2, 2))
        # The view delta had already been applied.
        assert (2, 2) in view.contents
        check_view_consistency(view, db.instances())
