"""Unit tests for the Section 5.3 truth table."""

import pytest

from repro.core.truthtable import (
    DeltaRowChoice,
    count_delta_rows,
    enumerate_delta_rows,
    full_truth_table,
    render_row,
)
from repro.errors import MaintenanceError

O, D = DeltaRowChoice.OLD, DeltaRowChoice.DELTA


class TestEnumeration:
    def test_paper_p3_example(self):
        """With insertions to r1 and r2 only, the paper evaluates rows
        3, 5 and 7 of its table: r1⋈i2⋈r3, i1⋈r2⋈r3, i1⋈i2⋈r3."""
        rows = list(enumerate_delta_rows(3, [0, 1]))
        assert rows == [(O, D, O), (D, O, O), (D, D, O)]

    def test_single_changed_relation(self):
        rows = list(enumerate_delta_rows(3, [2]))
        assert rows == [(O, O, D)]

    def test_all_changed(self):
        rows = list(enumerate_delta_rows(2, [0, 1]))
        assert rows == [(O, D), (D, O), (D, D)]
        # Never the all-old row.
        assert (O, O) not in rows

    def test_no_changes_yields_nothing(self):
        assert list(enumerate_delta_rows(3, [])) == []

    def test_unchanged_positions_always_old(self):
        for row in enumerate_delta_rows(5, [1, 3]):
            assert row[0] is O and row[2] is O and row[4] is O

    def test_duplicate_positions_deduped(self):
        assert list(enumerate_delta_rows(2, [0, 0])) == [(D, O)]

    def test_out_of_range_position_rejected(self):
        with pytest.raises(MaintenanceError):
            list(enumerate_delta_rows(2, [5]))
        with pytest.raises(MaintenanceError):
            list(enumerate_delta_rows(2, [-1]))

    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5])
    def test_row_count_is_2k_minus_1(self, k):
        rows = list(enumerate_delta_rows(k + 2, range(k)))
        assert len(rows) == 2**k - 1
        assert count_delta_rows(k) == 2**k - 1

    def test_count_zero(self):
        assert count_delta_rows(0) == 0

    def test_count_negative_rejected(self):
        with pytest.raises(MaintenanceError):
            count_delta_rows(-1)

    def test_rows_are_distinct(self):
        rows = list(enumerate_delta_rows(6, [0, 2, 4]))
        assert len(rows) == len(set(rows))


class TestRendering:
    def test_render_matches_paper_style(self):
        assert render_row((O, D, O), ["r1", "r2", "r3"]) == "r1 ⋈ i_r2 ⋈ r3"
        assert render_row((D, D, O), ["r1", "r2", "r3"]) == "i_r1 ⋈ i_r2 ⋈ r3"

    def test_render_width_mismatch(self):
        with pytest.raises(MaintenanceError):
            render_row((O, D), ["r1"])


class TestFullTable:
    def test_p3_has_eight_rows_in_paper_order(self):
        """The paper's p = 3 table: B1 B2 B3 counting up in binary with
        B3 least significant."""
        table = full_truth_table(3)
        assert len(table) == 8
        as_bits = [tuple(c.value for c in row) for row in table]
        assert as_bits == [
            (0, 0, 0),
            (0, 0, 1),
            (0, 1, 0),
            (0, 1, 1),
            (1, 0, 0),
            (1, 0, 1),
            (1, 1, 0),
            (1, 1, 1),
        ]

    def test_first_row_is_current_view(self):
        assert full_truth_table(2)[0] == (O, O)
