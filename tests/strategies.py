"""Hypothesis strategies shared across test modules."""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.algebra.conditions import Atom, Condition, Conjunction
from repro.algebra.expressions import Expression
from repro.simulation.workload import (
    BASE_TABLES,
    random_aggregate_expression,
    random_spj_expression,
)

#: Small integer constants, biased toward the interesting region.
small_ints = st.integers(min_value=-8, max_value=8)

#: Variable names drawn from a tiny pool so atoms interact.
var_names = st.sampled_from(["x", "y", "z", "w"])

ops = st.sampled_from(["=", "<", ">", "<=", ">="])


@st.composite
def atoms(draw) -> Atom:
    """Random paper-class atoms: x op y + c, x op c, or c op d."""
    shape = draw(st.sampled_from(["two-var", "var-const", "ground"]))
    op = draw(ops)
    if shape == "two-var":
        return Atom(draw(var_names), op, draw(var_names), draw(small_ints))
    if shape == "var-const":
        return Atom(draw(var_names), op, draw(small_ints))
    return Atom(draw(small_ints), op, draw(small_ints))


@st.composite
def conjunctions(draw, max_atoms: int = 5) -> Conjunction:
    """Random conjunctions of paper-class atoms."""
    n = draw(st.integers(min_value=0, max_value=max_atoms))
    return Conjunction([draw(atoms()) for _ in range(n)])


two_var_names = st.sampled_from(["x", "y"])


@st.composite
def small_atoms(draw) -> Atom:
    """Atoms over only two variables, for brute-force oracle tests."""
    shape = draw(st.sampled_from(["two-var", "var-const", "ground"]))
    op = draw(ops)
    if shape == "two-var":
        return Atom(draw(two_var_names), op, draw(two_var_names), draw(small_ints))
    if shape == "var-const":
        return Atom(draw(two_var_names), op, draw(small_ints))
    return Atom(draw(small_ints), op, draw(small_ints))


@st.composite
def small_conjunctions(draw, max_atoms: int = 4) -> Conjunction:
    """Conjunctions over ≤2 variables — cheap to brute-force."""
    n = draw(st.integers(min_value=0, max_value=max_atoms))
    return Conjunction([draw(small_atoms()) for _ in range(n)])


def solution_box(conjunction: Conjunction) -> int:
    """A sound enumeration bound for the brute-force oracle.

    If a difference-constraint system is satisfiable over the integers,
    the shortest-path solution's values are bounded by the sum of
    absolute edge weights; each atom contributes at most two edges of
    weight |offset or constant| + 1.
    """
    bound = 1
    for atom in conjunction.atoms:
        weights = [abs(atom.offset) + 1]
        from repro.algebra.conditions import Const

        if isinstance(atom.right, Const):
            weights.append(abs(atom.right.value) + 1)
        if isinstance(atom.left, Const):
            weights.append(abs(atom.left.value) + 1)
        bound += 2 * max(weights)
    return bound


@st.composite
def conditions(draw, max_disjuncts: int = 3, max_atoms: int = 4) -> Condition:
    """Random DNF conditions."""
    n = draw(st.integers(min_value=1, max_value=max_disjuncts))
    return Condition([draw(conjunctions(max_atoms)) for _ in range(n)])


# ----------------------------------------------------------------------
# Whole SPJ views over the simulator's schema
# ----------------------------------------------------------------------

#: The three-table schema the simulation harness runs against — reused
#: here so hypothesis and the simulator generate the same view class.
SPJ_TABLES = BASE_TABLES


@st.composite
def spj_expressions(draw, max_operands: int = 3) -> Expression:
    """Random multi-relation paper-class SPJ views.

    Delegates to :func:`repro.simulation.workload.random_spj_expression`
    through a drawn seed, so hypothesis shrinking works on the seed
    while the view population is byte-identical to the simulator's —
    one generator, two harnesses.
    """
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return random_spj_expression(random.Random(seed), max_operands=max_operands)


@st.composite
def aggregate_expressions(
    draw, max_operands: int = 2, allow_minmax: bool = True
) -> Expression:
    """Random GROUP BY views over random SPJ cores.

    Same seed-delegation trick as :func:`spj_expressions`: hypothesis
    shrinks the seed, :func:`repro.simulation.workload.
    random_aggregate_expression` turns it into the identical view
    population the simulator runs — COUNT/SUM/AVG/MIN/MAX columns over
    a random grouping key (possibly empty, a global aggregate).
    ``allow_minmax=False`` draws the self-maintainable subset the
    base-free hosts accept.
    """
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return random_aggregate_expression(
        random.Random(seed),
        max_operands=max_operands,
        allow_minmax=allow_minmax,
    )


@st.composite
def update_streams(
    draw,
    max_txns: int = 6,
    max_ops: int = 4,
    value_max: int = 6,
):
    """A random legal update stream over the SPJ_TABLES schema.

    Returns ``(initial_rows, transactions)`` where each transaction is
    a list of ``("ins"|"del", table, row)`` ops.  Deletes only target
    rows live at that point in the stream (initial contents plus
    not-yet-deleted inserts), so every transaction commits — the
    property suites replay the stream through commit/refresh/WAL paths
    without tripping existence checks.
    """
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = random.Random(seed)
    initial = spj_database_rows(rng)
    live: dict[str, list[tuple[int, ...]]] = {
        name: list(rows) for name, rows in initial.items()
    }
    transactions: list[list[tuple[str, str, tuple[int, ...]]]] = []
    for _ in range(draw(st.integers(min_value=1, max_value=max_txns))):
        ops: list[tuple[str, str, tuple[int, ...]]] = []
        for _ in range(rng.randint(1, max_ops)):
            name = rng.choice(sorted(SPJ_TABLES))
            if live[name] and rng.random() < 0.45:
                row = live[name].pop(rng.randrange(len(live[name])))
                ops.append(("del", name, row))
            else:
                row = tuple(
                    rng.randint(0, value_max) for _ in SPJ_TABLES[name]
                )
                if row in live[name]:
                    # Set semantics: a duplicate insert is a no-op, so
                    # don't record it as live twice (its single delete
                    # would otherwise be drawn twice).
                    ops.append(("ins", name, row))
                else:
                    live[name].append(row)
                    ops.append(("ins", name, row))
        transactions.append(ops)
    return initial, transactions


def spj_database_rows(rng: random.Random, rows_per_table: int = 6):
    """Deterministic initial contents for the SPJ_TABLES schema."""
    contents = {}
    for name in sorted(SPJ_TABLES):
        arity = len(SPJ_TABLES[name])
        contents[name] = sorted(
            {tuple(rng.randint(0, 6) for _ in range(arity)) for _ in range(rows_per_table)}
        )
    return contents
