"""Unit tests for the adaptive strategy estimator (§6 extension)."""

import random

import pytest

from repro.algebra.expressions import BaseRef
from repro.core.consistency import check_view_consistency
from repro.engine.database import Database
from repro.errors import MaintenanceError
from repro.extensions.estimator import (
    AdaptiveMaintainer,
    MaintenanceCostModel,
    StrategyDecision,
)


@pytest.fixture
def db():
    database = Database()
    database.create_relation("r", ["A", "B"], [(i, i % 10) for i in range(300)])
    database.create_relation("s", ["B", "C"], [(i % 10, i) for i in range(300)])
    return database


EXPR = BaseRef("r").join(BaseRef("s")).select("C >= 3").project(["A", "C"])


class TestCostModel:
    def test_smoothing_bounds(self):
        with pytest.raises(MaintenanceError):
            MaintenanceCostModel(smoothing=0)
        with pytest.raises(MaintenanceError):
            MaintenanceCostModel(smoothing=1.5)

    def test_size_features_shapes(self):
        model = MaintenanceCostModel()
        diff1, full1 = model.size_features(10, 1, 1000, 2000)
        diff2, full2 = model.size_features(10, 2, 1000, 2000)
        assert full1 == full2 == 2000
        assert diff2 > diff1  # more changed relations -> more rows

    def test_estimates_scale_with_coefficients(self):
        model = MaintenanceCostModel()
        base_diff, base_full = model.estimate(10, 1, 100, 200)
        model.c_diff *= 2
        model.c_full *= 3
        new_diff, new_full = model.estimate(10, 1, 100, 200)
        assert new_diff == pytest.approx(2 * base_diff)
        assert new_full == pytest.approx(3 * base_full)

    def test_observe_moves_coefficient_toward_sample(self):
        model = MaintenanceCostModel(smoothing=0.5)
        model.observe("differential", size_term=100.0, observed_work=300)
        # sample = 3.0; c_diff moves halfway from 1.0 to 3.0.
        assert model.c_diff == pytest.approx(2.0)
        model.observe("full", size_term=100.0, observed_work=500)
        assert model.c_full == pytest.approx(3.0)

    def test_observe_ignores_zero_size(self):
        model = MaintenanceCostModel()
        model.observe("differential", size_term=0.0, observed_work=999)
        assert model.c_diff == 1.0


class TestAdaptiveMaintainer:
    def test_view_stays_correct_regardless_of_choices(self, db):
        maintainer = AdaptiveMaintainer(db, "v", EXPR, exploration=2)
        rng = random.Random(42)
        for i in range(30):
            with db.transact() as txn:
                for _ in range(rng.randint(1, 3)):
                    txn.insert("r", (1000 + rng.randint(0, 10_000), rng.randint(0, 9)))
            check_view_consistency(maintainer.view, db.instances())

    def test_exploration_alternates(self, db):
        maintainer = AdaptiveMaintainer(db, "v", EXPR, exploration=4)
        for i in range(4):
            with db.transact() as txn:
                txn.insert("r", (1000 + i, i % 10))
        chosen = [d.chosen for d in maintainer.decisions]
        assert chosen == ["differential", "full", "differential", "full"]

    def test_small_deltas_choose_differential_after_calibration(self, db):
        maintainer = AdaptiveMaintainer(db, "v", EXPR, exploration=4)
        for i in range(20):
            with db.transact() as txn:
                txn.insert("r", (1000 + i, i % 10))
        post_exploration = maintainer.decisions[4:]
        assert post_exploration, "expected decisions after exploration"
        counts = {"differential": 0, "full": 0}
        for decision in post_exploration:
            counts[decision.chosen] += 1
        # Single-tuple deltas against a 300-tuple base: differential
        # must dominate once the model is calibrated.
        assert counts["differential"] > counts["full"]

    def test_decisions_record_estimates(self, db):
        maintainer = AdaptiveMaintainer(db, "v", EXPR, exploration=1)
        with db.transact() as txn:
            txn.insert("r", (5000, 3))
        (decision,) = maintainer.decisions
        assert isinstance(decision, StrategyDecision)
        assert decision.estimated_differential > 0
        assert decision.estimated_full > 0
        assert decision.observed_work > 0

    def test_untouched_commits_make_no_decision(self, db):
        db.create_relation("other", ["X"], [(1,)])
        maintainer = AdaptiveMaintainer(db, "v", EXPR)
        with db.transact() as txn:
            txn.insert("other", (2,))
        assert maintainer.decisions == []

    def test_irrelevant_updates_make_no_decision(self, db):
        expr = BaseRef("r").select("A < 0")
        maintainer = AdaptiveMaintainer(db, "neg", expr)
        with db.transact() as txn:
            txn.insert("r", (5000, 3))  # A = 5000 can never satisfy A < 0
        assert maintainer.decisions == []

    def test_strategy_counts(self, db):
        maintainer = AdaptiveMaintainer(db, "v", EXPR, exploration=2)
        for i in range(2):
            with db.transact() as txn:
                txn.insert("r", (1000 + i, i % 10))
        assert maintainer.strategy_counts() == {"differential": 1, "full": 1}

    def test_detach(self, db):
        maintainer = AdaptiveMaintainer(db, "v", EXPR)
        maintainer.detach()
        with db.transact() as txn:
            txn.insert("r", (9999, 1))
        assert maintainer.decisions == []

    def test_full_choice_keeps_correctness(self, db):
        """Force 'full' decisions by biasing the model and verify the
        view still tracks the database."""
        model = MaintenanceCostModel()
        model.c_diff = 1e9  # make differential look terrible
        maintainer = AdaptiveMaintainer(
            db, "v", EXPR, exploration=0, model=model
        )
        for i in range(5):
            with db.transact() as txn:
                txn.insert("r", (2000 + i, i % 10))
        assert all(d.chosen == "full" for d in maintainer.decisions)
        check_view_consistency(maintainer.view, db.instances())
