"""Unit tests for flattening SPJ expressions into paper normal form."""

import pytest

from repro.algebra.conditions import Atom
from repro.algebra.expressions import BaseRef, to_normal_form
from repro.algebra.schema import RelationSchema
from repro.errors import ExpressionError


@pytest.fixture
def catalog():
    return {
        "r": RelationSchema(["A", "B"]),
        "s": RelationSchema(["B", "C"]),
        "t": RelationSchema(["C", "D"]),
        "u": RelationSchema(["E", "F"]),
    }


class TestBasicFlattening:
    def test_bare_base_ref(self, catalog):
        nf = to_normal_form(BaseRef("r"), catalog)
        assert nf.relation_names == ("r",)
        assert nf.condition.is_true()
        assert nf.projection == (("A", "A"), ("B", "B"))
        assert nf.output_schema().names == ("A", "B")

    def test_select_collects_condition(self, catalog):
        nf = to_normal_form(BaseRef("r").select("A < 5"), catalog)
        assert str(nf.condition) == "A < 5"

    def test_stacked_selects_conjoin(self, catalog):
        nf = to_normal_form(
            BaseRef("r").select("A < 5").select("B > 2"), catalog
        )
        (d,) = nf.condition.disjuncts
        assert set(map(str, d.atoms)) == {"A < 5", "B > 2"}

    def test_project_restricts_output(self, catalog):
        nf = to_normal_form(BaseRef("r").project(["B"]), catalog)
        assert nf.projection == (("B", "B"),)

    def test_projection_then_select_on_kept_attr(self, catalog):
        nf = to_normal_form(
            BaseRef("r").project(["B"]).select("B > 1"), catalog
        )
        assert str(nf.condition) == "B > 1"

    def test_select_on_projected_away_attr_rejected(self, catalog):
        with pytest.raises(ExpressionError):
            to_normal_form(BaseRef("r").project(["B"]).select("A > 1"), catalog)


class TestJoins:
    def test_natural_join_adds_equality(self, catalog):
        nf = to_normal_form(BaseRef("r").join(BaseRef("s")), catalog)
        assert nf.relation_names == ("r", "s")
        (d,) = nf.condition.disjuncts
        # One equality linking the two B copies.
        eqs = [a for a in d.atoms if a.op == "="]
        assert len(eqs) == 1
        # Qualified names: the second B occurrence was renamed.
        assert nf.qualified_schema.names == ("A", "B", "B_2", "C")

    def test_join_output_uses_left_copy(self, catalog):
        nf = to_normal_form(BaseRef("r").join(BaseRef("s")), catalog)
        assert dict(nf.projection)["B"] == "B"

    def test_chain_join(self, catalog):
        expr = BaseRef("r").join(BaseRef("s")).join(BaseRef("t"))
        nf = to_normal_form(expr, catalog)
        assert nf.relation_names == ("r", "s", "t")
        (d,) = nf.condition.disjuncts
        assert sum(1 for a in d.atoms if a.op == "=") == 2

    def test_product_requires_disjoint_visible(self, catalog):
        with pytest.raises(ExpressionError):
            to_normal_form(BaseRef("r").product(BaseRef("s")), catalog)

    def test_product_of_disjoint(self, catalog):
        nf = to_normal_form(BaseRef("r").product(BaseRef("u")), catalog)
        assert nf.condition.is_true()
        assert nf.output_schema().names == ("A", "B", "E", "F")

    def test_self_join_gets_two_occurrences(self, catalog):
        expr = BaseRef("r").join(BaseRef("r").rename({"A": "A2", "B": "B2"}))
        nf = to_normal_form(expr, catalog)
        assert nf.relation_names == ("r", "r")
        assert len(nf.occurrences_of("r")) == 2
        # Qualified namespace keeps the two occurrences distinct.
        assert len(set(nf.qualified_schema.names)) == 4

    def test_occurrences_of_absent_relation(self, catalog):
        nf = to_normal_form(BaseRef("r"), catalog)
        assert nf.occurrences_of("s") == ()


class TestConditionRequalification:
    def test_select_above_join_binds_to_left_copy(self, catalog):
        expr = BaseRef("r").join(BaseRef("s")).select("B = 3")
        nf = to_normal_form(expr, catalog)
        (d,) = nf.condition.disjuncts
        assert Atom("B", "=", 3) in d.atoms

    def test_select_after_rename_uses_new_names(self, catalog):
        expr = BaseRef("r").rename({"A": "X"}).select("X < 5")
        nf = to_normal_form(expr, catalog)
        # X maps back to the underlying qualified A.
        (d,) = nf.condition.disjuncts
        assert str(d.atoms[0]) == "A < 5"

    def test_disjunctive_condition_flattens(self, catalog):
        expr = BaseRef("r").join(BaseRef("s")).select("A < 1 or C > 9")
        nf = to_normal_form(expr, catalog)
        # DNF: the join equality distributes into both disjuncts.
        assert len(nf.condition.disjuncts) == 2
        for d in nf.condition.disjuncts:
            assert any(a.op == "=" for a in d.atoms)


class TestNormalFormIntegrity:
    def test_condition_variables_subset_of_qualified(self, catalog):
        expr = (
            BaseRef("r").join(BaseRef("s")).select("A < 5 and C > 1").project(["A"])
        )
        nf = to_normal_form(expr, catalog)
        assert nf.condition_variables() <= nf.qualified_schema.nameset

    def test_output_schema_matches_expression_schema(self, catalog):
        expr = BaseRef("r").join(BaseRef("s")).project(["C", "A"])
        nf = to_normal_form(expr, catalog)
        assert nf.output_schema().names == expr.schema(catalog).names

    def test_invalid_expression_rejected_eagerly(self, catalog):
        with pytest.raises(ExpressionError):
            to_normal_form(BaseRef("zzz"), catalog)

    def test_repr_mentions_relations(self, catalog):
        nf = to_normal_form(BaseRef("r").join(BaseRef("s")), catalog)
        assert "r" in repr(nf) and "s" in repr(nf)
