"""Tests for the sharded cluster subsystem.

Layered like ``src/repro/cluster``: unit coverage for key-range
topology and the Theorem 4.1 routing oracle; coordinator-level checks
over synchronous :class:`DirectLink` transports (routing ablation,
constraint vetoes, trivial commits); the ISSUE's three fault paths
under hand-pumped :class:`SimShardLink` transports —

* a shard crash mid-2PC never exposes a partial commit, and the
  transaction still completes after the rebuild;
* a network partition aborts the prepare phase with the typed
  ``shard_unavailable`` error, a clean retry succeeds, and the aborted
  transaction leaves no trace on any shard;
* the merged changefeed emits strictly in ``cluster_seq`` order even
  when shard acks complete out of order —

plus the wire-protocol front-end over a :class:`LocalSession`, episode
determinism, and the randomized simulation batch.  The batch smoke
(``REPRO_CLUSTER_SIM_SMOKE=1``, CI's cluster job) additionally asserts
the acceptance criteria: zero divergences under crash + partition +
reorder faults with ``cluster_deltas_skipped > 0``.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import env_flag
from repro.algebra.expressions import BaseRef, to_normal_form
from repro.algebra.schema import RelationSchema
from repro.cluster import (
    HOME_SHARD,
    ClusterServer,
    ClusterTopology,
    PartitionSpec,
    build_cluster,
    build_routing_table,
    even_boundaries,
    validate_shardable,
)
from repro.cluster.coordinator import TIMEOUT_TICKS
from repro.cluster.links import SimShardLink
from repro.cluster.sim import (
    ClusterSimConfig,
    cluster_workload,
    run_cluster_episode,
    run_cluster_simulation,
)
from repro.core.maintainer import ViewMaintainer
from repro.engine.database import Database
from repro.errors import ClusterError, UnknownRelationError
from repro.server import protocol
from repro.simulation.clock import SimClock

CLUSTER_SMOKE = env_flag("REPRO_CLUSTER_SIM_SMOKE")


# ----------------------------------------------------------------------
# Shared workload helpers
# ----------------------------------------------------------------------
def make_cluster(shards=3, *, routed=True, link_factory=None):
    topology, tables, rows, constraints, _, views = cluster_workload(shards)
    return build_cluster(
        topology,
        tables,
        rows,
        constraints,
        views,
        routed=routed,
        link_factory=link_factory,
    )


def single_node_truth(coordinator):
    """Replay the coordinator's committed log on one node."""
    _, tables, rows, constraints, _, views = cluster_workload(
        coordinator.topology.shards
    )
    database = Database()
    for name in sorted(tables):
        database.create_relation(name, list(tables[name]), rows[name])
    for name in sorted(constraints):
        database.declare_constraint(name, constraints[name])
    maintainer = ViewMaintainer(database)
    for name, expression in views:
        maintainer.define_view(name, expression)
    for entry in coordinator.committed_log:
        txn = database.begin(txn_id=entry["txn"])
        for name in sorted(entry["deletes"]):
            txn.delete_many(name, (tuple(r) for r in entry["deletes"][name]))
        for name in sorted(entry["inserts"]):
            txn.insert_many(name, (tuple(r) for r in entry["inserts"][name]))
        txn.commit()
    maintainer.quiesce()
    return database, maintainer


def assert_matches_truth(coordinator):
    database, maintainer = single_node_truth(coordinator)
    for name in coordinator.views:
        merged, _, _ = coordinator.merged_counts(name)
        assert merged == maintainer.view(name).contents.counts(), name
    merged_r, _, _ = coordinator.merged_counts("r")
    assert merged_r == database.relation("r").counts()
    home = coordinator.nodes()[HOME_SHARD]
    for name in ("s", "t"):
        assert (
            home.database.relation(name).counts()
            == database.relation(name).counts()
        ), name


class SimCluster:
    """A cluster on hand-pumped fault-free SimShardLinks.

    ``delay_max=0`` makes every queued message due immediately, so one
    :meth:`pump` of one link runs exactly that shard's next protocol
    round — the per-shard interleaving control the fault tests need.
    """

    def __init__(self, shards=3):
        self.clock = SimClock()
        rng = random.Random(0)

        def factory(node, shard_id):
            return SimShardLink(node, self.clock, rng, delay_max=0)

        self.coordinator = make_cluster(shards, link_factory=factory)
        self.links = list(self.coordinator.links)

    def pump(self, shard):
        return self.links[shard].pump()

    def tick(self):
        self.clock.advance(1)
        for link in self.links:
            link.pump()
        self.coordinator.tick()

    def settle(self, budget=200):
        for _ in range(budget):
            if self.coordinator.pending_count() == 0 and all(
                link.idle() for link in self.links
            ):
                return
            self.tick()
        raise AssertionError("cluster failed to settle")


# ----------------------------------------------------------------------
# Topology
# ----------------------------------------------------------------------
class TestTopology:
    def test_even_boundaries_split_the_range(self):
        assert even_boundaries(1, 0, 6) == ()
        assert even_boundaries(3, 0, 6) == (1, 3)
        assert even_boundaries(7, 0, 6) == (0, 1, 2, 3, 4, 5)
        with pytest.raises(ClusterError):
            even_boundaries(8, 0, 6)
        with pytest.raises(ClusterError):
            even_boundaries(0, 0, 6)

    def test_shard_of_covers_every_value(self):
        spec = PartitionSpec("r", "A", (1, 3))
        owners = [spec.shard_of(v) for v in range(-2, 8)]
        assert owners == [0, 0, 0, 0, 1, 1, 2, 2, 2, 2]
        assert spec.shards == 3

    def test_range_condition_matches_shard_of(self):
        spec = PartitionSpec("r", "A", (1, 3))
        for shard in range(spec.shards):
            condition = spec.range_condition(shard)
            for value in range(-1, 7):
                holds = condition.evaluate({"A": value})
                assert holds == (spec.shard_of(value) == shard), (
                    shard,
                    value,
                )

    def test_shard_of_row_rejects_non_integer_keys(self):
        topology = ClusterTopology(3, [PartitionSpec("r", "A", (1, 3))])
        with pytest.raises(ClusterError):
            topology.shard_of_row("r", ("A", "B"), ("x", 0))
        assert topology.shard_of_row("r", ("A", "B"), (5, 0)) == 2

    def test_shard_premises_conjoin_global_and_range(self):
        topology = ClusterTopology(2, [PartitionSpec("r", "A", (3,))])
        premises = topology.shard_premises(0, {"r": "B >= 1", "s": "C >= 0"})
        assert "r" in premises and "s" in premises
        text = str(premises["r"])
        assert "B" in text and "A" in text


# ----------------------------------------------------------------------
# The routing oracle
# ----------------------------------------------------------------------
class TestRouting:
    def test_workload_routing_table(self):
        topology, tables, _, constraints, _, views = cluster_workload(3)
        catalog = {
            name: RelationSchema(list(attrs))
            for name, attrs in tables.items()
        }
        from repro.algebra.aggregates import Aggregate

        # Routing sees the SPJ core: the coordinator peels Aggregate
        # nodes (v_agg) before normal-forming, and so must we.
        normal_forms = {
            name: to_normal_form(
                expression.child
                if isinstance(expression, Aggregate)
                else expression,
                catalog,
            )
            for name, expression in views
        }
        table = build_routing_table(topology, normal_forms, constraints)
        # v_rs pins A = C and A <= low_cut, so replicated 's' is
        # provably irrelevant off the home shard; 't' joins without a
        # range restriction and must broadcast.
        for shard in (1, 2):
            assert table.should_skip(shard, "s")
            assert not table.should_skip(shard, "t")
        # The home shard keeps delta-complete replicated copies.
        assert not table.should_skip(HOME_SHARD, "s")
        # Partitioned relations route by key, never via the skip table.
        assert not table.should_skip(1, "r")
        assert table.proofs_attempted > 0
        description = table.describe()
        assert any("'s'" in line for line in description)

    def test_validate_shardable(self):
        topology = ClusterTopology(2, [PartitionSpec("r", "A", (3,))])
        catalog = {
            "r": RelationSchema(["A", "B"]),
            "s": RelationSchema(["C", "D"]),
        }
        good = to_normal_form(BaseRef("r").select("A <= 3"), catalog)
        assert validate_shardable("ok", good, topology) == "r"
        replicated_only = to_normal_form(BaseRef("s"), catalog)
        with pytest.raises(ClusterError):
            validate_shardable("bad", replicated_only, topology)
        self_join = to_normal_form(
            BaseRef("r").join(
                BaseRef("r").rename({"A": "A2", "B": "B2"})
            ),
            catalog,
        )
        with pytest.raises(ClusterError):
            validate_shardable("bad", self_join, topology)


# ----------------------------------------------------------------------
# Coordinator over DirectLinks
# ----------------------------------------------------------------------
class TestDirectCluster:
    def test_commits_resolve_synchronously_and_match_truth(self):
        coordinator = make_cluster(3)
        first = coordinator.submit(
            inserts={"r": [[0, 5], [5, 5]], "t": [[5, 5]]}
        )
        second = coordinator.submit(
            deletes={"r": [[1, 2]]}, inserts={"s": [[1, 1]]}
        )
        for txn_id in (first, second):
            outcome = coordinator.outcome(txn_id)
            assert outcome is not None and outcome["status"] == "committed"
        assert coordinator.last_sequence == 2
        assert [e["txn"] for e in coordinator.committed_log] == [
            first,
            second,
        ]
        assert_matches_truth(coordinator)

    def test_applied_counts_match_single_node_figures(self):
        # Partitioned rows split across shards must sum back to the
        # client's totals; replicated rows are applied on every shard
        # but must be reported once, not once per copy.
        coordinator = make_cluster(3)
        txn_id = coordinator.submit(
            inserts={"r": [[0, 1], [3, 1], [6, 1]], "s": [[2, 2]]},
            deletes={"t": [[2, 6]]},
        )
        outcome = coordinator.outcome(txn_id)
        assert outcome["status"] == "committed"
        assert outcome["applied"] == {
            "r": {"inserted": 3, "deleted": 0},
            "s": {"inserted": 1, "deleted": 0},
            "t": {"inserted": 0, "deleted": 1},
        }

    def test_routing_skips_count_and_do_not_change_results(self):
        routed = make_cluster(3, routed=True)
        broadcast = make_cluster(3, routed=False)
        operations = [
            {"inserts": {"s": [[1, 4]], "r": [[2, 2]]}},
            {"inserts": {"t": [[0, 0]]}, "deletes": {"s": [[3, 4]]}},
            {"deletes": {"r": [[4, 1]]}, "inserts": {"s": [[0, 9]]}},
        ]
        for coordinator in (routed, broadcast):
            for op in operations:
                txn_id = coordinator.submit(**op)
                assert coordinator.outcome(txn_id)["status"] == "committed"
        for name in list(routed.views) + ["r", "s", "t"]:
            assert (
                routed.merged_counts(name)[0]
                == broadcast.merged_counts(name)[0]
            ), name
        routed_counters = routed.recorder.counters
        broadcast_counters = broadcast.recorder.counters
        assert routed_counters.get("cluster_deltas_skipped", 0) > 0
        assert broadcast_counters.get("cluster_deltas_skipped", 0) == 0
        assert (
            broadcast_counters["cluster_deltas_sent"]
            > routed_counters["cluster_deltas_sent"]
        )

    def test_constraint_violation_aborts_with_no_effects(self):
        coordinator = make_cluster(3)
        before = {
            name: coordinator.merged_counts(name)[0]
            for name in list(coordinator.views) + ["r", "s", "t"]
        }
        txn_id = coordinator.submit(inserts={"s": [[-1, 0]], "r": [[0, 0]]})
        outcome = coordinator.outcome(txn_id)
        assert outcome["status"] == "aborted"
        assert outcome["code"] == protocol.E_TXN_FAILED
        assert "constraint" in outcome["error"]
        for name, counts in before.items():
            assert coordinator.merged_counts(name)[0] == counts, name
        assert coordinator.committed_log == []
        assert coordinator.pending_count() == 0

    def test_noop_transaction_commits_trivially(self):
        coordinator = make_cluster(2)
        txn_id = coordinator.submit(inserts={}, deletes={"r": []})
        outcome = coordinator.outcome(txn_id)
        assert outcome["status"] == "committed"
        assert outcome["applied"] == {}
        assert coordinator.last_sequence == 1

    def test_unknown_relation_is_rejected_up_front(self):
        coordinator = make_cluster(2)
        with pytest.raises(UnknownRelationError):
            coordinator.submit(inserts={"nope": [[1, 2]]})
        with pytest.raises(ClusterError):
            coordinator.submit(inserts={"r": [["x", 2]]})
        assert coordinator.pending_count() == 0


# ----------------------------------------------------------------------
# Fault paths (the ISSUE's three scenarios)
# ----------------------------------------------------------------------
class TestFaultPaths:
    def test_shard_crash_mid_2pc_shows_no_partial_commit(self):
        cluster = SimCluster(3)
        coordinator = cluster.coordinator
        baseline, _, _ = coordinator.merged_counts("r")
        # Rows 0 and 5 live on shards 0 and 2: a two-participant txn.
        txn_id = coordinator.submit(inserts={"r": [[0, 6], [5, 6]]})
        # Let shard 0 prepare; shard 2's prepare stays queued on the
        # wire, then the crash wipes both the wire and its memory.
        cluster.pump(0)
        assert coordinator.outcome(txn_id) is None
        coordinator.crash_shard(2)
        # Mid-2PC nothing is visible anywhere: prepares stage, they do
        # not apply.
        merged, _, _ = coordinator.merged_counts("r")
        assert merged == baseline
        assert all(n.applied_seq == 0 for n in coordinator.nodes())
        # Retransmission finds the rebuilt shard and the txn completes.
        cluster.settle()
        outcome = coordinator.outcome(txn_id)
        assert outcome is not None and outcome["status"] == "committed"
        assert_matches_truth(coordinator)
        counters = coordinator.recorder.counters
        assert counters.get("cluster_shard_rebuilds") == 1

    def test_crash_after_commit_decision_still_applies_everywhere(self):
        cluster = SimCluster(3)
        coordinator = cluster.coordinator
        txn_id = coordinator.submit(inserts={"r": [[0, 6], [5, 6]]})
        # Both shards prepare and the coordinator decides commit...
        cluster.pump(0)
        cluster.pump(2)
        outcome = coordinator.outcome(txn_id)
        assert outcome is not None and outcome["status"] == "committed"
        # ...then shard 2 dies before its commit message lands.  The
        # decision is durable in the per-shard history, so the rebuilt
        # shard replays it and the acks drain.
        coordinator.crash_shard(2)
        cluster.settle()
        assert coordinator.last_sequence == outcome["cluster_seq"]
        assert_matches_truth(coordinator)

    def test_partition_times_out_typed_and_retry_succeeds(self):
        cluster = SimCluster(3)
        coordinator = cluster.coordinator
        baseline, _, _ = coordinator.merged_counts("r")
        cluster.links[2].partition(True)
        txn_id = coordinator.submit(inserts={"r": [[0, 6], [5, 6]]})
        for _ in range(TIMEOUT_TICKS + 1):
            assert coordinator.outcome(txn_id) is None
            cluster.tick()
        outcome = coordinator.outcome(txn_id)
        assert outcome is not None and outcome["status"] == "aborted"
        assert outcome["code"] == protocol.E_SHARD_UNAVAILABLE
        assert "retry is safe" in outcome["error"]
        # Shard 0 prepared and staged; the abort must erase that too.
        cluster.links[2].partition(False)
        cluster.settle()
        assert coordinator.merged_counts("r")[0] == baseline
        assert coordinator.committed_log == []
        # The retry is a fresh transaction and commits cleanly.
        retry = coordinator.submit(inserts={"r": [[0, 6], [5, 6]]})
        cluster.settle()
        retried = coordinator.outcome(retry)
        assert retried is not None and retried["status"] == "committed"
        assert [e["txn"] for e in coordinator.committed_log] == [retry]
        assert_matches_truth(coordinator)
        counters = coordinator.recorder.counters
        assert counters.get("cluster_txns_aborted") == 1
        assert counters.get("cluster_txns_committed") == 1

    def test_changefeed_merge_holds_order_under_reordered_acks(self):
        cluster = SimCluster(3)
        coordinator = cluster.coordinator
        events = []
        coordinator.emit_hooks.append(lambda seq, merged: events.append(seq))
        # T1 involves only shard 2, T2 only shard 0 — their 2PC rounds
        # proceed independently, so acks can complete out of order.
        first = coordinator.submit(inserts={"r": [[5, 1]]})
        second = coordinator.submit(inserts={"r": [[0, 1]]})
        # One pump of shard 2 runs T1's prepare→prepared round: T1 is
        # decided with cluster_seq 1 and its commit is on the wire.
        cluster.pump(2)
        # Shard 0 then runs T2's full 2PC: prepare, decide (seq 2),
        # commit, ack — T2 completes first.
        cluster.pump(0)
        cluster.pump(0)
        done = coordinator.outcome(second)
        assert done is not None and done["status"] == "committed"
        assert done["cluster_seq"] == 2
        # But nothing is emitted: seq 2 waits for seq 1 in the reorder
        # buffer, so subscribers never observe a gap.
        assert events == []
        assert coordinator.last_sequence == 0
        # T1's ack lands; both events flush in cluster_seq order.
        cluster.pump(2)
        assert events == [1, 2]
        assert coordinator.last_sequence == 2
        assert [e["seq"] for e in coordinator.committed_log] == [1, 2]
        assert [e["txn"] for e in coordinator.committed_log] == [
            first,
            second,
        ]
        feed = coordinator.feeds["v_low"]
        sequences = [seq for seq, _ in feed.since(0)]
        assert sequences == sorted(sequences)


# ----------------------------------------------------------------------
# The wire-protocol front-end
# ----------------------------------------------------------------------
class TestClusterServer:
    @staticmethod
    def open_session(server):
        frames = []

        def transport(frame):
            frames.append(
                protocol.decode_payload(frame[protocol.HEADER_BYTES:])
            )
            return True

        return server.open_local_session(transport), frames

    def test_query_merges_across_shards(self):
        server = ClusterServer(make_cluster(3))
        session, frames = self.open_session(server)
        session.handle({"op": "query", "id": 1, "target": "v_low"})
        response = frames[-1]
        assert response["ok"] is True
        result = response["result"]
        assert result["kind"] == "view"
        assert result["seq"] == 0
        merged = server.coordinator.merged_counts("v_low")[0]
        assert sum(result["counts"]) == sum(merged.values())
        assert len(result["rows"]) == len(merged)

    def test_txn_commit_abort_and_unknown_target(self):
        server = ClusterServer(make_cluster(3))
        session, frames = self.open_session(server)
        session.handle(
            {"op": "txn", "id": 1, "insert": {"r": [[0, 5]], "t": [[5, 0]]}}
        )
        committed = frames[-1]
        assert committed["ok"] is True
        assert committed["result"]["seq"] == 1
        assert committed["result"]["applied"]["r"]["inserted"] == 1
        session.handle({"op": "txn", "id": 2, "insert": {"s": [[-3, 0]]}})
        aborted = frames[-1]
        assert aborted["ok"] is False
        assert aborted["error"]["code"] == protocol.E_TXN_FAILED
        session.handle({"op": "query", "id": 3, "target": "ghost"})
        unknown = frames[-1]
        assert unknown["ok"] is False
        assert unknown["error"]["code"] == protocol.E_UNKNOWN_TARGET

    def test_subscription_streams_merged_events(self):
        server = ClusterServer(make_cluster(3))
        session, frames = self.open_session(server)
        session.handle(
            {"op": "subscribe", "id": 1, "view": "v_low", "from": 0}
        )
        assert frames[-1]["ok"] is True
        session.handle({"op": "txn", "id": 2, "insert": {"r": [[0, 9]]}})
        delta = next(f for f in frames if f.get("event") == "delta")
        assert delta["view"] == "v_low"
        assert delta["seq"] == 1
        assert [0, 9] in delta["delta"]["inserted"]

    def test_stats_exposes_cluster_state(self):
        server = ClusterServer(make_cluster(3))
        session, frames = self.open_session(server)
        session.handle({"op": "txn", "id": 1, "insert": {"s": [[2, 2]]}})
        session.handle({"op": "stats", "id": 2})
        stats = frames[-1]["result"]
        assert stats["cluster"]["shards"] == 3
        assert stats["cluster"]["routed"] is True
        assert stats["seq"] == 1
        assert len(stats["shards"]) == 3
        counters = stats["cluster"]["counters"]
        assert counters.get("cluster_deltas_skipped", 0) > 0


# ----------------------------------------------------------------------
# The randomized sharded simulation
# ----------------------------------------------------------------------
class TestClusterSimulation:
    def test_episode_is_deterministic(self):
        config = ClusterSimConfig(seed=3, episodes=1, events=25)
        first = run_cluster_episode(11, config)
        second = run_cluster_episode(11, config)
        assert first.schedule == second.schedule
        assert first.stats == second.stats
        assert first.divergences == second.divergences

    def test_single_episode_with_faults_passes_oracle(self):
        config = ClusterSimConfig(seed=5, episodes=1, events=40)
        result = run_cluster_episode(5, config)
        assert result.divergences == []
        assert result.stats["txns_submitted"] > 0
        assert result.stats["cluster_deltas_skipped"] > 0

    def test_broadcast_mode_never_skips(self):
        config = ClusterSimConfig(
            seed=5,
            episodes=1,
            events=30,
            routed=False,
            crashes=False,
            partitions=False,
            drop_rate=0.0,
        )
        result = run_cluster_episode(5, config)
        assert result.divergences == []
        assert result.stats["cluster_deltas_skipped"] == 0

    @pytest.mark.skipif(
        not CLUSTER_SMOKE, reason="set REPRO_CLUSTER_SIM_SMOKE=1 to run"
    )
    def test_smoke_batch(self):
        report = run_cluster_simulation(
            ClusterSimConfig(seed=1, episodes=4, events=60)
        )
        assert report.ok, report.format()
        assert report.stats["cluster_deltas_skipped"] > 0
        assert report.stats["txns_committed"] > 0
        text = report.format()
        assert text.endswith("OK")
        assert report.format() == text  # formatting is pure


# ----------------------------------------------------------------------
# Declared keys on the cluster
# ----------------------------------------------------------------------
class TestClusterKeys:
    def make_keyed_cluster(self, shards=2):
        topology, tables, rows, constraints, _, views = cluster_workload(shards)
        seen, deduped = set(), []
        for row in rows["r"]:
            if row[0] not in seen:
                seen.add(row[0])
                deduped.append(row)
        rows = dict(rows)
        rows["r"] = deduped
        return build_cluster(
            topology, tables, rows, constraints, views, keys={"r": [("A",)]}
        )

    def test_partition_misaligned_key_is_rejected(self):
        # A key that omits the partition attribute cannot be enforced
        # shard-locally: rows colliding on it live on different shards.
        topology, tables, rows, constraints, _, views = cluster_workload(2)
        with pytest.raises(ClusterError, match="omits the partition attribute"):
            build_cluster(
                topology, tables, rows, constraints, views, keys={"r": [("B",)]}
            )

    def test_prepare_nacks_a_key_violation(self):
        coordinator = self.make_keyed_cluster()
        before = coordinator.merged_counts("r")[0]
        txn_id = coordinator.submit(inserts={"r": [[0, 3], [0, 4]]})
        outcome = coordinator.outcome(txn_id)
        assert outcome["status"] == "aborted"
        assert "key (A)" in outcome["error"]
        assert coordinator.merged_counts("r")[0] == before
        assert coordinator.committed_log == []

    def test_keyed_replacement_commits(self):
        coordinator = self.make_keyed_cluster()
        merged = coordinator.merged_counts("r")[0]
        existing = sorted(merged)[0]
        txn_id = coordinator.submit(
            deletes={"r": [list(existing)]},
            inserts={"r": [[existing[0], 6]]},
        )
        assert coordinator.outcome(txn_id)["status"] == "committed"
        after = coordinator.merged_counts("r")[0]
        assert (existing[0], 6) in after

    def test_keyed_episode_passes_oracle(self):
        config = ClusterSimConfig(seed=11, episodes=1, events=40, keyed=True)
        result = run_cluster_episode(11, config)
        assert result.divergences == []
        assert result.stats["txns_committed"] > 0

    def test_keyed_base_free_unrestricted_ops_pass_oracle(self):
        # PR 9 restricted base-free schedules to home-shard inserts; the
        # declared key (with its row-determining constraint) lifts that:
        # unrestricted inserts AND deletes, oracle byte-for-byte.
        config = ClusterSimConfig(
            seed=13, episodes=1, events=50, keyed=True, base_free=True
        )
        result = run_cluster_episode(13, config)
        assert result.divergences == []
        assert result.stats["txns_submitted"] > 0
