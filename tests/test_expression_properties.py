"""Property tests over randomly generated SPJ expression trees.

A recursive hypothesis strategy builds arbitrary well-formed SPJ trees
(selects with random paper-class conditions, projections of random
attribute subsets, natural joins, renames) over a fixed two-relation
catalog, then checks the big structural invariants:

* the pipelined normal-form evaluator agrees with the naive tree
  walker on random instances;
* selection pushdown preserves counted semantics;
* differential maintenance of the generated view matches full
  re-evaluation across random transactions.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algebra.conditions import Atom, Condition
from repro.algebra.evaluate import evaluate
from repro.algebra.expressions import (
    BaseRef,
    Expression,
    to_normal_form,
)
from repro.algebra.relation import Relation
from repro.algebra.rewrites import push_selections
from repro.algebra.schema import RelationSchema
from repro.core.consistency import check_view_consistency
from repro.core.maintainer import ViewMaintainer
from repro.engine.database import Database

CATALOG = {
    "r": RelationSchema(["A", "B"]),
    "s": RelationSchema(["B", "C"]),
}

values = st.integers(min_value=0, max_value=4)
row_lists = st.lists(st.tuples(values, values), max_size=8, unique=True)


@st.composite
def _conditions_over(draw, names: tuple[str, ...]) -> Condition:
    """A small condition whose variables come from ``names``."""
    atom_count = draw(st.integers(min_value=1, max_value=3))
    atoms = []
    for _ in range(atom_count):
        op = draw(st.sampled_from(["=", "<", ">", "<=", ">="]))
        left = draw(st.sampled_from(names))
        if draw(st.booleans()):
            atoms.append(
                Atom(left, op, draw(st.sampled_from(names)),
                     draw(st.integers(min_value=-2, max_value=2)))
            )
        else:
            atoms.append(Atom(left, op, draw(st.integers(min_value=0, max_value=5))))
    if draw(st.booleans()) or atom_count == 1:
        return Condition.of_atoms(atoms)
    # Split the atoms into two disjuncts for a DNF condition.
    return Condition.of_atoms(atoms[:1]).disjoin(Condition.of_atoms(atoms[1:]))


@st.composite
def spj_trees(draw, depth: int = 3) -> Expression:
    """A random well-formed SPJ expression over the fixed catalog."""
    if depth == 0:
        return BaseRef(draw(st.sampled_from(["r", "s"])))
    kind = draw(
        st.sampled_from(["base", "select", "project", "join", "rename"])
    )
    if kind == "base":
        return BaseRef(draw(st.sampled_from(["r", "s"])))
    child = draw(spj_trees(depth=depth - 1))
    schema = child.schema(CATALOG)
    if kind == "select":
        condition = draw(_conditions_over(schema.names))
        return child.select(condition)
    if kind == "project":
        keep = draw(
            st.lists(
                st.sampled_from(schema.names),
                min_size=1,
                max_size=len(schema.names),
                unique=True,
            )
        )
        return child.project(keep)
    if kind == "rename":
        target = draw(st.sampled_from(schema.names))
        fresh = draw(st.sampled_from(["X", "Y", "Z"]))
        if fresh in schema.names:
            return child
        return child.rename({target: fresh})
    # join: pick a random other subtree; natural join is always valid.
    other = draw(spj_trees(depth=depth - 1))
    return child.join(other)


def _instances(r_rows, s_rows):
    return {
        "r": Relation.from_rows(CATALOG["r"], r_rows),
        "s": Relation.from_rows(CATALOG["s"], s_rows),
    }


class TestEvaluatorAgreement:
    @settings(max_examples=150, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(spj_trees(), row_lists, row_lists)
    def test_pipelined_equals_naive(self, expr, r_rows, s_rows):
        from repro.core.planner import evaluate_normal_form

        instances = _instances(r_rows, s_rows)
        nf = to_normal_form(expr, CATALOG)
        assert evaluate_normal_form(nf, instances) == evaluate(expr, instances)

    @settings(max_examples=150, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(spj_trees(), row_lists, row_lists)
    def test_pushdown_preserves_semantics(self, expr, r_rows, s_rows):
        instances = _instances(r_rows, s_rows)
        pushed = push_selections(expr, CATALOG)
        assert evaluate(pushed, instances) == evaluate(expr, instances)

    @settings(max_examples=100, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(spj_trees(), row_lists, row_lists)
    def test_output_schema_is_stable(self, expr, r_rows, s_rows):
        instances = _instances(r_rows, s_rows)
        out = evaluate(expr, instances)
        assert out.schema.names == expr.schema(CATALOG).names


class TestMaintenanceOnRandomTrees:
    transactions = st.lists(
        st.lists(
            st.tuples(
                st.sampled_from(["r", "s"]),
                st.sampled_from(["insert", "delete"]),
                st.tuples(values, values),
            ),
            min_size=1,
            max_size=5,
        ),
        min_size=1,
        max_size=4,
    )

    @settings(max_examples=80, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(spj_trees(), row_lists, row_lists, transactions)
    def test_differential_matches_recomputation(
        self, expr, r_rows, s_rows, txns
    ):
        db = Database()
        db.create_relation("r", CATALOG["r"], r_rows)
        db.create_relation("s", CATALOG["s"], s_rows)
        maintainer = ViewMaintainer(db)
        view = maintainer.define_view("v", expr)
        for batch in txns:
            with db.transact() as txn:
                for name, op, row in batch:
                    getattr(txn, op)(name, row)
        check_view_consistency(view, db.instances())

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(spj_trees(depth=2), row_lists, row_lists, transactions)
    def test_stacked_view_over_random_tree(self, expr, r_rows, s_rows, txns):
        """A random SPJ tree as the upstream view, with a generic
        stacked view over it, must track the database exactly."""
        from repro.algebra.expressions import BaseRef

        db = Database()
        db.create_relation("r", CATALOG["r"], r_rows)
        db.create_relation("s", CATALOG["s"], s_rows)
        maintainer = ViewMaintainer(db)
        upstream = maintainer.define_view("up", expr)
        first_attr = upstream.contents.schema.names[0]
        stacked = maintainer.define_view(
            "down", BaseRef("up").project([first_attr])
        )
        for batch in txns:
            with db.transact() as txn:
                for name, op, row in batch:
                    getattr(txn, op)(name, row)
        combined = maintainer._combined_instances()
        check_view_consistency(upstream, combined)
        check_view_consistency(stacked, combined)
