"""Unit tests for view definitions and materializations."""

import pytest

from repro.algebra.expressions import BaseRef
from repro.algebra.relation import Delta
from repro.algebra.schema import RelationSchema
from repro.core.views import MaterializedView, ViewDefinition
from repro.errors import ExpressionError, ViewDefinitionError


@pytest.fixture
def catalog():
    return {
        "r": RelationSchema(["A", "B"]),
        "s": RelationSchema(["B", "C"]),
    }


class TestViewDefinition:
    def test_builds_normal_form(self, catalog):
        d = ViewDefinition("v", BaseRef("r").join(BaseRef("s")), catalog)
        assert d.relation_names == {"r", "s"}
        assert d.output_schema().names == ("A", "B", "C")

    def test_invalid_name(self, catalog):
        with pytest.raises(ViewDefinitionError):
            ViewDefinition("", BaseRef("r"), catalog)

    def test_invalid_expression(self, catalog):
        with pytest.raises(ExpressionError):
            ViewDefinition("v", BaseRef("zzz"), catalog)

    def test_self_join_relation_names_deduped(self, catalog):
        expr = BaseRef("r").join(BaseRef("r").rename({"A": "A2", "B": "B2"}))
        d = ViewDefinition("v", expr, catalog)
        assert d.relation_names == {"r"}
        assert len(d.normal_form.occurrences) == 2


class TestMaterializedView:
    def _view(self, catalog):
        from repro.algebra.relation import Relation

        instances = {
            "r": Relation.from_rows(catalog["r"], [(1, 10), (2, 20)]),
            "s": Relation.from_rows(catalog["s"], [(10, 5)]),
        }
        definition = ViewDefinition("v", BaseRef("r").join(BaseRef("s")), catalog)
        return MaterializedView.materialize(definition, instances), instances

    def test_materialize(self, catalog):
        view, _ = self._view(catalog)
        assert view.contents.counts() == {(1, 10, 5): 1}
        assert len(view) == 1
        assert view.updates_applied == 0

    def test_materialized_contents_are_private(self, catalog):
        view, instances = self._view(catalog)
        instances["r"].add((9, 9))
        assert (9, 9, 9) not in view.contents

    def test_apply_delta(self, catalog):
        view, _ = self._view(catalog)
        delta = Delta(
            view.definition.output_schema(),
            inserted=[(2, 20, 7)],
            deleted=[(1, 10, 5)],
        )
        view.apply_delta(delta)
        assert view.contents.counts() == {(2, 20, 7): 1}
        assert view.updates_applied == 1

    def test_empty_delta_does_not_count_as_update(self, catalog):
        view, _ = self._view(catalog)
        view.apply_delta(Delta(view.definition.output_schema()))
        assert view.updates_applied == 0

    def test_repr(self, catalog):
        view, _ = self._view(catalog)
        assert "v" in repr(view)
