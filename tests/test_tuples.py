"""Unit tests for Row views and row coercion."""

import pytest

from repro.algebra.schema import RelationSchema
from repro.algebra.tuples import Row, coerce_row
from repro.errors import SchemaError


@pytest.fixture
def schema():
    return RelationSchema(["A", "B", "C"])


class TestRow:
    def test_mapping_access(self, schema):
        row = Row(schema, (1, 2, 3))
        assert row["A"] == 1
        assert row["C"] == 3
        assert dict(row) == {"A": 1, "B": 2, "C": 3}

    def test_len_and_iter(self, schema):
        row = Row(schema, (1, 2, 3))
        assert len(row) == 3
        assert list(row) == ["A", "B", "C"]

    def test_arity_mismatch_rejected(self, schema):
        with pytest.raises(SchemaError):
            Row(schema, (1, 2))

    def test_raw_access(self, schema):
        assert Row(schema, (1, 2, 3)).raw("B") == 2

    def test_project(self, schema):
        sub = Row(schema, (1, 2, 3)).project(["C", "A"])
        assert sub.values == (3, 1)
        assert sub.schema.names == ("C", "A")

    def test_equality_with_row_and_mapping(self, schema):
        row = Row(schema, (1, 2, 3))
        assert row == Row(schema, (1, 2, 3))
        assert row == {"A": 1, "B": 2, "C": 3}
        assert row != Row(schema, (9, 2, 3))

    def test_hashable(self, schema):
        assert len({Row(schema, (1, 2, 3)), Row(schema, (1, 2, 3))}) == 1

    def test_decodes_through_domain(self):
        from repro.algebra.domains import StringDomain
        from repro.algebra.schema import Attribute

        s = RelationSchema([Attribute("x", StringDomain(["lo", "hi"]))])
        assert Row(s, (1,))["x"] == "hi"


class TestCoerceRow:
    def test_from_sequence(self, schema):
        assert coerce_row(schema, (1, 2, 3)) == (1, 2, 3)
        assert coerce_row(schema, [1, 2, 3]) == (1, 2, 3)

    def test_from_mapping(self, schema):
        assert coerce_row(schema, {"B": 2, "A": 1, "C": 3}) == (1, 2, 3)

    def test_from_row(self, schema):
        row = Row(schema, (1, 2, 3))
        assert coerce_row(schema, row) == (1, 2, 3)

    def test_row_schema_mismatch(self, schema):
        other = RelationSchema(["X", "Y", "Z"])
        with pytest.raises(SchemaError):
            coerce_row(schema, Row(other, (1, 2, 3)))

    def test_mapping_missing_attribute(self, schema):
        with pytest.raises(SchemaError):
            coerce_row(schema, {"A": 1, "B": 2})

    def test_mapping_extra_attribute(self, schema):
        with pytest.raises(SchemaError):
            coerce_row(schema, {"A": 1, "B": 2, "C": 3, "D": 4})

    def test_string_rejected(self, schema):
        with pytest.raises(SchemaError):
            coerce_row(schema, "abc")

    def test_bad_arity_rejected(self, schema):
        with pytest.raises(SchemaError):
            coerce_row(schema, (1,))
