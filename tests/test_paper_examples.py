"""Every worked example in the paper, reproduced verbatim.

Each test class corresponds to one example; assertions follow the
paper's stated outcomes line by line.
"""

import pytest

from repro.algebra.evaluate import evaluate
from repro.algebra.expressions import BaseRef, to_normal_form
from repro.algebra.relation import Delta, Relation
from repro.algebra.schema import RelationSchema
from repro.core.differential import compute_view_delta
from repro.core.irrelevance import is_irrelevant_update
from repro.core.maintainer import ViewMaintainer
from repro.core.truthtable import enumerate_delta_rows, render_row
from repro.engine.database import Database
from repro.workloads.scenarios import example_4_1


class TestExample41:
    """Section 4, Example 4.1: relevant and irrelevant insertions."""

    @pytest.fixture
    def scenario(self):
        return example_4_1()

    @pytest.fixture
    def nf(self, scenario):
        return to_normal_form(
            scenario.expression, scenario.database.schema_catalog()
        )

    def test_printed_view_state(self, scenario):
        # The paper prints u = {(5, 20)}: (5,10) joins (10,20) and
        # satisfies A<10 ∧ C>5 ∧ B=C; (1,2) fails C>5 through its only
        # B=C partner (2,10), and (12,15) fails A<10.
        view = evaluate(scenario.expression, scenario.database.instances())
        assert view.counts() == {(5, 20): 1}

    def test_insert_9_10_is_relevant(self, scenario, nf):
        schema = scenario.database.relation("r").schema
        assert not is_irrelevant_update(nf, "r", (9, 10), schema)

    def test_insert_11_10_is_irrelevant(self, scenario, nf):
        schema = scenario.database.relation("r").schema
        assert is_irrelevant_update(nf, "r", (11, 10), schema)

    def test_relevance_is_state_independent(self, scenario, nf):
        """The paper stresses the verdict holds for *every* database
        state: emptying the database must not change it."""
        schema = scenario.database.relation("r").schema
        with scenario.database.transact() as txn:
            for row in list(scenario.database.relation("s").value_tuples()):
                txn.delete("s", row)
        assert is_irrelevant_update(nf, "r", (11, 10), schema)
        assert not is_irrelevant_update(nf, "r", (9, 10), schema)

    def test_relevant_tuple_may_still_not_change_view(self, scenario):
        """The paper: "there may be some state of s that contains no
        matching tuple (10, δ), in which case the tuple (9,10) will
        have no effect on the view" — relevance is about possibility."""
        db = scenario.database
        with db.transact() as txn:
            txn.delete("s", (10, 20))  # remove the only C=10 tuple
        maintainer = ViewMaintainer(db, auto_verify=True)
        view = maintainer.define_view("u", scenario.expression)
        before = view.contents.copy()
        with db.transact() as txn:
            txn.insert("r", (9, 10))
        assert view.contents == before  # relevant, yet no effect here
        assert maintainer.stats("u").tuples_irrelevant == 0


class TestExample51:
    """Section 5.2, Example 5.1: the projection deletion anomaly."""

    @pytest.fixture
    def db(self):
        database = Database()
        database.create_relation(
            "r", ["A", "B"], [(1, 10), (2, 10), (3, 20)]
        )
        return database

    def test_easy_delete(self, db):
        m = ViewMaintainer(db, auto_verify=True)
        view = m.define_view("v", BaseRef("r").project(["B"]))
        with db.transact() as txn:
            txn.delete("r", (3, 20))
        assert sorted(view.contents.value_tuples()) == [(10,)]

    def test_anomalous_delete_handled_by_counter(self, db):
        m = ViewMaintainer(db, auto_verify=True)
        view = m.define_view("v", BaseRef("r").project(["B"]))
        with db.transact() as txn:
            txn.delete("r", (1, 10))
        # (10,) must survive — (2, 10) still supports it.
        assert view.contents.count_of((10,)) == 1
        assert view.contents.count_of((20,)) == 1


class TestExample52:
    """Section 5.3, Example 5.2: insert-only join maintenance
    v' = v ∪ (i_r ⋈ s)."""

    def test_differential_equals_full(self):
        db = Database()
        db.create_relation("r", ["A", "B"], [(1, 10), (2, 20)])
        db.create_relation("s", ["B", "C"], [(10, 5), (20, 6), (30, 7)])
        m = ViewMaintainer(db, auto_verify=True)
        view = m.define_view("v", BaseRef("r").join(BaseRef("s")))
        with db.transact() as txn:
            txn.insert("r", (3, 30))
            txn.insert("r", (4, 10))
        assert view.contents.counts() == {
            (1, 10, 5): 1,
            (2, 20, 6): 1,
            (3, 30, 7): 1,
            (4, 10, 5): 1,
        }


class TestSection53TruthTable:
    """The p = 3 truth table and its row selection."""

    def test_paper_row_selection(self):
        """Paper: "suppose that a transaction contains insertions to
        relations r1 and r2 only ... we need to compute only the joins
        represented by rows 3, 5, and 7"."""
        rows = list(enumerate_delta_rows(3, [0, 1]))
        rendered = [render_row(row, ["r1", "r2", "r3"]) for row in rows]
        assert rendered == [
            "r1 ⋈ i_r2 ⋈ r3",
            "i_r1 ⋈ r2 ⋈ r3",
            "i_r1 ⋈ i_r2 ⋈ r3",
        ]

    def test_union_of_rows_equals_full_delta(self):
        """v' = v ∪ (r1 ⋈ i2 ⋈ r3) ∪ (i1 ⋈ r2 ⋈ r3) ∪ (i1 ⋈ i2 ⋈ r3)."""
        db = Database()
        db.create_relation("r1", ["A", "B"], [(1, 1), (2, 2)])
        db.create_relation("r2", ["B", "C"], [(1, 1), (2, 2)])
        db.create_relation("r3", ["C", "D"], [(1, 1), (2, 2)])
        expr = BaseRef("r1").join(BaseRef("r2")).join(BaseRef("r3"))
        m = ViewMaintainer(db, auto_verify=True)
        view = m.define_view("v", expr)
        with db.transact() as txn:
            txn.insert("r1", (9, 2))
            txn.insert("r2", (2, 1))  # i1 ⋈ i2 combos matter
        # auto_verify already compared against recomputation; check the
        # specific new tuples too.
        counts = view.contents.counts()
        assert counts[(9, 2, 2, 2)] == 1  # i1 ⋈ r2 ⋈ r3
        assert counts[(9, 2, 1, 1)] == 1  # i1 ⋈ i2 ⋈ r3
        assert counts[(2, 2, 1, 1)] == 1  # r1 ⋈ i2 ⋈ r3


class TestExample53:
    """Section 5.3, Example 5.3: delete-only join maintenance
    v' = v − (d_r ⋈ s)."""

    def test_differential_delete(self):
        db = Database()
        db.create_relation("r", ["A", "B"], [(1, 10), (2, 20)])
        db.create_relation("s", ["B", "C"], [(10, 5), (20, 6)])
        m = ViewMaintainer(db, auto_verify=True)
        view = m.define_view("v", BaseRef("r").join(BaseRef("s")))
        with db.transact() as txn:
            txn.delete("r", (1, 10))
        assert view.contents.counts() == {(2, 20, 6): 1}


class TestExample54:
    """Section 5.3, Example 5.4: the six tagged cases of r ⋈ s under a
    transaction updating both relations."""

    def _setup(self):
        catalog = {
            "r": RelationSchema(["A", "B"]),
            "s": RelationSchema(["B", "C"]),
        }
        nf = to_normal_form(BaseRef("r").join(BaseRef("s")), catalog)
        return catalog, nf

    def test_case_1_insert_join_insert(self):
        catalog, nf = self._setup()
        instances = {
            "r": Relation.from_rows(catalog["r"], [(1, 10)]),
            "s": Relation.from_rows(catalog["s"], [(10, 5)]),
        }
        deltas = {
            "r": Delta(catalog["r"], inserted=[(1, 10)]),
            "s": Delta(catalog["s"], inserted=[(10, 5)]),
        }
        out = compute_view_delta(nf, instances, deltas)
        assert out.inserted == {(1, 10, 5): 1}  # "has to be inserted"

    def test_case_2_insert_join_delete_ignored(self):
        catalog, nf = self._setup()
        instances = {
            "r": Relation.from_rows(catalog["r"], [(1, 10)]),
            "s": Relation(catalog["s"]),
        }
        deltas = {
            "r": Delta(catalog["r"], inserted=[(1, 10)]),
            "s": Delta(catalog["s"], deleted=[(10, 5)]),
        }
        out = compute_view_delta(nf, instances, deltas)
        assert out.is_empty()  # "has no effect in the view"

    def test_case_3_insert_join_old(self):
        catalog, nf = self._setup()
        instances = {
            "r": Relation.from_rows(catalog["r"], [(1, 10)]),
            "s": Relation.from_rows(catalog["s"], [(10, 5)]),
        }
        deltas = {"r": Delta(catalog["r"], inserted=[(1, 10)])}
        out = compute_view_delta(nf, instances, deltas)
        assert out.inserted == {(1, 10, 5): 1}

    def test_case_4_delete_join_delete(self):
        catalog, nf = self._setup()
        instances = {
            "r": Relation(catalog["r"]),
            "s": Relation(catalog["s"]),
        }
        deltas = {
            "r": Delta(catalog["r"], deleted=[(1, 10)]),
            "s": Delta(catalog["s"], deleted=[(10, 5)]),
        }
        out = compute_view_delta(nf, instances, deltas)
        assert out.deleted == {(1, 10, 5): 1}  # "has to be deleted"

    def test_case_5_delete_join_old(self):
        catalog, nf = self._setup()
        instances = {
            "r": Relation(catalog["r"]),
            "s": Relation.from_rows(catalog["s"], [(10, 5)]),
        }
        deltas = {"r": Delta(catalog["r"], deleted=[(1, 10)])}
        out = compute_view_delta(nf, instances, deltas)
        assert out.deleted == {(1, 10, 5): 1}

    def test_case_6_old_join_old_untouched(self):
        catalog, nf = self._setup()
        # A transaction touching r with an unrelated tuple leaves the
        # old ⋈ old combinations alone (they are already in the view).
        instances = {
            "r": Relation.from_rows(catalog["r"], [(1, 10), (9, 99)]),
            "s": Relation.from_rows(catalog["s"], [(10, 5)]),
        }
        deltas = {"r": Delta(catalog["r"], inserted=[(9, 99)])}
        out = compute_view_delta(nf, instances, deltas)
        assert out.is_empty()


class TestExample55:
    """Section 5.4, Example 5.5: SPJ differential update
    v' = v ∪ π_A(σ_{C>10}(i_r ⋈ s))."""

    def test_end_to_end(self):
        db = Database()
        db.create_relation("r", ["A", "B"], [(1, 10)])
        db.create_relation("s", ["B", "C"], [(10, 5), (20, 50)])
        expr = BaseRef("r").join(BaseRef("s")).select("C > 10").project(["A"])
        m = ViewMaintainer(db, auto_verify=True)
        view = m.define_view("v", expr)
        assert view.contents.counts() == {}
        with db.transact() as txn:
            txn.insert("r", (9, 20))
        assert view.contents.counts() == {(9,): 1}
