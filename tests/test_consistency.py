"""Unit tests for the consistency checker."""

import pytest

from repro.algebra.expressions import BaseRef
from repro.algebra.relation import Relation
from repro.algebra.schema import RelationSchema
from repro.core.consistency import (
    check_view_consistency,
    compare_relations,
)
from repro.core.views import MaterializedView, ViewDefinition
from repro.errors import MaintenanceError


@pytest.fixture
def setting():
    catalog = {"r": RelationSchema(["A", "B"])}
    instances = {"r": Relation.from_rows(catalog["r"], [(1, 10), (2, 10)])}
    definition = ViewDefinition("v", BaseRef("r").project(["B"]), catalog)
    view = MaterializedView.materialize(definition, instances)
    return view, instances


class TestCompareRelations:
    def test_identical(self):
        schema = RelationSchema(["A"])
        a = Relation.from_counts(schema, {(1,): 2})
        b = Relation.from_counts(schema, {(1,): 2})
        report = compare_relations("v", a, b)
        assert report.is_consistent()
        assert "consistent" in report.summary()

    def test_missing_and_unexpected(self):
        schema = RelationSchema(["A"])
        maintained = Relation.from_counts(schema, {(1,): 1})
        truth = Relation.from_counts(schema, {(2,): 1})
        report = compare_relations("v", maintained, truth)
        assert report.missing == {(2,): 1}
        assert report.unexpected == {(1,): 1}
        assert not report.is_consistent()

    def test_count_mismatch(self):
        schema = RelationSchema(["A"])
        maintained = Relation.from_counts(schema, {(1,): 1})
        truth = Relation.from_counts(schema, {(1,): 3})
        report = compare_relations("v", maintained, truth)
        assert report.count_mismatches == {(1,): (1, 3)}


class TestCheckViewConsistency:
    def test_fresh_view_is_consistent(self, setting):
        view, instances = setting
        report = check_view_consistency(view, instances)
        assert report.is_consistent()

    def test_corruption_raises(self, setting):
        view, instances = setting
        view.contents.add((42,))
        with pytest.raises(MaintenanceError):
            check_view_consistency(view, instances)

    def test_corruption_reported_without_raise(self, setting):
        view, instances = setting
        view.contents.add((42,))
        report = check_view_consistency(view, instances, raise_on_mismatch=False)
        assert not report.is_consistent()
        assert (42,) in report.unexpected

    def test_count_corruption_detected(self, setting):
        view, instances = setting
        view.contents.add((10,))  # bump the counter from 2 to 3
        report = check_view_consistency(view, instances, raise_on_mismatch=False)
        assert report.count_mismatches == {(10,): (3, 2)}
