"""Unit tests for the maintainer's index recommendations."""

import pytest

from repro.algebra.expressions import BaseRef
from repro.core.maintainer import ViewMaintainer
from repro.engine.database import Database


@pytest.fixture
def db():
    database = Database()
    database.create_relation("r", ["A", "B"], [(1, 2)])
    database.create_relation("s", ["B", "C"], [(2, 3)])
    database.create_relation("t", ["C", "D"], [(3, 4)])
    return database


class TestRecommendations:
    def test_chain_join_recommends_link_attributes(self, db):
        m = ViewMaintainer(db)
        m.define_view(
            "v", BaseRef("r").join(BaseRef("s")).join(BaseRef("t"))
        )
        recs = set(m.recommended_indexes("v"))
        # Each relation is probed through its join attributes when a
        # neighbour changes; when t changes, s joins last and is probed
        # through BOTH links at once — a composite key.
        assert ("r", ("B",)) in recs
        assert ("s", ("B",)) in recs
        assert ("s", ("B", "C")) in recs
        assert ("t", ("C",)) in recs

    def test_select_only_view_recommends_nothing(self, db):
        m = ViewMaintainer(db)
        m.define_view("v", BaseRef("r").select("A < 5"))
        assert m.recommended_indexes("v") == ()

    def test_offset_equality_counts_as_link(self, db):
        m = ViewMaintainer(db)
        m.define_view(
            "v", BaseRef("r").product(BaseRef("t")).select("B = C + 2")
        )
        recs = set(m.recommended_indexes("v"))
        assert ("t", ("C",)) in recs or ("r", ("B",)) in recs

    def test_unknown_view(self, db):
        from repro.errors import UnknownViewError

        m = ViewMaintainer(db)
        with pytest.raises(UnknownViewError):
            m.recommended_indexes("nope")


class TestCreation:
    def test_create_recommended_indexes(self, db):
        m = ViewMaintainer(db)
        m.define_view("v", BaseRef("r").join(BaseRef("s")))
        created = m.create_recommended_indexes("v")
        assert created >= 2
        assert db.indexes.lookup("r", ("B",)) is not None
        assert db.indexes.lookup("s", ("B",)) is not None

    def test_creation_is_idempotent(self, db):
        m = ViewMaintainer(db)
        m.define_view("v", BaseRef("r").join(BaseRef("s")))
        m.create_recommended_indexes("v")
        assert m.create_recommended_indexes("v") == 0

    def test_precreated_indexes_used_and_maintained(self, db):
        m = ViewMaintainer(db)
        view = m.define_view("v", BaseRef("r").join(BaseRef("s")))
        m.create_recommended_indexes("v")
        from repro.instrumentation import CostRecorder, recording

        recorder = CostRecorder()
        with recording(recorder):
            with db.transact() as txn:
                txn.insert("r", (9, 2))
        assert recorder.get("index_probes") > 0
        assert (9, 2, 3) in view.contents
