"""Property suite for aggregate view maintenance via generalized counting.

The contract under test: differentially maintaining an aggregate view
(per-group COUNT/SUM/AVG/MIN/MAX accumulators folded from the Section 5
delta pipeline) produces contents *byte-for-byte equal* — multiplicity
counters included — to a full recompute from the base relations, on
every execution path the engine has:

* the immediate commit path, with the generated kernel and with the
  interpreter fallback (and counter-for-counter parity between them),
* deferred refresh at a quiescent point,
* kill-and-recover (checkpoint + WAL replay through ``recover``),
* followers, both full-replica and base-free.

Streams and view specs are drawn by hypothesis through the simulator's
generators (``tests/strategies.py``), so shrinking works on seeds while
the populations match the simulation harness exactly.  The
deterministic classes at the bottom pin the MIN/MAX delete edge cases
the accumulators were designed around: support-count exhaustion, group
disappearance, re-insert after an empty group, and duplicate rows with
equal aggregate input.
"""

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BaseRef,
    Database,
    DurabilityManager,
    Follower,
    MaintenancePolicy,
    ViewMaintainer,
    recover,
)
from repro.algebra.evaluate import evaluate
from repro.instrumentation import CostRecorder, recording
from repro.simulation.workload import BASE_TABLES
from tests.strategies import aggregate_expressions, update_streams


def build_database(initial):
    database = Database()
    for name in sorted(BASE_TABLES):
        database.create_relation(name, BASE_TABLES[name], initial[name])
    return database


def replay(database, transactions):
    for ops in transactions:
        with database.transact() as txn:
            for op, name, row in ops:
                if op == "ins":
                    txn.insert(name, row)
                else:
                    txn.delete(name, row)


def recompute(expression, database):
    return evaluate(expression, database.instances()).counts()


def assert_matches_recompute(maintainer, name, database):
    view = maintainer.view(name)
    want = recompute(view.definition.expression, database)
    have = view.contents.counts()
    assert have == want, f"{name}: differential {have!r} != recompute {want!r}"
    # The internal support bags must render exactly the visible rows.
    state = view.aggregate_state
    assert state is not None
    assert state.visible_relation().counts() == have


# ----------------------------------------------------------------------
# The tentpole property: differential == recompute, both engines
# ----------------------------------------------------------------------

class TestDifferentialEqualsRecompute:
    @given(expression=aggregate_expressions(), stream=update_streams())
    @settings(max_examples=40, deadline=None)
    def test_immediate_commit_path(self, expression, stream):
        initial, transactions = stream
        for use_codegen in (True, False):
            database = build_database(initial)
            maintainer = ViewMaintainer(database, use_codegen=use_codegen)
            maintainer.define_view("agg", expression)
            replay(database, transactions)
            assert_matches_recompute(maintainer, "agg", database)

    @given(expression=aggregate_expressions(), stream=update_streams())
    @settings(max_examples=25, deadline=None)
    def test_per_transaction_agreement(self, expression, stream):
        # Not just at the end: the view must agree after *every* commit.
        initial, transactions = stream
        database = build_database(initial)
        maintainer = ViewMaintainer(database)
        maintainer.define_view("agg", expression)
        for ops in transactions:
            replay(database, [ops])
            assert_matches_recompute(maintainer, "agg", database)

    @given(expression=aggregate_expressions(), stream=update_streams())
    @settings(max_examples=25, deadline=None)
    def test_deferred_refresh(self, expression, stream):
        initial, transactions = stream
        database = build_database(initial)
        maintainer = ViewMaintainer(database)
        maintainer.define_view(
            "agg", expression, policy=MaintenancePolicy.DEFERRED
        )
        replay(database, transactions)
        maintainer.quiesce()
        assert_matches_recompute(maintainer, "agg", database)

    @given(expression=aggregate_expressions(), stream=update_streams())
    @settings(max_examples=25, deadline=None)
    def test_codegen_interpreter_counter_parity(self, expression, stream):
        # Same stream, both engines: identical contents and identical
        # abstract aggregate work — the generated kernel may batch
        # differently but must fold the same rows and touch the same
        # groups (the counters are charged in the shared driver, so a
        # kernel that diverged from the interpreter fold would show up
        # as a contents mismatch; parity here pins the charging sites).
        initial, transactions = stream
        observed = {}
        for use_codegen in (True, False):
            database = build_database(initial)
            maintainer = ViewMaintainer(database, use_codegen=use_codegen)
            maintainer.define_view("agg", expression)
            recorder = CostRecorder()
            with recording(recorder):
                replay(database, transactions)
            observed[use_codegen] = (
                maintainer.view("agg").contents.counts(),
                recorder.get("aggregate_rows_folded"),
                recorder.get("aggregate_groups_touched"),
                recorder.get("codegen_fallback_tuples"),
            )
        codegen, interpreter = observed[True], observed[False]
        assert codegen[0] == interpreter[0]
        assert codegen[1] == interpreter[1]
        assert codegen[2] == interpreter[2]
        assert codegen[3] == 0, "generated kernels must not fall back"


# ----------------------------------------------------------------------
# Durability: kill-and-recover, followers
# ----------------------------------------------------------------------

class TestDurabilityPaths:
    @given(
        expression=aggregate_expressions(),
        stream=update_streams(max_txns=4),
    )
    @settings(max_examples=15, deadline=None)
    def test_wal_crash_and_replay(self, expression, stream):
        initial, transactions = stream
        with tempfile.TemporaryDirectory() as directory:
            database = build_database(initial)
            durability = DurabilityManager(database, directory)
            maintainer = ViewMaintainer(database)
            maintainer.define_view("agg", expression)
            durability.checkpoint(maintainer)
            replay(database, transactions)
            expected = maintainer.view("agg").contents.counts()
            del database, durability, maintainer  # crash: nothing closed

            recovery, recovered = recover(
                directory,
                lambda rec, m: rec.restore_view(m, "agg", expression),
                verify=True,
            )
            assert recovery.tail_damage is None
            assert recovered.view("agg").contents.counts() == expected
            assert_matches_recompute(recovered, "agg", recovery.database)

    @given(
        expression=aggregate_expressions(),
        stream=update_streams(max_txns=4),
    )
    @settings(max_examples=15, deadline=None)
    def test_mid_stream_checkpoint_restores_support_bags(
        self, expression, stream
    ):
        # A checkpoint taken after updates persists the aggregate's
        # *core support relation*; restore must rebuild the accumulators
        # from it, then fold the WAL tail on top.
        initial, transactions = stream
        half = max(1, len(transactions) // 2)
        with tempfile.TemporaryDirectory() as directory:
            database = build_database(initial)
            durability = DurabilityManager(database, directory)
            maintainer = ViewMaintainer(database)
            maintainer.define_view("agg", expression)
            durability.checkpoint(maintainer)
            replay(database, transactions[:half])
            durability.checkpoint(maintainer)
            replay(database, transactions[half:])
            expected = maintainer.view("agg").contents.counts()
            del database, durability, maintainer

            recovery, recovered = recover(
                directory,
                lambda rec, m: rec.restore_view(m, "agg", expression),
                verify=True,
            )
            assert recovered.view("agg").contents.counts() == expected

    @given(
        expression=aggregate_expressions(),
        stream=update_streams(max_txns=4),
    )
    @settings(max_examples=15, deadline=None)
    def test_follower_converges(self, expression, stream):
        initial, transactions = stream
        with tempfile.TemporaryDirectory() as directory:
            database = build_database(initial)
            durability = DurabilityManager(database, directory)
            maintainer = ViewMaintainer(database)
            durability.checkpoint(maintainer)
            follower = Follower(directory)
            follower.define_view("agg", expression)
            replay(database, transactions)
            follower.poll()
            assert follower.lag() == 0
            want = recompute(expression, database)
            assert follower.view("agg").contents.counts() == want

    @given(
        expression=aggregate_expressions(max_operands=1, allow_minmax=False),
        stream=update_streams(max_txns=4),
    )
    @settings(max_examples=15, deadline=None)
    def test_base_free_follower_converges(self, expression, stream):
        # The self-maintainable subset (single relation, no MIN/MAX)
        # must survive shedding the base replica: the accumulators alone
        # carry the view through the delta stream.
        initial, transactions = stream
        with tempfile.TemporaryDirectory() as directory:
            database = build_database(initial)
            durability = DurabilityManager(database, directory)
            maintainer = ViewMaintainer(database)
            durability.checkpoint(maintainer)
            follower = Follower(directory, base_free=True)
            follower.define_view("agg", expression)
            replay(database, transactions)
            follower.poll()
            want = recompute(expression, database)
            assert follower.view("agg").contents.counts() == want


# ----------------------------------------------------------------------
# MIN/MAX delete edge cases (deterministic)
# ----------------------------------------------------------------------

MINMAX_VIEW = BaseRef("r").project(["A", "C"]).aggregate(
    ["A"], [("max", "C", "top"), ("min", "C", "bottom")]
)


class TestMinMaxDeletes:
    def _engine(self, rows, use_codegen=True):
        database = Database()
        database.create_relation("r", ["A", "B", "C"], rows)
        maintainer = ViewMaintainer(database, use_codegen=use_codegen)
        maintainer.define_view("mm", MINMAX_VIEW)
        return database, maintainer

    def rows(self, maintainer):
        return dict(maintainer.view("mm").contents.counts())

    def test_support_count_exhaustion(self):
        # Two distinct base rows project to the SAME core row (1, 9):
        # its support count is 2, so deleting one base row must NOT
        # retire the max — only the second delete exhausts the value.
        for use_codegen in (True, False):
            database, maintainer = self._engine(
                [(1, 10, 9), (1, 20, 9), (1, 30, 4)], use_codegen
            )
            database.apply(deletes={"r": [(1, 10, 9)]})
            assert self.rows(maintainer) == {(1, 9, 4): 1}
            database.apply(deletes={"r": [(1, 20, 9)]})
            assert self.rows(maintainer) == {(1, 4, 4): 1}

    def test_group_disappearance(self):
        for use_codegen in (True, False):
            database, maintainer = self._engine(
                [(1, 10, 9), (2, 10, 5)], use_codegen
            )
            database.apply(deletes={"r": [(1, 10, 9)]})
            # Group 1 is gone entirely — no row with NULL-ish extremes.
            assert self.rows(maintainer) == {(2, 5, 5): 1}
            database.apply(deletes={"r": [(2, 10, 5)]})
            assert self.rows(maintainer) == {}

    def test_reinsert_after_empty(self):
        for use_codegen in (True, False):
            database, maintainer = self._engine([(1, 10, 9)], use_codegen)
            database.apply(deletes={"r": [(1, 10, 9)]})
            assert self.rows(maintainer) == {}
            database.apply(inserts={"r": [(1, 40, 3)]})
            # The group reappears with fresh extremes, no ghost of the
            # old max lingering in a stale support bag.
            assert self.rows(maintainer) == {(1, 3, 3): 1}

    def test_duplicate_rows_with_equal_aggregate_input(self):
        # Distinct base rows, equal aggregated value: (1,10,9) and
        # (1,20,9) are different tuples whose C both equal 9.  Deleting
        # one leaves the other still supporting max=9.
        for use_codegen in (True, False):
            database, maintainer = self._engine(
                [(1, 10, 9), (1, 20, 9)], use_codegen
            )
            database.apply(deletes={"r": [(1, 20, 9)]})
            assert self.rows(maintainer) == {(1, 9, 9): 1}
            database.apply(deletes={"r": [(1, 10, 9)]})
            assert self.rows(maintainer) == {}

    def test_global_minmax_group_lifecycle(self):
        # Empty GROUP BY: the single () group must vanish when the last
        # row goes and come back on re-insert — same lifecycle as keyed
        # groups, exercised through the global-aggregate rendering.
        view = BaseRef("r").aggregate([], [("max", "C", "top")])
        for use_codegen in (True, False):
            database = Database()
            database.create_relation("r", ["A", "B", "C"], [(1, 1, 7)])
            maintainer = ViewMaintainer(database, use_codegen=use_codegen)
            maintainer.define_view("g", view)
            assert dict(maintainer.view("g").contents.counts()) == {(7,): 1}
            database.apply(deletes={"r": [(1, 1, 7)]})
            assert dict(maintainer.view("g").contents.counts()) == {}
            database.apply(inserts={"r": [(2, 2, 3)]})
            assert dict(maintainer.view("g").contents.counts()) == {(3,): 1}


# ----------------------------------------------------------------------
# Accumulator semantics pinned by hand
# ----------------------------------------------------------------------

class TestAccumulatorSemantics:
    def test_avg_is_floor_division(self):
        database = Database()
        database.create_relation("r", ["A", "B"], [(1, 3), (1, 4)])
        maintainer = ViewMaintainer(database)
        maintainer.define_view(
            "a", BaseRef("r").aggregate(["A"], [("avg", "B", "mean")])
        )
        # (3 + 4) // 2 == 3 — floor, matching the recompute evaluator.
        assert dict(maintainer.view("a").contents.counts()) == {(1, 3): 1}
        want = recompute(maintainer.view("a").definition.expression, database)
        assert maintainer.view("a").contents.counts() == want

    def test_count_and_sum_track_deletes(self):
        database = Database()
        database.create_relation("r", ["A", "B"], [(1, 5), (1, 7), (2, 1)])
        maintainer = ViewMaintainer(database)
        maintainer.define_view(
            "c",
            BaseRef("r").aggregate(
                ["A"], [("count", None, "n"), ("sum", "B", "total")]
            ),
        )
        assert dict(maintainer.view("c").contents.counts()) == {
            (1, 2, 12): 1,
            (2, 1, 1): 1,
        }
        database.apply(deletes={"r": [(1, 5)]}, inserts={"r": [(2, 9)]})
        assert dict(maintainer.view("c").contents.counts()) == {
            (1, 1, 7): 1,
            (2, 2, 10): 1,
        }

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_duplicate_insert_is_a_noop(self, data):
        # Set semantics on the commit path: re-inserting a present row
        # must leave every accumulator untouched.
        expression = data.draw(aggregate_expressions(max_operands=1))
        database = Database()
        for name in sorted(BASE_TABLES):
            database.create_relation(name, BASE_TABLES[name], [(1, 2), (3, 4)])
        maintainer = ViewMaintainer(database)
        maintainer.define_view("agg", expression)
        before = maintainer.view("agg").contents.counts()
        for name in sorted(BASE_TABLES):
            database.apply(inserts={name: [(1, 2)]})
        assert maintainer.view("agg").contents.counts() == before
        assert_matches_recompute(maintainer, "agg", database)
