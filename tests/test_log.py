"""Unit tests for the update log."""

import pytest

from repro.engine.database import Database


@pytest.fixture
def db():
    database = Database()
    database.create_relation("r", ["A"], [(1,), (2,)])
    database.create_relation("s", ["B"], [(1,)])
    return database


class TestLogging:
    def test_sequence_numbers_increase(self, db):
        for i in range(3):
            with db.transact() as txn:
                txn.insert("r", (10 + i,))
        sequences = [record.sequence for record in db.log]
        assert sequences == [1, 2, 3]
        assert db.log.last_sequence() == 3

    def test_record_contents(self, db):
        with db.transact() as txn:
            txn.insert("r", (10,))
            txn.delete("s", (1,))
        (record,) = list(db.log)
        assert record.touched_relations() == ("r", "s")
        assert record.deltas["r"].inserted == {(10,): 1}
        assert record.deltas["s"].deleted == {(1,): 1}

    def test_records_since(self, db):
        for i in range(4):
            with db.transact() as txn:
                txn.insert("r", (10 + i,))
        later = list(db.log.records_since(2))
        assert [r.sequence for r in later] == [3, 4]

    def test_truncate_before(self, db):
        for i in range(4):
            with db.transact() as txn:
                txn.insert("r", (10 + i,))
        dropped = db.log.truncate_before(3)
        assert dropped == 2
        assert [r.sequence for r in db.log] == [3, 4]

    def test_last_sequence_empty(self):
        assert Database().log.last_sequence() == 0


class TestComposedDelta:
    def test_composes_across_transactions(self, db):
        with db.transact() as txn:
            txn.insert("r", (10,))
        with db.transact() as txn:
            txn.delete("r", (10,))
            txn.insert("r", (11,))
        composed = db.log.composed_delta("r")
        assert composed is not None
        assert composed.inserted == {(11,): 1}
        assert composed.deleted == {}

    def test_untouched_relation_gives_none(self, db):
        with db.transact() as txn:
            txn.insert("r", (10,))
        assert db.log.composed_delta("s") is None

    def test_since_sequence(self, db):
        with db.transact() as txn:
            txn.insert("r", (10,))
        checkpoint = db.log.last_sequence()
        with db.transact() as txn:
            txn.insert("r", (11,))
        composed = db.log.composed_delta("r", since_sequence=checkpoint)
        assert composed.inserted == {(11,): 1}


class TestReplay:
    def test_replay_reproduces_state(self, db):
        import random

        initial = db.clone_data()
        rng = random.Random(3)
        for _ in range(20):
            with db.transact() as txn:
                for _ in range(rng.randint(1, 3)):
                    name = rng.choice(("r", "s"))
                    row = (rng.randint(0, 9),)
                    if rng.random() < 0.5:
                        txn.insert(name, row)
                    else:
                        txn.delete(name, row)
        db.log.replay(initial)
        for name in ("r", "s"):
            assert initial.relation(name) == db.relation(name)
