"""Unit tests for the baseline maintainers."""

import random

import pytest

from repro.algebra.evaluate import project_relation
from repro.algebra.expressions import BaseRef
from repro.algebra.relation import Delta, Relation
from repro.algebra.schema import RelationSchema
from repro.baselines.full_reevaluation import FullReevaluationMaintainer
from repro.baselines.key_projection import KeyProjectionView
from repro.core.maintainer import ViewMaintainer
from repro.engine.database import Database
from repro.errors import MaintenanceError, SchemaError, UnknownViewError

from tests.conftest import run_random_transactions


@pytest.fixture
def db():
    database = Database()
    database.create_relation("r", ["A", "B"], [(1, 10), (2, 10), (3, 20)])
    database.create_relation("s", ["B", "C"], [(10, 1), (20, 2)])
    return database


class TestFullReevaluation:
    def test_recomputes_on_every_touching_commit(self, db):
        m = FullReevaluationMaintainer(db)
        view = m.define_view("v", BaseRef("r").join(BaseRef("s")))
        with db.transact() as txn:
            txn.insert("r", (4, 20))
        assert (4, 20, 2) in view.contents
        assert m.recomputations["v"] == 1

    def test_skips_untouched_views(self, db):
        db.create_relation("other", ["X"], [(1,)])
        m = FullReevaluationMaintainer(db)
        m.define_view("v", BaseRef("r"))
        with db.transact() as txn:
            txn.insert("other", (2,))
        assert m.recomputations["v"] == 0

    def test_duplicate_name_rejected(self, db):
        m = FullReevaluationMaintainer(db)
        m.define_view("v", BaseRef("r"))
        with pytest.raises(MaintenanceError):
            m.define_view("v", BaseRef("r"))

    def test_unknown_view(self, db):
        with pytest.raises(UnknownViewError):
            FullReevaluationMaintainer(db).view("zzz")

    def test_detach(self, db):
        m = FullReevaluationMaintainer(db)
        m.define_view("v", BaseRef("r"))
        m.detach()
        with db.transact() as txn:
            txn.insert("r", (9, 30))
        assert m.recomputations["v"] == 0

    def test_agrees_with_differential_maintainer(self, db):
        """The two maintainers are independent implementations; they
        must agree on arbitrary update streams."""
        expr = BaseRef("r").join(BaseRef("s")).select("C >= 1").project(["A", "C"])
        diff = ViewMaintainer(db)
        full = FullReevaluationMaintainer(db)
        a = diff.define_view("a", expr)
        b = full.define_view("b", expr)
        rng = random.Random(21)
        run_random_transactions(db, rng, 40)
        assert a.contents == b.contents


class TestKeyProjection:
    @pytest.fixture
    def schema(self):
        return RelationSchema(["A", "B"])

    def test_materialize_and_query(self, schema):
        base = Relation.from_rows(schema, [(1, 10), (2, 10), (3, 20)])
        view = KeyProjectionView(schema, ["B"], key=["A"])
        view.materialize(base)
        assert len(view) == 3  # stores key-widened tuples
        assert view.query() == project_relation(base, ["B"])

    def test_deletion_is_unambiguous(self, schema):
        # The paper's point: with the key carried, deleting (1, 10)
        # needs no counting — it removes exactly one stored tuple.
        base = Relation.from_rows(schema, [(1, 10), (2, 10)])
        view = KeyProjectionView(schema, ["B"], key=["A"])
        view.materialize(base)
        view.apply_delta(Delta(schema, deleted=[(1, 10)]))
        assert view.query().count_of((10,)) == 1

    def test_insert(self, schema):
        view = KeyProjectionView(schema, ["B"], key=["A"])
        view.materialize(Relation(schema))
        view.apply_delta(Delta(schema, inserted=[(1, 10)]))
        assert view.query().count_of((10,)) == 1

    def test_every_stored_tuple_has_count_one(self, schema):
        # "Alternative (2) becomes a special case of alternative (1) in
        # which every tuple in the view has a counter value of one."
        base = Relation.from_rows(schema, [(1, 10), (2, 10), (3, 20)])
        view = KeyProjectionView(schema, ["B"], key=["A"])
        view.materialize(base)
        assert all(count == 1 for _, count in view.contents.items())

    def test_key_already_in_projection(self, schema):
        view = KeyProjectionView(schema, ["A", "B"], key=["A"])
        assert view.stored_schema.names == ("A", "B")

    def test_unknown_attribute_rejected(self, schema):
        with pytest.raises(SchemaError):
            KeyProjectionView(schema, ["Z"], key=["A"])

    def test_counted_base_rejected(self, schema):
        base = Relation(schema)
        base.add((1, 10), count=2)
        view = KeyProjectionView(schema, ["B"], key=["A"])
        with pytest.raises(MaintenanceError):
            view.materialize(base)

    def test_schema_mismatch_rejected(self, schema):
        view = KeyProjectionView(schema, ["B"], key=["A"])
        with pytest.raises(SchemaError):
            view.materialize(Relation(RelationSchema(["X", "Y"])))

    def test_matches_counting_view_under_random_updates(self, schema):
        rng = random.Random(33)
        base = Relation(schema)
        for _ in range(8):
            row = (rng.randint(0, 20), rng.randint(0, 4))
            if row not in base:
                base.add(row)
        view = KeyProjectionView(schema, ["B"], key=["A"])
        view.materialize(base)
        for _ in range(60):
            row = (rng.randint(0, 20), rng.randint(0, 4))
            if row in base:
                base.discard(row)
                view.apply_delta(Delta(schema, deleted=[row]))
            else:
                base.add(row)
                view.apply_delta(Delta(schema, inserted=[row]))
            assert view.query() == project_relation(base, ["B"])
