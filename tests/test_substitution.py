"""Unit tests for Definitions 4.1–4.3: substitution and classification."""

import pytest

from repro.algebra.conditions import Atom, parse_condition
from repro.algebra.expressions import BaseRef, to_normal_form
from repro.algebra.schema import RelationSchema
from repro.core.substitution import (
    FormulaKind,
    binding_for,
    classify_atom,
    combined_binding,
    split_conjunction,
    substitute_condition,
)
from repro.errors import ConditionError


@pytest.fixture
def catalog():
    return {
        "r": RelationSchema(["A", "B"]),
        "s": RelationSchema(["C", "D"]),
    }


@pytest.fixture
def nf_41(catalog):
    expr = (
        BaseRef("r")
        .product(BaseRef("s"))
        .select("A < 10 and C > 5 and B = C")
        .project(["A", "D"])
    )
    return to_normal_form(expr, catalog)


class TestClassifyAtom:
    """Definition 4.2's three formula classes, on Example 4.1's C."""

    def test_variant_evaluable(self):
        # A < 10 with A substituted: becomes ground.
        assert classify_atom(Atom("A", "<", 10), {"A", "B"}) is (
            FormulaKind.VARIANT_EVALUABLE
        )

    def test_variant_non_evaluable(self):
        # B = C with B substituted: becomes C op const.
        assert classify_atom(Atom("B", "=", "C"), {"A", "B"}) is (
            FormulaKind.VARIANT_NON_EVALUABLE
        )

    def test_invariant(self):
        # C > 5 is untouched by substituting {A, B}.
        assert classify_atom(Atom("C", ">", 5), {"A", "B"}) is (
            FormulaKind.INVARIANT
        )

    def test_ground_atom_with_no_substituted_vars_is_invariant(self):
        assert classify_atom(Atom(1, "<", 2), {"A"}) is FormulaKind.INVARIANT

    def test_two_var_fully_substituted_is_evaluable(self):
        assert classify_atom(Atom("A", "<", "B"), {"A", "B"}) is (
            FormulaKind.VARIANT_EVALUABLE
        )


class TestSplitConjunction:
    def test_example_41_split(self):
        conj = parse_condition("A < 10 and C > 5 and B = C").disjuncts[0]
        split = split_conjunction(conj, {"A", "B"})
        assert [str(a) for a in split.variant_evaluable] == ["A < 10"]
        assert [str(a) for a in split.invariant] == ["C > 5"]
        assert [str(a) for a in split.variant_non_evaluable] == ["B = C"]

    def test_empty_conjunction(self):
        from repro.algebra.conditions import Conjunction

        split = split_conjunction(Conjunction(), {"A"})
        assert split.invariant == ()
        assert split.variant_evaluable == ()
        assert split.variant_non_evaluable == ()

    def test_split_partitions_all_atoms(self):
        conj = parse_condition(
            "A < 10 and C > 5 and B = C and A <= B and C <= D + 2"
        ).disjuncts[0]
        split = split_conjunction(conj, {"A", "B"})
        total = (
            len(split.invariant)
            + len(split.variant_evaluable)
            + len(split.variant_non_evaluable)
        )
        assert total == len(conj.atoms)


class TestBindings:
    def test_binding_for_uses_qualified_names(self, nf_41, catalog):
        (occ_r,) = nf_41.occurrences_of("r")
        binding = binding_for(occ_r, catalog["r"], (9, 10))
        assert binding == {"A": 9, "B": 10}

    def test_binding_arity_checked(self, nf_41, catalog):
        (occ_r,) = nf_41.occurrences_of("r")
        with pytest.raises(ConditionError):
            binding_for(occ_r, catalog["r"], (9,))

    def test_combined_binding_merges_disjoint(self, nf_41, catalog):
        (occ_r,) = nf_41.occurrences_of("r")
        (occ_s,) = nf_41.occurrences_of("s")
        merged = combined_binding(
            [
                binding_for(occ_r, catalog["r"], (9, 10)),
                binding_for(occ_s, catalog["s"], (10, 20)),
            ]
        )
        assert merged == {"A": 9, "B": 10, "C": 10, "D": 20}

    def test_combined_binding_rejects_overlap(self):
        with pytest.raises(ConditionError):
            combined_binding([{"A": 1}, {"A": 2}])


class TestSubstituteCondition:
    def test_example_41_relevant(self, nf_41, catalog):
        """C(t, Y2) for t = (9, 10): (9<10) ∧ (C>5) ∧ (10=C)."""
        (occ_r,) = nf_41.occurrences_of("r")
        binding = binding_for(occ_r, catalog["r"], (9, 10))
        substituted = substitute_condition(nf_41.condition, binding)
        (d,) = substituted.disjuncts
        # The substituted condition has the same truth table as the
        # paper's C(9, 10, C) over values of C.
        for c_value in range(0, 20):
            expected = (9 < 10) and (c_value > 5) and (10 == c_value)
            assert d.evaluate({"C": c_value, "D": 0}) is expected

    def test_substitution_removes_bound_variables(self, nf_41, catalog):
        (occ_r,) = nf_41.occurrences_of("r")
        binding = binding_for(occ_r, catalog["r"], (9, 10))
        substituted = substitute_condition(nf_41.condition, binding)
        assert substituted.variables() <= {"C", "D"}
