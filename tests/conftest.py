"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from repro import BaseRef, Database, Relation, RelationSchema


# ----------------------------------------------------------------------
# Plain fixtures
# ----------------------------------------------------------------------

@pytest.fixture
def rs_ab() -> RelationSchema:
    """The paper's recurring scheme R = {A, B}."""
    return RelationSchema(["A", "B"])


@pytest.fixture
def rs_cd() -> RelationSchema:
    """The paper's recurring scheme S = {C, D}."""
    return RelationSchema(["C", "D"])


@pytest.fixture
def example_41_db() -> Database:
    """The database instance printed in Example 4.1."""
    db = Database()
    db.create_relation("r", ["A", "B"], [(1, 2), (5, 10), (12, 15)])
    db.create_relation("s", ["C", "D"], [(2, 10), (10, 20)])
    return db


@pytest.fixture
def example_41_view_expr():
    """u = π_{A,D}(σ_{A<10 ∧ C>5 ∧ B=C}(r × s))."""
    return (
        BaseRef("r")
        .product(BaseRef("s"))
        .select("A < 10 and C > 5 and B = C")
        .project(["A", "D"])
    )


# ----------------------------------------------------------------------
# Random-database helpers (used by property and integration tests)
# ----------------------------------------------------------------------

def make_random_two_table_db(rng: random.Random, size: int = 12) -> Database:
    """A small r(A,B) / s(B,C) database with overlapping B values."""
    db = Database()
    r_rows = {(rng.randint(0, 9), rng.randint(0, 9)) for _ in range(size)}
    s_rows = {(rng.randint(0, 9), rng.randint(0, 9)) for _ in range(size)}
    db.create_relation("r", ["A", "B"], sorted(r_rows))
    db.create_relation("s", ["B", "C"], sorted(s_rows))
    return db


def run_random_transactions(
    db: Database, rng: random.Random, count: int, value_max: int = 9
) -> None:
    """Apply ``count`` random insert/delete transactions to ``db``."""
    names = db.relation_names()
    for _ in range(count):
        with db.transact() as txn:
            for _ in range(rng.randint(1, 4)):
                name = rng.choice(names)
                relation = db.relation(name)
                if rng.random() < 0.45 and len(relation):
                    row = rng.choice(sorted(relation.value_tuples()))
                    txn.delete(name, row)
                else:
                    width = len(relation.schema)
                    txn.insert(
                        name,
                        tuple(rng.randint(0, value_max) for _ in range(width)),
                    )
