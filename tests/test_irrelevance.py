"""Unit and property tests for irrelevant-update detection (Section 4)."""

import random

import pytest

from repro.algebra.evaluate import evaluate
from repro.algebra.expressions import BaseRef, to_normal_form
from repro.algebra.relation import Delta, Relation
from repro.algebra.schema import RelationSchema
from repro.core.irrelevance import (
    RelevanceFilter,
    construct_witness_database,
    filter_delta,
    is_irrelevant_combination,
    is_irrelevant_update,
)
from repro.errors import MaintenanceError


@pytest.fixture
def catalog():
    return {
        "r": RelationSchema(["A", "B"]),
        "s": RelationSchema(["C", "D"]),
    }


@pytest.fixture
def nf_41(catalog):
    expr = (
        BaseRef("r")
        .product(BaseRef("s"))
        .select("A < 10 and C > 5 and B = C")
        .project(["A", "D"])
    )
    return to_normal_form(expr, catalog)


class TestTheorem41:
    def test_paper_relevant_insertion(self, nf_41, catalog):
        # Example 4.1: inserting (9, 10) into r is relevant.
        assert not is_irrelevant_update(nf_41, "r", (9, 10), catalog["r"])

    def test_paper_irrelevant_insertion(self, nf_41, catalog):
        # Example 4.1: inserting (11, 10) into r is (provably) irrelevant.
        assert is_irrelevant_update(nf_41, "r", (11, 10), catalog["r"])

    def test_irrelevant_by_join_attribute(self, nf_41, catalog):
        # B = 3 can never match C > 5 ... C = 3 contradicts C > 5.
        assert is_irrelevant_update(nf_41, "r", (1, 3), catalog["r"])

    def test_relevant_s_side(self, nf_41, catalog):
        assert not is_irrelevant_update(nf_41, "s", (7, 0), catalog["s"])

    def test_irrelevant_s_side(self, nf_41, catalog):
        # C = 5 fails C > 5.
        assert is_irrelevant_update(nf_41, "s", (5, 0), catalog["s"])

    def test_relation_not_in_view_is_irrelevant(self, nf_41):
        other = RelationSchema(["X"])
        assert is_irrelevant_update(nf_41, "elsewhere", (1,), other)

    def test_deletion_symmetry(self, nf_41, catalog):
        # Theorem 4.1 covers insert and delete with one condition: the
        # verdict for a tuple is operation-independent.
        for tup in ((9, 10), (11, 10), (1, 3)):
            verdict = is_irrelevant_update(nf_41, "r", tup, catalog["r"])
            assert verdict == is_irrelevant_update(nf_41, "r", tup, catalog["r"])

    def test_true_condition_everything_relevant(self, catalog):
        nf = to_normal_form(BaseRef("r"), catalog)
        assert not is_irrelevant_update(nf, "r", (1, 1), catalog["r"])

    def test_self_join_checks_every_occurrence(self, catalog):
        # v = σ_{A<0}(r) ⋈ ... with r occurring twice under different
        # conditions: a tuple relevant through either occurrence is
        # relevant.
        expr = (
            BaseRef("r")
            .select("A < 0")
            .project(["A"])
            .rename({"A": "X"})
            .product(BaseRef("r").select("A > 100").project(["B"]))
        )
        nf = to_normal_form(expr, catalog)
        # Relevant only through occurrence 2 (A > 100).
        assert not is_irrelevant_update(nf, "r", (200, 1), catalog["r"])
        # Relevant only through occurrence 1 (A < 0).
        assert not is_irrelevant_update(nf, "r", (-5, 1), catalog["r"])
        # Relevant through neither.
        assert is_irrelevant_update(nf, "r", (50, 1), catalog["r"])


class TestTheorem42:
    def test_jointly_irrelevant_combination(self, nf_41, catalog):
        # t_r = (9, 10) and t_s = (8, 1): individually relevant, but
        # together B = 10 ≠ 8 = C, so the combination cannot join.
        assert not is_irrelevant_update(nf_41, "r", (9, 10), catalog["r"])
        assert not is_irrelevant_update(nf_41, "s", (8, 1), catalog["s"])
        assert is_irrelevant_combination(
            nf_41, {"r": (9, 10), "s": (8, 1)}, catalog
        )

    def test_jointly_relevant_combination(self, nf_41, catalog):
        assert not is_irrelevant_combination(
            nf_41, {"r": (9, 10), "s": (10, 1)}, catalog
        )

    def test_single_tuple_degenerates_to_theorem_41(self, nf_41, catalog):
        assert is_irrelevant_combination(nf_41, {"r": (11, 10)}, catalog) == (
            is_irrelevant_update(nf_41, "r", (11, 10), catalog["r"])
        )

    def test_unknown_relation_rejected(self, nf_41, catalog):
        with pytest.raises(MaintenanceError):
            is_irrelevant_combination(nf_41, {"zzz": (1, 2)}, catalog)

    def test_self_join_rejected(self, catalog):
        expr = BaseRef("r").join(BaseRef("r").rename({"A": "A2", "B": "B2"}))
        nf = to_normal_form(expr, catalog)
        with pytest.raises(MaintenanceError):
            is_irrelevant_combination(nf, {"r": (1, 2)}, catalog)


class TestWitnessConstruction:
    """The constructive 'only if' direction of Theorem 4.1."""

    def test_witness_for_relevant_insertion(self, nf_41, catalog):
        witness = construct_witness_database(nf_41, "r", (9, 10), catalog)
        assert witness is not None
        expr = (
            BaseRef("r")
            .product(BaseRef("s"))
            .select("A < 10 and C > 5 and B = C")
            .project(["A", "D"])
        )
        before = evaluate(expr, witness)
        witness["r"].add((9, 10))
        after = evaluate(expr, witness)
        assert before != after  # the insertion visibly changed the view

    def test_no_witness_for_irrelevant_insertion(self, nf_41, catalog):
        assert construct_witness_database(nf_41, "r", (11, 10), catalog) is None

    def test_witness_covers_s_side(self, nf_41, catalog):
        witness = construct_witness_database(nf_41, "s", (7, 3), catalog)
        assert witness is not None
        expr = (
            BaseRef("r")
            .product(BaseRef("s"))
            .select("A < 10 and C > 5 and B = C")
            .project(["A", "D"])
        )
        before = evaluate(expr, witness)
        witness["s"].add((7, 3))
        after = evaluate(expr, witness)
        assert before != after


class TestRelevanceFilter:
    """Algorithm 4.1: the batched filter must agree with the direct
    Theorem 4.1 test on every tuple."""

    def test_agrees_with_direct_test_on_example(self, nf_41, catalog):
        screen = RelevanceFilter(nf_41, "r", catalog["r"])
        for tup in ((9, 10), (11, 10), (1, 3), (5, 10), (-3, 7), (9, 5)):
            assert screen.is_relevant(tup) == (
                not is_irrelevant_update(nf_41, "r", tup, catalog["r"])
            )

    def test_agrees_on_random_views_and_tuples(self, catalog):
        rng = random.Random(31)
        condition_pool = [
            "A < 10 and C > 5 and B = C",
            "A <= B and B = C and D >= A + 2",
            "A = 1 or B = C and C < 4",
            "B < C or B > C + 4",
            "A < 10 and A > 20",  # unsatisfiable view
            "true",
        ]
        for text in condition_pool:
            expr = (
                BaseRef("r").product(BaseRef("s")).select(text).project(["A", "D"])
            )
            nf = to_normal_form(expr, catalog)
            for relation_name in ("r", "s"):
                schema = catalog[relation_name]
                screen = RelevanceFilter(nf, relation_name, schema)
                for _ in range(40):
                    tup = (rng.randint(-2, 12), rng.randint(-2, 12))
                    assert screen.is_relevant(tup) == (
                        not is_irrelevant_update(nf, relation_name, tup, schema)
                    ), (text, relation_name, tup)

    def test_stats_counting(self, nf_41, catalog):
        screen = RelevanceFilter(nf_41, "r", catalog["r"])
        screen.is_relevant((9, 10))
        screen.is_relevant((11, 10))
        assert screen.stats.checked == 2
        assert screen.stats.relevant == 1
        assert screen.stats.irrelevant == 1

    def test_filter_tuples(self, nf_41, catalog):
        screen = RelevanceFilter(nf_41, "r", catalog["r"])
        out = screen.filter_tuples([(9, 10), (11, 10), (1, 3)])
        assert out == [(9, 10)]

    def test_unsatisfiable_variant_condition_screens_everything(self, catalog):
        # A < 0 ∧ A > 0 is variant w.r.t. r-updates: the screen stays
        # alive but rejects every tuple at substitution time.
        expr = BaseRef("r").select("A < 0 and A > 0")
        nf = to_normal_form(expr, catalog)
        screen = RelevanceFilter(nf, "r", catalog["r"])
        for tup in ((0, 0), (-1, 5), (1, 5)):
            assert not screen.is_relevant(tup)

    def test_unsatisfiable_invariant_condition_kills_screen(self, catalog):
        # C < 0 ∧ C > 0 is invariant w.r.t. r-updates: Algorithm 4.1
        # detects the dead disjunct once, at construction.
        expr = (
            BaseRef("r")
            .product(BaseRef("s"))
            .select("C < 0 and C > 0 and A = C")
            .project(["A"])
        )
        nf = to_normal_form(expr, catalog)
        screen = RelevanceFilter(nf, "r", catalog["r"])
        assert screen._screens == []
        assert not screen.is_relevant((0, 0))


class TestFilterDelta:
    def test_filters_both_sides(self, nf_41, catalog):
        delta = Delta(
            catalog["r"],
            inserted=[(9, 10), (11, 10)],
            deleted=[(5, 10), (12, 15)],
        )
        filtered, stats = filter_delta(nf_41, "r", delta)
        assert set(filtered.inserted) == {(9, 10)}
        assert set(filtered.deleted) == {(5, 10)}
        assert stats.checked == 4
        assert stats.irrelevant == 2

    def test_empty_delta(self, nf_41, catalog):
        filtered, stats = filter_delta(nf_41, "r", Delta(catalog["r"]))
        assert filtered.is_empty()
        assert stats.checked == 0
