"""Unit tests for attribute domains."""

import pytest

from repro.algebra.domains import (
    INTEGERS,
    FiniteDomain,
    IntegerDomain,
    StringDomain,
)
from repro.errors import DomainError


class TestIntegerDomain:
    def test_contains_integers(self):
        assert INTEGERS.contains(0)
        assert INTEGERS.contains(-1_000_000)
        assert INTEGERS.contains(1_000_000)

    def test_rejects_bools(self):
        # bool is a subclass of int in Python; the paper's domains are
        # numeric, so True/False must not sneak in as 1/0.
        assert not INTEGERS.contains(True)
        assert not INTEGERS.contains(False)

    def test_rejects_non_integers(self):
        assert not INTEGERS.contains(1.5)
        assert not INTEGERS.contains("7")
        assert not INTEGERS.contains(None)

    def test_encode_decode_roundtrip(self):
        for v in (-3, 0, 42):
            assert INTEGERS.decode(INTEGERS.encode(v)) == v

    def test_validate_raises_on_bad_value(self):
        with pytest.raises(DomainError):
            INTEGERS.validate("not an int")

    def test_sample_values_enumerates_fairly(self):
        it = INTEGERS.sample_values()
        first = [next(it) for _ in range(5)]
        assert first == [0, 1, -1, 2, -2]

    def test_equality_and_hash(self):
        assert IntegerDomain() == IntegerDomain()
        assert hash(IntegerDomain()) == hash(IntegerDomain())


class TestFiniteDomain:
    def test_bounds_inclusive(self):
        d = FiniteDomain(2, 4)
        assert d.contains(2) and d.contains(4)
        assert not d.contains(1) and not d.contains(5)

    def test_empty_interval_rejected(self):
        with pytest.raises(DomainError):
            FiniteDomain(5, 2)

    def test_len_and_samples(self):
        d = FiniteDomain(-1, 1)
        assert len(d) == 3
        assert list(d.sample_values()) == [-1, 0, 1]

    def test_rejects_bool(self):
        assert not FiniteDomain(0, 1).contains(True)

    def test_equality(self):
        assert FiniteDomain(0, 5) == FiniteDomain(0, 5)
        assert FiniteDomain(0, 5) != FiniteDomain(0, 6)
        assert FiniteDomain(0, 5) != IntegerDomain()


class TestStringDomain:
    def test_encodes_labels_by_position(self):
        d = StringDomain(["low", "mid", "high"])
        assert d.encode("low") == 0
        assert d.encode("high") == 2
        assert d.decode(1) == "mid"

    def test_contains(self):
        d = StringDomain(["a", "b"])
        assert d.contains("a")
        assert not d.contains("c")
        assert not d.contains(0)

    def test_duplicate_labels_rejected(self):
        with pytest.raises(DomainError):
            StringDomain(["a", "a"])

    def test_empty_rejected(self):
        with pytest.raises(DomainError):
            StringDomain([])

    def test_encode_unknown_label_raises(self):
        with pytest.raises(DomainError):
            StringDomain(["a"]).encode("z")

    def test_decode_out_of_range_raises(self):
        with pytest.raises(DomainError):
            StringDomain(["a"]).decode(5)

    def test_validate_roundtrip(self):
        d = StringDomain(["pending", "shipped"])
        assert d.decode(d.validate("shipped")) == "shipped"

    def test_order_follows_enumeration(self):
        # Comparisons on encodings follow constructor order — the
        # paper's "mapped to a subset of natural numbers" convention.
        d = StringDomain(["jan", "feb", "mar"])
        assert d.encode("jan") < d.encode("feb") < d.encode("mar")
