"""Unit tests for the Section 5.3 tag algebra.

Experiment E6 reproduces the paper's tag tables at benchmark level;
these tests pin every cell as a unit-level contract.
"""

import pytest

from repro.algebra.tags import (
    JOIN_TAG_TABLE,
    UNARY_TAG_TABLE,
    Tag,
    combine_join_tags,
    unary_tag,
)

I, D, O, X = Tag.INSERT, Tag.DELETE, Tag.OLD, Tag.IGNORE

#: The paper's 9-row join tag table, transcribed verbatim.
PAPER_JOIN_TABLE = [
    (I, I, I),
    (I, D, X),
    (I, O, I),
    (D, I, X),
    (D, D, D),
    (D, O, D),
    (O, I, I),
    (O, D, D),
    (O, O, O),
]


class TestJoinTagTable:
    @pytest.mark.parametrize("left,right,expected", PAPER_JOIN_TABLE)
    def test_paper_table_cell(self, left, right, expected):
        assert combine_join_tags(left, right) is expected

    def test_table_is_exactly_nine_rows(self):
        assert len(JOIN_TAG_TABLE) == 9

    def test_table_is_symmetric(self):
        # The paper's table happens to be symmetric in its operands.
        for (a, b), out in JOIN_TAG_TABLE.items():
            assert JOIN_TAG_TABLE[(b, a)] is out

    def test_ignore_is_not_a_valid_operand(self):
        # "Tuples tagged as ignore are assumed to be discarded when
        # performing the join" — they can never be combined again.
        with pytest.raises(ValueError):
            combine_join_tags(X, O)
        with pytest.raises(ValueError):
            combine_join_tags(I, X)

    def test_old_is_identity(self):
        for tag in (I, D, O):
            assert combine_join_tags(tag, O) is tag
            assert combine_join_tags(O, tag) is tag

    def test_opposite_tags_annihilate(self):
        assert combine_join_tags(I, D) is X
        assert combine_join_tags(D, I) is X


class TestUnaryTagTable:
    @pytest.mark.parametrize("tag", [I, D, O])
    def test_select_project_preserve_tags(self, tag):
        assert unary_tag(tag) is tag

    def test_unary_table_is_exactly_three_rows(self):
        assert len(UNARY_TAG_TABLE) == 3

    def test_ignore_cannot_flow_through_unary(self):
        with pytest.raises(ValueError):
            unary_tag(X)


class TestTagSemantics:
    """The tag table must equal the algebraic expansion of
    (r − d ∪ i) ⋈ (s − d' ∪ i') with old = surviving tuples.

    A combination is an INSERT iff present only after the transaction,
    a DELETE iff present only before, OLD iff present in both, IGNORE
    iff present in neither.
    """

    @staticmethod
    def _presence(tag):
        # (present before, present after) for a tuple carrying the tag.
        return {
            I: (False, True),
            D: (True, False),
            O: (True, True),
        }[tag]

    @pytest.mark.parametrize("left", [I, D, O])
    @pytest.mark.parametrize("right", [I, D, O])
    def test_combination_matches_set_algebra(self, left, right):
        before = self._presence(left)[0] and self._presence(right)[0]
        after = self._presence(left)[1] and self._presence(right)[1]
        expected = {
            (False, True): I,
            (True, False): D,
            (True, True): O,
            (False, False): X,
        }[(before, after)]
        assert combine_join_tags(left, right) is expected
