"""Unit tests for instrumentation and the bench harness."""

import pytest

from repro.bench.harness import ratio, run_measured, sweep
from repro.bench.reporting import format_series, format_table
from repro.instrumentation import CostRecorder, active_recorder, charge, recording


class TestCostRecorder:
    def test_charges_only_when_active(self):
        recorder = CostRecorder()
        charge("x")  # no active recorder: dropped
        assert recorder.get("x") == 0
        with recording(recorder):
            charge("x")
            charge("x", 4)
        charge("x")  # inactive again
        assert recorder.get("x") == 5

    def test_nesting_restores_previous(self):
        outer, inner = CostRecorder(), CostRecorder()
        with recording(outer):
            charge("a")
            with recording(inner):
                charge("a")
            charge("a")
        assert outer.get("a") == 2
        assert inner.get("a") == 1
        assert active_recorder() is None

    def test_restored_on_exception(self):
        recorder = CostRecorder()
        with pytest.raises(RuntimeError):
            with recording(recorder):
                raise RuntimeError
        assert active_recorder() is None

    def test_reset_and_snapshot(self):
        recorder = CostRecorder()
        recorder.incr("a", 3)
        snap = recorder.snapshot()
        recorder.reset()
        assert snap == {"a": 3}
        assert recorder.get("a") == 0


class TestHarness:
    def test_run_measured_captures_counters_and_result(self):
        def work():
            charge("ops", 7)
            return "done"

        m = run_measured("label", work)
        assert m.result == "done"
        assert m.counter("ops") == 7
        assert m.counter("missing") == 0
        assert m.seconds >= 0

    def test_sweep_excludes_setup_cost(self):
        setup_calls = []

        def make_work(value):
            setup_calls.append(value)

            def work():
                charge("ops", value)
                return value

            return work

        out = sweep([1, 2, 3], make_work, label="n={value}")
        assert [m.result for m in out] == [1, 2, 3]
        assert [m.label for m in out] == ["n=1", "n=2", "n=3"]
        assert setup_calls == [1, 2, 3]

    def test_ratio_guards(self):
        assert ratio(10, 2) == 5
        assert ratio(10, 0) == float("inf")
        assert ratio(0, 0) == 1.0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["x", "longer"], [[1, 2.5], [100, 3.25]], title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "longer" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text

    def test_float_formatting(self):
        text = format_table(["v"], [[1234.5678], [0.1234], [float("inf")]])
        assert "1234.6" in text
        assert "0.123" in text
        assert "inf" in text

    def test_format_series(self):
        text = format_series("x", "y", [(1, 2), (3, 4)], title="s")
        assert text.splitlines()[0] == "s"
        assert "3" in text
