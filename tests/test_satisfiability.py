"""Unit and property tests for the satisfiability procedures."""

from hypothesis import given, settings

from repro.algebra.conditions import Condition, Conjunction, parse_condition
from repro.core.satisfiability import (
    brute_force_satisfiable,
    is_satisfiable,
    is_satisfiable_conjunction,
    solve_condition,
    solve_conjunction,
)

from tests.strategies import (
    conditions,
    conjunctions,
    small_conjunctions,
    solution_box,
)


def _conj(text):
    return parse_condition(text).disjuncts[0]


class TestConjunctions:
    def test_paper_relevant_substitution(self):
        # Example 4.1: C(9, 10, C) is satisfiable.
        assert is_satisfiable_conjunction(_conj("9 < 10 and C > 5 and 10 = C"))

    def test_paper_irrelevant_substitution(self):
        # Example 4.1: C(11, 10, C) is unsatisfiable.
        assert not is_satisfiable_conjunction(_conj("11 < 10 and C > 5 and 10 = C"))

    def test_empty_conjunction_satisfiable(self):
        assert is_satisfiable_conjunction(Conjunction())

    def test_tight_equality_chain(self):
        assert is_satisfiable_conjunction(_conj("x = y + 1 and y = z + 1 and x = z + 2"))
        assert not is_satisfiable_conjunction(
            _conj("x = y + 1 and y = z + 1 and x = z + 3")
        )

    def test_strict_inequality_discreteness(self):
        # x < y and y < x + 2 forces y = x + 1: satisfiable only
        # because domains are discrete.
        assert is_satisfiable_conjunction(_conj("x < y and y < x + 2"))
        # x < y and y < x + 1 has no integer solution.
        assert not is_satisfiable_conjunction(_conj("x < y and y < x + 1"))

    def test_bound_window(self):
        assert is_satisfiable_conjunction(_conj("x >= 3 and x <= 3"))
        assert not is_satisfiable_conjunction(_conj("x >= 4 and x <= 3"))

    def test_both_methods_agree(self):
        for text in (
            "x < y and y < z and z < x",
            "x <= y and y <= x",
            "x = 5 and x = 6",
            "x = 5 and y = x + 1 and y <= 6",
        ):
            c = _conj(text)
            assert is_satisfiable_conjunction(c, "floyd") == (
                is_satisfiable_conjunction(c, "bellman")
            )


class TestDisjunctions:
    def test_satisfiable_if_any_disjunct_is(self):
        assert is_satisfiable(parse_condition("x < 0 and x > 0 or x = 1"))

    def test_unsatisfiable_if_all_disjuncts_are(self):
        assert not is_satisfiable(
            parse_condition("x < 0 and x > 0 or y < 5 and y > 5")
        )

    def test_false_condition(self):
        assert not is_satisfiable(Condition.false())

    def test_true_condition(self):
        assert is_satisfiable(Condition.true())


class TestSolvers:
    def test_solution_satisfies(self):
        conj = _conj("x <= y - 1 and y <= 4 and x >= -3")
        sol = solve_conjunction(conj)
        assert sol is not None
        assert conj.evaluate(sol)

    def test_unsatisfiable_gives_none(self):
        assert solve_conjunction(_conj("x < 0 and x > 0")) is None

    def test_solution_covers_all_variables(self):
        sol = solve_conjunction(_conj("x <= y and 1 <= 2 and z >= 0"))
        assert sol is not None and set(sol) == {"x", "y", "z"}

    def test_solve_condition_picks_live_disjunct(self):
        cond = parse_condition("x < 0 and x > 0 or x = 7")
        sol = solve_condition(cond)
        assert sol is not None and cond.evaluate(sol)

    def test_solve_condition_none_when_unsat(self):
        assert solve_condition(parse_condition("x < 0 and x > 0")) is None

    def test_solve_condition_covers_variables_of_other_disjuncts(self):
        cond = parse_condition("x = 1 or y = 2")
        sol = solve_condition(cond)
        assert sol is not None and {"x", "y"} <= set(sol)


class TestAgainstBruteForce:
    """The graph test decides satisfiability over unbounded integers;
    the brute-force oracle enumerates a finite box.  The box is derived
    per conjunction (sum of absolute constraint weights), which bounds
    the shortest-path solution whenever one exists, so the comparison
    is exact; conjunctions are restricted to two variables to keep the
    enumeration cheap."""

    @settings(max_examples=300, deadline=None)
    @given(small_conjunctions(max_atoms=4))
    def test_graph_agrees_with_brute_force(self, conj):
        bound = solution_box(conj)
        graph_answer = is_satisfiable_conjunction(conj)
        brute_answer = brute_force_satisfiable(conj, -bound, bound)
        assert graph_answer == brute_answer

    @settings(max_examples=300, deadline=None)
    @given(conjunctions(max_atoms=4))
    def test_solver_constructs_real_solutions(self, conj):
        sol = solve_conjunction(conj)
        if sol is not None:
            assert conj.evaluate(sol)
        else:
            assert not is_satisfiable_conjunction(conj)

    @settings(max_examples=200, deadline=None)
    @given(conditions())
    def test_dnf_rule(self, cond):
        # C satisfiable iff some disjunct satisfiable (the paper's rule).
        assert is_satisfiable(cond) == any(
            is_satisfiable_conjunction(d) for d in cond.disjuncts
        )

    @settings(max_examples=200, deadline=None)
    @given(conjunctions(max_atoms=4))
    def test_floyd_bellman_agree(self, conj):
        assert is_satisfiable_conjunction(conj, "floyd") == (
            is_satisfiable_conjunction(conj, "bellman")
        )
