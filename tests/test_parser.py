"""Unit tests for the condition parser."""

import pytest

from repro.algebra.conditions import Atom, Const, Var, parse_condition
from repro.errors import ConditionError


class TestBasicParsing:
    def test_single_atom(self):
        c = parse_condition("A < 10")
        assert len(c.disjuncts) == 1
        assert c.disjuncts[0].atoms == (Atom("A", "<", 10),)

    def test_paper_example_condition(self):
        c = parse_condition("A < 10 and C > 5 and B = C")
        (d,) = c.disjuncts
        assert d.atoms == (
            Atom("A", "<", 10),
            Atom("C", ">", 5),
            Atom("B", "=", "C"),
        )

    def test_all_operators(self):
        for op in ("=", "<", ">", "<=", ">="):
            c = parse_condition(f"x {op} 3")
            assert c.disjuncts[0].atoms[0].op == op

    def test_double_equals_alias(self):
        assert parse_condition("x == 3") == parse_condition("x = 3")

    def test_offset_plus(self):
        a = parse_condition("x <= y + 4").disjuncts[0].atoms[0]
        assert a.offset == 4

    def test_offset_minus(self):
        a = parse_condition("x <= y - 4").disjuncts[0].atoms[0]
        assert a.offset == -4

    def test_offset_on_left_moves_right(self):
        # x + 2 <= y  is  x <= y - 2
        a = parse_condition("x + 2 <= y").disjuncts[0].atoms[0]
        assert a.offset == -2

    def test_negative_constant(self):
        a = parse_condition("x < -5").disjuncts[0].atoms[0]
        assert a.right == Const(-5)

    def test_constant_on_left(self):
        a = parse_condition("5 < x").disjuncts[0].atoms[0]
        assert a.left == Var("x") and a.op == ">"

    def test_qualified_names(self):
        a = parse_condition("orders.amount > 100").disjuncts[0].atoms[0]
        assert a.left == Var("orders.amount")


class TestBooleanStructure:
    def test_and_or_precedence(self):
        # and binds tighter: (a and b) or c
        c = parse_condition("x < 1 and y < 1 or z < 1")
        assert len(c.disjuncts) == 2
        assert len(c.disjuncts[0].atoms) == 2
        assert len(c.disjuncts[1].atoms) == 1

    def test_parentheses_override(self):
        # a and (b or c) distributes into DNF: two disjuncts of 2 atoms.
        c = parse_condition("x < 1 and (y < 1 or z < 1)")
        assert len(c.disjuncts) == 2
        assert all(len(d.atoms) == 2 for d in c.disjuncts)

    def test_true_false_literals(self):
        assert parse_condition("true").is_true()
        assert parse_condition("false").is_false()

    def test_keywords_case_insensitive(self):
        c = parse_condition("x < 1 AND y < 1 OR TRUE")
        assert c.is_true()

    def test_nested_parens(self):
        c = parse_condition("((x < 1))")
        assert len(c.disjuncts) == 1


class TestParserErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "x <",
            "< 5",
            "x ! 5",
            "x != 5",
            "x <> 5",
            "x < 5 and",
            "x < 5 or or y < 1",
            "(x < 5",
            "x < 5)",
            "x + y < 5",  # offsets must be constants, not variables
            "x < 5 6",
        ],
    )
    def test_rejects(self, text):
        with pytest.raises(ConditionError):
            parse_condition(text)

    def test_unknown_character(self):
        with pytest.raises(ConditionError):
            parse_condition("x # 5")


class TestParserEdgeCases:
    def test_whitespace_tolerance(self):
        assert parse_condition("  x<5and y>=2  ") == parse_condition(
            "x < 5 and y >= 2"
        )

    def test_long_chain_of_ands(self):
        c = parse_condition(" and ".join(f"x{i} < {i}" for i in range(30)))
        assert len(c.disjuncts[0].atoms) == 30

    def test_long_chain_of_ors(self):
        c = parse_condition(" or ".join(f"x < {i}" for i in range(30)))
        assert len(c.disjuncts) == 30

    def test_deeply_nested_parens(self):
        text = "(" * 20 + "x < 5" + ")" * 20
        assert parse_condition(text) == parse_condition("x < 5")

    def test_distribution_blowup_is_correct(self):
        # (a or b) and (c or d) and (e or f): 8 disjuncts of 3 atoms.
        c = parse_condition(
            "(x < 1 or x > 9) and (y < 1 or y > 9) and (z < 1 or z > 9)"
        )
        assert len(c.disjuncts) == 8
        assert all(len(d.atoms) == 3 for d in c.disjuncts)

    def test_keyword_as_prefix_of_identifier(self):
        # 'android' starts with 'and' but is one identifier.
        c = parse_condition("android < 5")
        assert c.variables() == {"android"}

    def test_true_inside_conjunction_is_identity(self):
        assert parse_condition("true and x < 5") == parse_condition("x < 5")

    def test_false_inside_conjunction_annihilates(self):
        assert parse_condition("false and x < 5").is_false()

    def test_false_in_disjunction_is_identity(self):
        assert parse_condition("false or x < 5") == parse_condition("x < 5")

    def test_zero_offsets(self):
        a = parse_condition("x <= y + 0").disjuncts[0].atoms[0]
        assert a.offset == 0
        assert str(a) == "x <= y"


class TestRoundTrips:
    @pytest.mark.parametrize(
        "text",
        [
            "A < 10 and C > 5 and B = C",
            "x <= y + 2",
            "x >= y - 3",
            "(x < 1) or (y > 2 and z = w)",
        ],
    )
    def test_str_reparses_to_same_condition(self, text):
        once = parse_condition(text)
        again = parse_condition(str(once))
        assert once == again
