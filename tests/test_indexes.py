"""Unit tests for hash indexes and the index manager."""

import pytest

from repro.algebra.relation import Delta, Relation
from repro.algebra.schema import RelationSchema
from repro.engine.database import Database
from repro.engine.indexes import HashIndex, IndexManager
from repro.errors import SchemaError


@pytest.fixture
def relation():
    return Relation.from_rows(
        RelationSchema(["A", "B"]), [(1, 10), (2, 10), (3, 20)]
    )


class TestHashIndex:
    def test_probe_single_attribute(self, relation):
        index = HashIndex(relation, "r", ["B"])
        assert index.probe((10,)) == {(1, 10), (2, 10)}
        assert index.probe((20,)) == {(3, 20)}
        assert index.probe((99,)) == frozenset()

    def test_probe_composite_key(self, relation):
        index = HashIndex(relation, "r", ["A", "B"])
        assert index.probe((1, 10)) == {(1, 10)}
        assert index.probe((1, 20)) == frozenset()

    def test_key_count(self, relation):
        assert len(HashIndex(relation, "r", ["B"])) == 2

    def test_empty_attribute_list_rejected(self, relation):
        with pytest.raises(SchemaError):
            HashIndex(relation, "r", [])

    def test_unknown_attribute_rejected(self, relation):
        with pytest.raises(SchemaError):
            HashIndex(relation, "r", ["Z"])

    def test_apply_delta(self, relation):
        index = HashIndex(relation, "r", ["B"])
        delta = Delta(relation.schema, inserted=[(4, 20)], deleted=[(1, 10)])
        index.apply_delta(delta)
        assert index.probe((20,)) == {(3, 20), (4, 20)}
        assert index.probe((10,)) == {(2, 10)}

    def test_delta_removing_last_key_entry(self, relation):
        index = HashIndex(relation, "r", ["B"])
        index.apply_delta(Delta(relation.schema, deleted=[(3, 20)]))
        assert index.probe((20,)) == frozenset()
        assert len(index) == 1

    def test_remove_unknown_row_is_noop(self, relation):
        index = HashIndex(relation, "r", ["B"])
        index._remove((9, 99))
        assert len(index) == 2

    def test_probe_many(self, relation):
        index = HashIndex(relation, "r", ["B"])
        rows = set(index.probe_many([(10,), (20,)]))
        assert rows == {(1, 10), (2, 10), (3, 20)}


class TestIndexManager:
    def test_create_is_idempotent(self, relation):
        manager = IndexManager()
        a = manager.create_index(relation, "r", ["B"])
        b = manager.create_index(relation, "r", ["B"])
        assert a is b
        assert len(manager) == 1

    def test_lookup(self, relation):
        manager = IndexManager()
        manager.create_index(relation, "r", ["B"])
        assert manager.lookup("r", ("B",)) is not None
        assert manager.lookup("r", ("A",)) is None
        assert manager.lookup("s", ("B",)) is None

    def test_indexes_on(self, relation):
        manager = IndexManager()
        manager.create_index(relation, "r", ["A"])
        manager.create_index(relation, "r", ["B"])
        assert len(manager.indexes_on("r")) == 2
        assert manager.indexes_on("s") == ()

    def test_drop(self, relation):
        manager = IndexManager()
        manager.create_index(relation, "r", ["B"])
        assert manager.drop_index("r", ["B"])
        assert not manager.drop_index("r", ["B"])

    def test_apply_deltas_routes_by_relation(self, relation):
        manager = IndexManager()
        index = manager.create_index(relation, "r", ["B"])
        other_schema = RelationSchema(["X"])
        deltas = {
            "r": Delta(relation.schema, inserted=[(9, 30)]),
            "other": Delta(other_schema, inserted=[(1,)]),
        }
        manager.apply_deltas(deltas)
        assert index.probe((30,)) == {(9, 30)}


class TestIndexThroughDatabase:
    def test_index_stays_consistent_under_random_commits(self):
        import random

        db = Database()
        db.create_relation("r", ["A", "B"], [(i, i % 3) for i in range(10)])
        index = db.create_index("r", ["B"])
        rng = random.Random(17)
        for _ in range(40):
            with db.transact() as txn:
                for _ in range(rng.randint(1, 4)):
                    row = (rng.randint(0, 20), rng.randint(0, 3))
                    if rng.random() < 0.5:
                        txn.insert("r", row)
                    else:
                        txn.delete("r", row)
            # Index contents must equal a scan-built answer.
            for key in range(4):
                expected = {
                    values
                    for values in db.relation("r").value_tuples()
                    if values[1] == key
                }
                assert index.probe((key,)) == expected
