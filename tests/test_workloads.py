"""Unit tests for workload generators and named scenarios."""

import random

import pytest

from repro.algebra.expressions import to_normal_form
from repro.core.irrelevance import RelevanceFilter
from repro.errors import ReproError
from repro.workloads.generators import (
    RelationSpec,
    UpdateStreamSpec,
    generate_chain_database,
    generate_relation_rows,
    generate_update_stream,
)
from repro.workloads.scenarios import (
    alerter_scenario,
    example_4_1,
    paper_p3_join,
    sales_scenario,
)


class TestRelationSpec:
    def test_single_range_broadcast(self):
        spec = RelationSpec("r", ["A", "B"], 10, (0, 5))
        assert spec.ranges == [(0, 5), (0, 5)]

    def test_per_attribute_ranges(self):
        spec = RelationSpec("r", ["A", "B"], 10, [(0, 5), (10, 20)])
        assert spec.ranges == [(0, 5), (10, 20)]

    def test_range_count_mismatch(self):
        with pytest.raises(ReproError):
            RelationSpec("r", ["A", "B"], 10, [(0, 5)])

    def test_generate_rows_distinct_and_in_range(self):
        spec = RelationSpec("r", ["A", "B"], 50, (0, 9))
        rows = generate_relation_rows(spec, random.Random(1))
        assert len(rows) == 50
        assert len(set(rows)) == 50
        assert all(0 <= v <= 9 for row in rows for v in row)

    def test_generation_is_deterministic(self):
        spec = RelationSpec("r", ["A", "B"], 30, (0, 9))
        a = generate_relation_rows(spec, random.Random(7))
        b = generate_relation_rows(spec, random.Random(7))
        assert a == b

    def test_impossible_cardinality_rejected(self):
        spec = RelationSpec("r", ["A"], 100, (0, 5))
        with pytest.raises(ReproError):
            generate_relation_rows(spec, random.Random(1))


class TestUpdateStream:
    def test_insert_only_stream(self):
        spec = RelationSpec("r", ["A", "B"], 10, (0, 100))
        stream = UpdateStreamSpec(spec, batch_size=5, insert_fraction=1.0)
        rows = generate_relation_rows(spec, random.Random(2))
        batches = list(generate_update_stream(stream, rows, 4, random.Random(3)))
        assert len(batches) == 4
        for inserts, deletes in batches:
            assert len(inserts) == 5 and deletes == []

    def test_deletes_target_existing_rows(self):
        spec = RelationSpec("r", ["A", "B"], 30, (0, 100))
        stream = UpdateStreamSpec(spec, batch_size=6, insert_fraction=0.5)
        rows = generate_relation_rows(spec, random.Random(2))
        live = set(rows)
        for inserts, deletes in generate_update_stream(
            stream, rows, 5, random.Random(3)
        ):
            for row in deletes:
                assert row in live
                live.discard(row)
            live.update(inserts)

    def test_irrelevant_fraction_draws_from_special_ranges(self):
        spec = RelationSpec("r", ["A", "B"], 5, (0, 9))
        stream = UpdateStreamSpec(
            spec,
            batch_size=20,
            irrelevant_fraction=1.0,
            irrelevant_ranges=[(100, 200), (100, 200)],
        )
        rows = generate_relation_rows(spec, random.Random(2))
        (batch,) = list(generate_update_stream(stream, rows, 1, random.Random(3)))
        inserts, _ = batch
        assert all(v >= 100 for row in inserts for v in row)

    def test_validation(self):
        spec = RelationSpec("r", ["A"], 5, (0, 9))
        with pytest.raises(ReproError):
            UpdateStreamSpec(spec, 5, insert_fraction=1.5)
        with pytest.raises(ReproError):
            UpdateStreamSpec(spec, 5, irrelevant_fraction=0.5)


class TestChainDatabase:
    def test_shapes(self):
        db, names = generate_chain_database(4, 25, seed=5)
        assert names == ["r1", "r2", "r3", "r4"]
        for i, name in enumerate(names):
            schema = db.relation(name).schema
            assert schema.names == (f"A{i}", f"A{i + 1}")
            assert len(db.relation(name)) == 25

    def test_at_least_one_relation(self):
        with pytest.raises(ReproError):
            generate_chain_database(0, 10)


class TestScenarios:
    def test_example_4_1_instance_matches_paper(self):
        sc = example_4_1()
        assert set(sc.database.relation("r").value_tuples()) == {
            (1, 2),
            (5, 10),
            (12, 15),
        }
        assert set(sc.database.relation("s").value_tuples()) == {
            (2, 10),
            (10, 20),
        }
        from repro.algebra.evaluate import evaluate

        view = evaluate(sc.expression, sc.database.instances())
        assert view.counts() == {(5, 20): 1}

    def test_paper_p3_join_is_three_relation_chain(self):
        sc = paper_p3_join(cardinality=20)
        nf = to_normal_form(sc.expression, sc.database.schema_catalog())
        assert nf.relation_names == ("r1", "r2", "r3")

    def test_sales_scenario_view_evaluates(self):
        sc = sales_scenario(customers=20, orders=50)
        from repro.algebra.evaluate import evaluate

        view = evaluate(sc.expression, sc.database.instances())
        # Every surviving order satisfies the condition.
        orders = {
            row[0]: row for row in sc.database.relation("orders").value_tuples()
        }
        for values in view.value_tuples():
            order = orders[values[0]]
            assert order[3] == 0 and order[2] > 2500

    def test_alerter_scenario_has_screenable_updates(self):
        sc = alerter_scenario(sensors=10, readings=40)
        nf = to_normal_form(sc.expression, sc.database.schema_catalog())
        screen = RelevanceFilter(
            nf, "reading", sc.database.relation("reading").schema
        )
        # A reading far above any threshold is relevant; far below the
        # smallest threshold + 10 it still *may* match some sensor, so
        # relevance is the safe answer — the screen must never divide
        # by relation contents, only by the condition.
        assert screen.is_relevant((0, 10_000))

    def test_scenarios_are_deterministic(self):
        a = sales_scenario(customers=15, orders=30, seed=9)
        b = sales_scenario(customers=15, orders=30, seed=9)
        assert a.database.relation("orders") == b.database.relation("orders")
